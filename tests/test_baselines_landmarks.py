"""Tests for the landmark-based (IDES-style) baseline."""

import numpy as np
import pytest

from repro.baselines.landmarks import LandmarkMF
from repro.evaluation import auc_score


class TestFit:
    def test_learns_classes(self, rtt_labels):
        model = LandmarkMF(rank=8, rng=0).fit(rtt_labels, n_landmarks=25)
        auc = auc_score(rtt_labels, model.decision_matrix())
        assert auc > 0.8

    def test_more_landmarks_not_worse(self, rtt_labels):
        few = LandmarkMF(rank=8, rng=0).fit(rtt_labels, n_landmarks=10)
        many = LandmarkMF(rank=8, rng=0).fit(rtt_labels, n_landmarks=30)
        auc_few = auc_score(rtt_labels, few.decision_matrix())
        auc_many = auc_score(rtt_labels, many.decision_matrix())
        assert auc_many > auc_few - 0.05

    def test_explicit_landmarks(self, rtt_labels):
        landmarks = np.arange(12)
        model = LandmarkMF(rank=8, rng=0).fit(
            rtt_labels, n_landmarks=12, landmarks=landmarks
        )
        np.testing.assert_array_equal(model.landmarks, landmarks)

    def test_rejects_too_few_landmarks(self, rtt_labels):
        with pytest.raises(ValueError):
            LandmarkMF(rank=10, rng=0).fit(rtt_labels, n_landmarks=5)

    def test_decision_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LandmarkMF().decision_matrix()

    def test_diagonal_nan(self, rtt_labels):
        model = LandmarkMF(rank=8, rng=0).fit(rtt_labels, n_landmarks=20)
        assert np.isnan(np.diag(model.decision_matrix())).all()

    def test_handles_missing_entries(self, rtt_labels, rng):
        sparse = rtt_labels.copy()
        hide = rng.random(sparse.shape) < 0.1
        sparse[hide] = np.nan
        model = LandmarkMF(rank=8, rng=0).fit(sparse, n_landmarks=25)
        assert np.isfinite(
            model.decision_matrix()[~np.eye(sparse.shape[0], dtype=bool)]
        ).all()

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            LandmarkMF(rank=0)

    def test_rejects_negative_regularization(self):
        with pytest.raises(ValueError):
            LandmarkMF(regularization=-1.0)


class TestArchitecturalCost:
    def test_landmark_load_is_linear_in_n(self, rtt_labels):
        n = rtt_labels.shape[0]
        model = LandmarkMF(rank=8, rng=0).fit(rtt_labels, n_landmarks=15)
        load = model.landmark_load(n)
        # each landmark answers every other node twice + landmark mesh
        assert load == 2 * (n - 15) + 2 * 14

    def test_load_requires_fit(self):
        with pytest.raises(RuntimeError):
            LandmarkMF().landmark_load(100)

    def test_landmark_hotspot_vs_dmfsgd(self, rtt_labels):
        """The architectural argument: landmarks are O(n) hotspots while
        DMFSGD nodes each answer O(k) probes."""
        n = rtt_labels.shape[0]
        model = LandmarkMF(rank=8, rng=0).fit(rtt_labels, n_landmarks=15)
        dmfsgd_per_node_load = 10  # k probes
        assert model.landmark_load(n) > 5 * dmfsgd_per_node_load
