"""Scale-out serving: sharded coordinate state with lock-free reads.

DMFSGD is decentralized by construction — node ``i`` owns exactly the
rows ``u_i``/``v_i`` — so the serving state partitions naturally by
node id.  This module exploits that to take the single-store serving
stack (one ingest lock, one snapshot) to a scale-out shape:

* :class:`ShardSnapshot` / :class:`ShardedSnapshot` — immutable
  per-shard slices of ``(U, V)`` (strided partition: shard ``s`` owns
  node ids ``i`` with ``i % shards == s``) plus the composite view
  that answers every read the single-store
  :class:`~repro.serving.store.CoordinateSnapshot` answers.  The pair
  gather reassembles factor rows from the per-shard slices and feeds
  them to the **same** einsum kernel
  (:func:`repro.core.coordinates.gathered_pairs_estimate`) as the
  single-store path, so estimates are bitwise identical for the same
  model;
* :class:`ShardedCoordinateStore` — the RCU holder: readers load one
  attribute (a tuple of per-shard snapshots) and never touch a lock;
  each shard's ingest publishes independently, bumping only its own
  version.  ``save``/``load`` checkpoint *all* shards into a single
  ``.npz`` with per-shard keys and warn (not fail) on a shard-count
  mismatch at load, re-partitioning the factors instead;
* :class:`ShardedIngest` — one
  :class:`~repro.serving.ingest.IngestPipeline` (with its own
  :class:`~repro.serving.guard.AdmissionGuard`) per shard, each fed by
  a **bounded queue** drained by a dedicated worker thread.  Submission
  routes by source id, so per-source token buckets partition cleanly
  across shards; the shared training engine is serialized by one
  engine lock held only around the SGD apply — admission, dedup and
  classification run shard-parallel outside it;
* :class:`RequestCoalescer` — turns concurrent *single*-pair queries
  into traffic on the vectorized batch path: requests arriving within
  a small window are answered by one ``estimate_pairs`` gather instead
  of one dot product (plus interpreter overhead) each.

Consistency model: every reader sees a tuple of per-shard snapshots,
each internally consistent; shards publish at their own cadence, so
cross-shard staleness is bounded by each shard's ``refresh_interval``
— the same staleness bound the paper's asynchrony model already
grants in-flight coordinates.  For asymmetric metrics (ABW), a
measurement's target-side ``v_j`` update becomes visible when *j*'s
shard next publishes; :meth:`ShardedIngest.publish` forces all shards
out at once.
"""

from __future__ import annotations

import queue
import threading
import time
import warnings
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.coordinates import (
    CoordinateTable,
    gathered_pairs_estimate,
    matrix_estimate,
    row_estimate,
)
from repro.core.engine import DMFSGDEngine
from repro.obs import tracing
from repro.serving.guard import (
    AdaptiveGuardTuner,
    AdmissionGuard,
    OnlineEvaluator,
)
from repro.serving.ingest import IngestPipeline, IngestStats
from repro.serving.plane import RoutedIngestBase, carried_versions
from repro.serving.service import PredictionService
from repro.serving.store import atomic_savez, open_checkpoint
from repro.utils.validation import check_index

__all__ = [
    "shard_of",
    "ShardSnapshot",
    "ShardedSnapshot",
    "ShardedCoordinateStore",
    "ShardedIngest",
    "RequestCoalescer",
]


def shard_of(node_ids: np.ndarray, shards: int) -> np.ndarray:
    """Shard index of each node id under the strided partition."""
    return np.asarray(node_ids, dtype=np.int64) % int(shards)


def _frozen(array: np.ndarray) -> np.ndarray:
    copy = np.array(array, dtype=float, copy=True)
    copy.setflags(write=False)
    return copy


class ShardSnapshot:
    """Immutable slice of the factors owned by one shard.

    Holds the ``(u_i, v_i)`` rows of every node ``i`` with
    ``i % shards == shard``, in ascending node order (so node ``i``
    lives at local row ``i // shards``), plus the shard's own publish
    version and a monotonic publish timestamp (for the ``/stats``
    snapshot-age section).
    """

    __slots__ = ("shard", "shards", "n", "version", "U", "V", "published_at")

    def __init__(
        self,
        shard: int,
        shards: int,
        n: int,
        version: int,
        U: np.ndarray,
        V: np.ndarray,
    ) -> None:
        expected = len(range(shard, n, shards))
        if U.shape != V.shape or U.ndim != 2 or U.shape[0] != expected:
            raise ValueError(
                f"shard {shard}/{shards} of {n} nodes expects "
                f"({expected}, rank) factors, got {U.shape} and {V.shape}"
            )
        object.__setattr__(self, "shard", int(shard))
        object.__setattr__(self, "shards", int(shards))
        object.__setattr__(self, "n", int(n))
        object.__setattr__(self, "version", int(version))
        object.__setattr__(self, "U", _frozen(U))
        object.__setattr__(self, "V", _frozen(V))
        object.__setattr__(self, "published_at", time.monotonic())

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ShardSnapshot is immutable")

    @property
    def rank(self) -> int:
        """Coordinate dimension ``r``."""
        return self.U.shape[1]

    @property
    def owned(self) -> int:
        """Number of nodes this shard owns."""
        return self.U.shape[0]

    def age(self) -> float:
        """Seconds since this shard snapshot was published."""
        return time.monotonic() - self.published_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardSnapshot(shard={self.shard}/{self.shards}, "
            f"owned={self.owned}, version={self.version})"
        )


class ShardedSnapshot:
    """A consistent composite view over one snapshot per shard.

    Answers the full read API of
    :class:`~repro.serving.store.CoordinateSnapshot`, so a
    :class:`~repro.serving.service.PredictionService` works unchanged
    on top of a sharded store.  The pair paths gather factor rows from
    the per-shard slices and run the shared einsum kernel — bitwise
    identical to the single-store result; the row/matrix paths
    lazily materialize a dense ``(U, V)`` view once per snapshot
    (memoized — the composite is immutable) and reuse the single-store
    kernels directly.
    """

    __slots__ = ("parts", "n", "shards", "_dense")

    def __init__(self, parts: Tuple[ShardSnapshot, ...]) -> None:
        object.__setattr__(self, "parts", tuple(parts))
        object.__setattr__(self, "n", parts[0].n)
        object.__setattr__(self, "shards", len(parts))
        object.__setattr__(self, "_dense", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ShardedSnapshot is immutable")

    @property
    def version(self) -> int:
        """Sum of per-shard versions — monotone under any publish."""
        return sum(part.version for part in self.parts)

    @property
    def rank(self) -> int:
        """Coordinate dimension ``r``."""
        return self.parts[0].rank

    # ------------------------------------------------------------------
    # gathers
    # ------------------------------------------------------------------

    def _check_ids(self, ids: np.ndarray) -> None:
        if ids.size and (ids.min() < 0 or ids.max() >= self.n):
            raise ValueError("node indices out of range")

    def _gather(self, ids: np.ndarray, factor: str) -> np.ndarray:
        """Stack ``U`` or ``V`` rows for arbitrary node ids."""
        out = np.empty((ids.size, self.rank), dtype=float)
        P = self.shards
        for s, part in enumerate(self.parts):
            mask = (ids % P) == s
            if mask.any():
                out[mask] = getattr(part, factor)[ids[mask] // P]
        return out

    def _dense_view(self) -> Tuple[np.ndarray, np.ndarray]:
        """Reassembled full ``(U, V)``, memoized on first use.

        Building it twice under a read race is benign — both builds
        produce identical arrays from the same immutable parts — so no
        lock is needed (idempotent initialization).
        """
        dense = self._dense
        if dense is None:
            U = np.empty((self.n, self.rank), dtype=float)
            V = np.empty_like(U)
            P = self.shards
            for s, part in enumerate(self.parts):
                U[s::P] = part.U
                V[s::P] = part.V
            U.setflags(write=False)
            V.setflags(write=False)
            dense = (U, V)
            object.__setattr__(self, "_dense", dense)
        return dense

    # ------------------------------------------------------------------
    # the CoordinateSnapshot read API
    # ------------------------------------------------------------------

    def estimate(self, i: int, j: int) -> float:
        """Single-pair estimate ``x_hat_ij = u_i . v_j``."""
        i = check_index(i, self.n, "i")
        j = check_index(j, self.n, "j")
        P = self.shards
        u = self.parts[i % P].U[i // P]
        v = self.parts[j % P].V[j // P]
        return float(u @ v)

    def estimate_pairs(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Vectorized pair estimates via per-shard gathers + one einsum."""
        sources = np.asarray(sources, dtype=int)
        targets = np.asarray(targets, dtype=int)
        if sources.shape != targets.shape or sources.ndim != 1:
            raise ValueError(
                "rows and cols must be matching 1-D arrays, got "
                f"{sources.shape} and {targets.shape}"
            )
        self._check_ids(sources)
        self._check_ids(targets)
        return gathered_pairs_estimate(
            self._gather(sources, "U"), self._gather(targets, "V")
        )

    def estimate_row(
        self, i: int, targets: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """One-to-many estimates (dense view, single-store kernel)."""
        U, V = self._dense_view()
        return row_estimate(U, V, i, targets)

    def estimate_matrix(self) -> np.ndarray:
        """Dense ``X_hat = U V^T`` with NaN diagonal."""
        U, V = self._dense_view()
        return matrix_estimate(U, V)

    def as_table(self) -> CoordinateTable:
        """A mutable :class:`CoordinateTable` copy (for warm-starting)."""
        U, V = self._dense_view()
        return CoordinateTable.from_arrays(U, V)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedSnapshot(shards={self.shards}, n={self.n}, "
            f"version={self.version})"
        )


class ShardedCoordinateStore:
    """RCU holder of one independently-published snapshot per shard.

    Readers call :meth:`snapshot` — a single attribute load of the
    current per-shard tuple, no lock — and work against that frozen
    composite for as long as they like.  Writers (one ingest worker
    per shard) call :meth:`publish_shard`, which builds the new
    immutable :class:`ShardSnapshot` and swaps the tuple under a
    writer-only lock.  Reads therefore never contend with ingest: the
    estimate paths touch frozen arrays only.

    Thread-safety: :meth:`snapshot` / :meth:`shard_snapshot` and every
    property are lock-free reads of one immutable tuple; writers
    (:meth:`publish_shard`, :meth:`publish`, :meth:`replace_model`,
    :meth:`set_tombstones`) serialize on an internal writer lock.

    Parameters
    ----------
    coordinates:
        Initial model: a :class:`CoordinateTable` or ``(U, V)`` pair.
    shards:
        Number of partitions ``P``; node ``i`` belongs to shard
        ``i % P``.
    versions:
        Per-shard starting versions (all 1 by default; restored by
        :meth:`load`).
    tombstones:
        Node ids marked departed by the membership layer (empty by
        default; restored by :meth:`load` so a leave survives a
        checkpoint round-trip).
    """

    def __init__(
        self,
        coordinates: Union[CoordinateTable, Tuple[np.ndarray, np.ndarray]],
        *,
        shards: int,
        versions: Optional[Sequence[int]] = None,
        tombstones: Optional[Sequence[int]] = None,
    ) -> None:
        if isinstance(coordinates, CoordinateTable):
            U, V = coordinates.U, coordinates.V
        else:
            U, V = coordinates
            U = np.asarray(U, dtype=float)
            V = np.asarray(V, dtype=float)
        if U.shape != V.shape or U.ndim != 2:
            raise ValueError(
                f"U and V must be matching 2-D arrays, got {U.shape} and {V.shape}"
            )
        n = U.shape[0]
        shards = int(shards)
        if not 1 <= shards <= n:
            raise ValueError(
                f"shards must be in [1, n={n}], got {shards}"
            )
        if versions is None:
            versions = [1] * shards
        elif len(versions) != shards:
            raise ValueError(
                f"got {len(versions)} versions for {shards} shards"
            )
        self.shards = shards
        #: shard count the factors were last re-partitioned *from* (a
        #: checkpoint reload with a different count, or a live
        #: :meth:`repartition`); ``None`` until a re-partition happens.
        #: Surfaced in ``/stats`` so operators can see a topology
        #: change survived a restart.
        self.repartitioned_from: Optional[int] = None
        #: set True by :meth:`load` when the primary checkpoint was bad
        #: and the rotated last-good copy was restored instead
        self.recovered_from_fallback = False
        self._lock = threading.Lock()  # serializes writers only
        self._tombstones: Tuple[int, ...] = tuple(
            sorted(int(t) for t in (tombstones or ()))
        )
        if any(t < 0 or t >= n for t in self._tombstones):
            raise ValueError(f"tombstones out of range for n={n}")
        self._snaps: Tuple[ShardSnapshot, ...] = tuple(
            ShardSnapshot(
                s, shards, n, int(versions[s]), U[s::shards], V[s::shards]
            )
            for s in range(shards)
        )

    # ------------------------------------------------------------------
    # reads (lock-free)
    # ------------------------------------------------------------------

    def snapshot(self) -> ShardedSnapshot:
        """The current composite snapshot (lock-free attribute load)."""
        return ShardedSnapshot(self._snaps)

    def shard_snapshot(self, shard: int) -> ShardSnapshot:
        """The current snapshot of one shard (lock-free)."""
        return self._snaps[shard]

    @property
    def version(self) -> int:
        """Sum of per-shard versions (monotone under any publish)."""
        return sum(snap.version for snap in self._snaps)

    @property
    def versions(self) -> List[int]:
        """Per-shard publish versions."""
        return [snap.version for snap in self._snaps]

    @property
    def n(self) -> int:
        """Number of nodes in the currently served model."""
        return self._snaps[0].n

    @property
    def rank(self) -> int:
        """Coordinate dimension ``r``."""
        return self._snaps[0].rank

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def publish_shard(
        self, shard: int, U_s: np.ndarray, V_s: np.ndarray
    ) -> ShardSnapshot:
        """Install new factors for one shard; bumps only its version."""
        shard = int(shard)
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard must be in [0, {self.shards}), got {shard}")
        with self._lock:
            old = self._snaps[shard]
            snap = ShardSnapshot(
                shard, self.shards, old.n, old.version + 1, U_s, V_s
            )
            snaps = list(self._snaps)
            snaps[shard] = snap
            self._snaps = tuple(snaps)
            return snap

    def publish(
        self,
        coordinates: Union[CoordinateTable, Tuple[np.ndarray, np.ndarray]],
    ) -> ShardedSnapshot:
        """Publish a full model: every shard re-sliced and bumped."""
        if isinstance(coordinates, CoordinateTable):
            U, V = coordinates.U, coordinates.V
        else:
            U, V = coordinates
            U = np.asarray(U, dtype=float)
            V = np.asarray(V, dtype=float)
        if U.shape != (self.n, self.rank):
            raise ValueError(
                f"shape mismatch: store holds {(self.n, self.rank)}, "
                f"got {U.shape}"
            )
        P = self.shards
        for s in range(P):
            self.publish_shard(s, U[s::P], V[s::P])
        return self.snapshot()

    def replace_model(
        self,
        coordinates: Union[CoordinateTable, Tuple[np.ndarray, np.ndarray]],
        *,
        tombstones: Optional[Sequence[int]] = None,
    ) -> ShardedSnapshot:
        """Install a model of a *different* size (membership epoch swap).

        Unlike :meth:`publish`, the node count may change: every shard
        is re-sliced at the new ``n`` and the whole per-shard tuple is
        swapped in **one atomic reference store**, so a reader either
        sees the complete old epoch or the complete new epoch — never a
        mix of differently-sized slices.  Every shard's version is
        bumped past its current value, keeping the global (summed)
        version strictly monotone — which is what invalidates the
        prediction cache after the epoch transition.

        Readers holding a pre-swap composite keep serving the old
        epoch; the arrays they reference are immutable and simply
        become garbage once the last holder drops them (RCU grace by
        refcount).
        """
        if isinstance(coordinates, CoordinateTable):
            U, V = coordinates.U, coordinates.V
        else:
            U, V = coordinates
            U = np.asarray(U, dtype=float)
            V = np.asarray(V, dtype=float)
        if U.shape != V.shape or U.ndim != 2:
            raise ValueError(
                f"U and V must be matching 2-D arrays, got {U.shape} and {V.shape}"
            )
        n = U.shape[0]
        P = self.shards
        if n < P:
            raise ValueError(
                f"cannot shrink to {n} nodes: the store has {P} shard(s)"
            )
        with self._lock:
            snaps = tuple(
                ShardSnapshot(
                    s, P, n, self._snaps[s].version + 1, U[s::P], V[s::P]
                )
                for s in range(P)
            )
            if tombstones is not None:
                marks = tuple(sorted(int(t) for t in tombstones))
                if any(t < 0 or t >= n for t in marks):
                    raise ValueError(f"tombstones out of range for n={n}")
                self._tombstones = marks
            elif any(t >= n for t in self._tombstones):
                raise ValueError(
                    "existing tombstones out of range for the new model; "
                    "pass tombstones= explicitly"
                )
            self._snaps = snaps  # the one atomic epoch swap
        return ShardedSnapshot(snaps)

    def repartition(self, shards: int) -> ShardedSnapshot:
        """Re-stride the live store to a new shard count, atomically.

        The dense model is reassembled from the current snapshots and
        re-sliced at the new ``P``; the whole per-shard tuple is swapped
        in **one atomic reference store** (the same copy-on-write epoch
        discipline as :meth:`replace_model`), so a reader either sees
        the complete old topology or the complete new one — never a mix
        of differently-strided slices.  Versions follow
        :func:`repro.serving.plane.carried_versions`: no shard version
        ever rewinds and the global (summed) version grows strictly,
        which is what invalidates version-keyed caches across the
        transition.  Callers must quiesce the per-shard ingest
        pipelines first (their store views slice by the live shard
        count) — :meth:`ShardedIngest.set_shard_count` does.
        """
        shards = int(shards)
        if not 1 <= shards <= self.n:
            raise ValueError(
                f"shards must be in [1, n={self.n}], got {shards}"
            )
        with self._lock:
            if shards == self.shards:
                return ShardedSnapshot(self._snaps)
            old = self.shards
            n = self._snaps[0].n
            U, V = ShardedSnapshot(self._snaps)._dense_view()
            versions = carried_versions(
                [snap.version for snap in self._snaps], shards
            )
            snaps = tuple(
                ShardSnapshot(
                    s, shards, n, versions[s], U[s::shards], V[s::shards]
                )
                for s in range(shards)
            )
            self.shards = shards
            self.repartitioned_from = old
            self._snaps = snaps  # the one atomic topology swap
        return ShardedSnapshot(snaps)

    # ------------------------------------------------------------------
    # membership tombstones
    # ------------------------------------------------------------------

    @property
    def tombstones(self) -> Tuple[int, ...]:
        """Node ids marked departed (sorted; lock-free read)."""
        return self._tombstones

    def set_tombstones(self, tombstones: Sequence[int]) -> None:
        """Replace the departed-node set (membership bookkeeping only).

        Tombstoned nodes keep their last-known factor rows — their
        estimates stay servable, the ingest layer stops feeding them —
        until a compaction trims trailing tombstones off the model.
        """
        marks = tuple(sorted(int(t) for t in tombstones))
        if any(t < 0 or t >= self.n for t in marks):
            raise ValueError(f"tombstones out of range for n={self.n}")
        with self._lock:
            self._tombstones = marks

    # ------------------------------------------------------------------
    # checkpointing (single file, per-shard keys)
    # ------------------------------------------------------------------

    def save(self, path: "str | object") -> None:
        """Checkpoint *every* shard to one ``.npz`` with per-shard keys.

        The file carries ``shards``/``n`` plus ``U{s}``/``V{s}``/
        ``version{s}`` per shard, so a restart restores each shard at
        its own version — not just shard 0.  Written crash-safely via
        :func:`repro.serving.store.atomic_savez` (temp + fsync +
        atomic rename, previous checkpoint rotated to ``.1``).
        """
        with self._lock:  # snaps + tombstones from the same epoch
            snaps = self._snaps
            tombstones = self._tombstones
        payload: Dict[str, np.ndarray] = {
            "shards": np.asarray(self.shards, dtype=np.int64),
            "n": np.asarray(snaps[0].n, dtype=np.int64),
            "tombstones": np.asarray(tombstones, dtype=np.int64),
        }
        for s, snap in enumerate(snaps):
            payload[f"U{s}"] = snap.U
            payload[f"V{s}"] = snap.V
            payload[f"version{s}"] = np.asarray(snap.version, dtype=np.int64)
        atomic_savez(path, **payload)

    @classmethod
    def load(
        cls, path: "str | object", *, shards: Optional[int] = None
    ) -> "ShardedCoordinateStore":
        """Restore from :meth:`save` (or a single-store checkpoint).

        When the requested shard count differs from the checkpoint's,
        the factors are re-partitioned and a warning is emitted — the
        model survives a topology change.  The per-shard publish
        counters describe partitions that no longer exist, so they are
        redistributed, **never rewound**: each new shard starts at
        ``ceil(total / target)``, keeping the global (summed) version
        at least the checkpoint's.  A restarted service therefore can
        never serve a *smaller* global version than it saved — which is
        what keeps version-keyed caches (and membership epochs layered
        on top) correctly invalidated across a topology change.

        A truncated or corrupt primary file falls back to the rotated
        last-good copy (``recovered_from_fallback`` records it).
        """
        data, recovered = open_checkpoint(path)
        tombstones = (
            data["tombstones"].tolist() if "tombstones" in data else ()
        )
        if "shards" not in data:
            # a single-store CoordinateStore checkpoint: adopt it
            U, V = data["U"], data["V"]
            version = int(data["version"]) if "version" in data else 1
            target = shards if shards is not None else 1
            store = cls(
                (U, V),
                shards=target,
                versions=[version] * target,
            )
            if target != 1:
                store.repartitioned_from = 1
            store.recovered_from_fallback = recovered
            return store
        saved = int(data["shards"])
        n = int(data["n"])
        P = saved
        rank = data["U0"].shape[1]
        U = np.empty((n, rank), dtype=float)
        V = np.empty_like(U)
        versions = []
        for s in range(P):
            U[s::P] = data[f"U{s}"]
            V[s::P] = data[f"V{s}"]
            versions.append(int(data[f"version{s}"]))
        target = shards if shards is not None else saved
        if target != saved:
            carried = carried_versions(versions, target)[0]
            warnings.warn(
                f"checkpoint was written with {saved} shard(s) but "
                f"{target} were requested; re-partitioning the factors "
                f"and carrying the global version forward (each new "
                f"shard starts at {carried})",
                RuntimeWarning,
                stacklevel=2,
            )
            store = cls(
                (U, V),
                shards=target,
                versions=[carried] * target,
                tombstones=tombstones,
            )
            # recorded for /stats: a topology change survived a
            # restart (previously only this warning said so)
            store.repartitioned_from = saved
            store.recovered_from_fallback = recovered
            return store
        store = cls(
            (U, V),
            shards=saved,
            versions=versions,
            tombstones=tombstones,
        )
        store.recovered_from_fallback = recovered
        return store

    def as_full_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The reassembled dense ``(U, V)`` of the current snapshots."""
        return self.snapshot()._dense_view()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedCoordinateStore(shards={self.shards}, n={self.n}, "
            f"version={self.version})"
        )


class _SharedEngineProxy:
    """Per-shard facade over the one shared training engine.

    Admission, dedup and classification run shard-parallel in each
    shard's pipeline; only the SGD apply itself mutates shared state,
    so the proxy serializes exactly that call under the shared engine
    lock.  ``steps_clipped`` is tracked per proxy *inside* the lock,
    so each shard pipeline's before/after clip accounting stays exact
    even while other shards apply concurrently.
    """

    def __init__(self, engine: DMFSGDEngine, lock: threading.Lock) -> None:
        self._engine = engine
        self._engine_lock = lock
        self.steps_clipped = 0

    def apply_measurements(self, rows, cols, values, *, step_clip=None):
        with self._engine_lock:
            before = self._engine.steps_clipped
            used = self._engine.apply_measurements(
                rows, cols, values, step_clip=step_clip
            )
            self.steps_clipped += self._engine.steps_clipped - before
            return used

    def __getattr__(self, name: str):
        return getattr(self._engine, name)


class _ShardStoreView:
    """The per-shard store handed to one shard's :class:`IngestPipeline`.

    Presents the minimal store protocol the pipeline needs — ``n`` for
    the constructor's shape check, ``publish`` and ``version`` — and
    translates a full-coordinates publish into a slice-and-swap of its
    own shard only.  Slicing holds the shared engine lock so the copy
    never reads rows mid-update.
    """

    def __init__(
        self,
        store: ShardedCoordinateStore,
        shard: int,
        engine_lock: threading.Lock,
    ) -> None:
        self._store = store
        self._shard = int(shard)
        self._engine_lock = engine_lock

    @property
    def n(self) -> int:
        return self._store.n

    @property
    def version(self) -> int:
        return self._store.shard_snapshot(self._shard).version

    def publish(self, coordinates: CoordinateTable) -> ShardSnapshot:
        P = self._store.shards
        with self._engine_lock:
            U_s = coordinates.U[self._shard :: P].copy()
            V_s = coordinates.V[self._shard :: P].copy()
        return self._store.publish_shard(self._shard, U_s, V_s)


#: sentinel closing a shard worker's queue
_STOP = object()


class ShardedIngest(RoutedIngestBase):
    """P admission pipelines, one per shard, behind bounded queues.

    Mirrors the :class:`~repro.serving.ingest.IngestPipeline` surface
    the gateway consumes (``submit`` / ``submit_many`` / ``flush`` /
    ``publish`` / ``buffered`` / ``stats_payload`` / ``evaluator`` /
    ``store``), so the HTTP layer works unchanged against either.
    Together with :class:`ShardedCoordinateStore` this is the
    thread-mode :class:`~repro.serving.plane.ShardPlane` — routing,
    validation and **live topology** (``set_shard_count`` /
    ``split_shard`` / ``merge_shards``) come from
    :class:`~repro.serving.plane.RoutedIngestBase`; this class supplies
    the thread transport (bounded queues + worker threads) and the
    re-partition mechanics.

    Routing is by source id (``source % shards``): DMFSGD's symmetric
    updates write only the prober's rows, so shard writes are disjoint,
    and per-source token buckets land wholly inside one shard's guard.
    Each shard runs its own pipeline fed by a bounded
    :class:`queue.Queue` — a full queue blocks the submitter for up to
    ``put_timeout`` seconds (backpressure) and then sheds the chunk
    (counted), so memory stays bounded without ever wedging a gateway
    handler — or the selectors backend's single event-loop thread —
    indefinitely.

    Parameters
    ----------
    engine, store:
        The shared trainer and the sharded snapshot store.
    guards:
        Optional per-shard admission guards (one
        :class:`~repro.serving.guard.AdmissionGuard` each — guards are
        stateful, so they are never shared between shards).
    guard_factory:
        Optional ``shard -> AdmissionGuard | None`` callable used to
        equip shards created by a live topology change
        (:meth:`set_shard_count` and friends) — and the initial shards
        too when ``guards`` is not given.  Without it, shards born from
        a split run unguarded (logged in the topology event).
    evaluator:
        Optional shared :class:`~repro.serving.guard.OnlineEvaluator`
        (internally locked, safe to share).
    adaptive:
        Attach one :class:`~repro.serving.guard.AdaptiveGuardTuner`
        per shard pipeline, deriving ``step_clip`` and sigma
        thresholds from the shared evaluator's window (requires
        ``evaluator``).
    queue_depth:
        Bounded queue capacity per shard, in submitted *chunks* (one
        ``submit_many`` call contributes at most one chunk per shard);
        per-shard *sample* backlogs are reported by :meth:`shard_info`.
    put_timeout:
        Backpressure bound: how long a submission may block on a full
        shard queue before the chunk is **shed** (counted in
        :attr:`dropped_backpressure`).  Bounded-then-shed keeps slow
        consumers from freezing the submitter — essential for the
        single-threaded selectors gateway, whose event loop must never
        block indefinitely inside a handler.  ``None`` blocks forever
        (pure backpressure).
    workers:
        Start one worker thread per shard (the serving deployment).
        ``False`` runs every submission inline on the caller's thread —
        deterministic, used by the parity tests and by trace tooling.
    """

    def __init__(
        self,
        engine: DMFSGDEngine,
        store: ShardedCoordinateStore,
        *,
        classify: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        batch_size: int = 256,
        refresh_interval: int = 1000,
        mode: str = "guarded",
        step_clip: Optional[float] = None,
        guards: Optional[Sequence[Optional[AdmissionGuard]]] = None,
        guard_factory: Optional[
            Callable[[int], Optional[AdmissionGuard]]
        ] = None,
        evaluator: Optional[OnlineEvaluator] = None,
        adaptive: bool = False,
        queue_depth: int = 64,
        put_timeout: Optional[float] = 0.5,
        workers: bool = True,
    ) -> None:
        if store.n != engine.n:
            raise ValueError(
                f"store has {store.n} nodes, engine has {engine.n}"
            )
        if queue_depth <= 0:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        if guards is not None and len(guards) != store.shards:
            raise ValueError(
                f"got {len(guards)} guards for {store.shards} shards"
            )
        self.engine = engine
        self.store = store
        self.shards = store.shards
        self.mode = mode
        self.evaluator = evaluator
        self.queue_depth = int(queue_depth)
        self.put_timeout = None if put_timeout is None else float(put_timeout)
        # the pipeline recipe, kept so a live topology change (split)
        # can build brand-new shard pipelines from the same ingredients
        self._classify = classify
        self._batch_size = batch_size
        self._refresh_interval = refresh_interval
        self._step_clip = step_clip
        self._adaptive = adaptive
        self._guard_factory = guard_factory
        self._engine_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        # serializes enqueue against close(): a submitter holding the
        # gate finishes its put before close() can append the stop
        # sentinel, so no chunk can ever land *behind* _STOP (lost
        # samples + a q.join() that never returns)
        self._gate = threading.Lock()
        self._received = 0
        self._dropped_invalid = 0
        self._dropped_membership = 0
        # flips True at the first membership barrier or topology
        # change: only then can the universe (or the partition) change
        # under a routed chunk, so only then does the enqueue path pay
        # the under-gate re-validation
        self._elastic = False
        self.dropped_backpressure = 0
        self._queued_samples: List[int] = [0] * store.shards
        self.worker_errors: List[str] = []
        self._init_plane()
        # telemetry: latency histograms appear when the gateway binds a
        # registry (bind_obs); per-shard span ids applied but awaiting
        # their publish stamp live here while tracing is armed
        self._h_queue_wait = None
        self._h_apply = None
        self._pending_spans: List[List[int]] = [[] for _ in range(self.shards)]
        # counters absorbed from pipelines retired by a shard merge, so
        # the aggregated stats stay cumulative across topology changes
        self._retired_stats = IngestStats()
        self._retired_admissions: List[Dict[str, object]] = []
        self.pipelines: List[IngestPipeline] = []
        for s in range(self.shards):
            if guards is not None:
                guard = guards[s]
            elif guard_factory is not None:
                guard = guard_factory(s)
            else:
                guard = None
            self.pipelines.append(self._build_pipeline(s, guard))
        self._queues: List["queue.Queue"] = []
        self._workers: List[threading.Thread] = []
        self._worker_mode = bool(workers)
        self._closed = False
        if workers:
            for s in range(self.shards):
                self._start_worker(s)

    def _build_pipeline(
        self, shard: int, guard: Optional[AdmissionGuard]
    ) -> IngestPipeline:
        """One shard's pipeline from the stored recipe (ctor + splits)."""
        proxy = _SharedEngineProxy(self.engine, self._engine_lock)
        view = _ShardStoreView(self.store, shard, self._engine_lock)
        return IngestPipeline(
            proxy,  # type: ignore[arg-type]
            view,  # type: ignore[arg-type]
            classify=self._classify,
            batch_size=self._batch_size,
            refresh_interval=self._refresh_interval,
            mode=self.mode,
            step_clip=self._step_clip,
            guard=guard,
            evaluator=self.evaluator,
            # one tuner per pipeline (tuners are stateful); all
            # derive from the one shared evaluator window
            adaptive=(
                AdaptiveGuardTuner(self.evaluator) if self._adaptive else None
            ),
        )

    def bind_obs(self, registry) -> None:
        """Attach a metrics registry: per-stage latency histograms.

        Thread mode records straight into registry instruments (the
        per-thread cells make the worker-side observe lock-free);
        process mode records into shared-memory slots instead and
        reaches the registry through a collector — both use the same
        bucket ladder, so the families merge under identical names.
        """
        super().bind_obs(registry)
        self._h_queue_wait = registry.histogram(
            "repro_ingest_queue_wait_seconds",
            "Admit-to-dequeue wait of routed ingest chunks.",
        )
        self._h_apply = registry.histogram(
            "repro_ingest_apply_seconds",
            "Dequeue-to-applied latency of drained ingest batches.",
        )

    def _apply_instrumented(
        self, shard, pipeline, metas, sources, targets, values
    ) -> None:
        """``submit_valid`` with stage stamps (chunks carried metadata)."""
        dequeue_us = tracing.now_us()
        if self._h_queue_wait is not None:
            for meta in metas:
                self._h_queue_wait.observe(max(0, dequeue_us - meta[2]) / 1e6)
        tracer = tracing.tracer
        spans = (
            [m[0] for m in metas if m[0]] if tracer is not None else []
        )
        pubs_before = pipeline.stats().publishes if tracer is not None else 0
        pipeline.submit_valid(sources, targets, values)
        done_us = tracing.now_us()
        if self._h_apply is not None:
            self._h_apply.observe((done_us - dequeue_us) / 1e6)
        if tracer is None:
            return
        for span_id in spans:
            tracer.stamp(span_id, queue_us=dequeue_us, apply_us=done_us)
        if spans:
            with self._counter_lock:
                self._pending_spans[shard].extend(spans)
        if pipeline.stats().publishes > pubs_before:
            self._stamp_publish(shard, done_us)

    def _stamp_publish(self, shard: int, publish_us: int) -> None:
        """Stamp the publish stage onto every span the publish covered."""
        tracer = tracing.tracer
        if tracer is None:
            return
        with self._counter_lock:
            if shard >= len(self._pending_spans):
                return
            pending = self._pending_spans[shard]
            self._pending_spans[shard] = []
        for span_id in pending:
            tracer.stamp(span_id, publish_us=publish_us)

    def _start_worker(self, shard: int) -> None:
        """Append shard ``shard``'s bounded queue + worker thread."""
        self._queues.append(queue.Queue(maxsize=self.queue_depth))
        thread = threading.Thread(
            target=self._worker_loop,
            args=(shard,),
            name=f"repro-ingest-shard-{shard}",
            daemon=True,
        )
        self._workers.append(thread)
        thread.start()

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------

    #: max queued chunks a worker drains into one pipeline call — the
    #: per-call fixed costs (guard filters, lock, list extends) then
    #: amortize over everything that queued up while the worker was busy
    _DRAIN_LIMIT = 16

    def _worker_loop(self, shard: int) -> None:
        q = self._queues[shard]
        pipeline = self.pipelines[shard]
        while True:
            items = [q.get()]
            # opportunistic drain: batch whatever else is already queued
            while len(items) < self._DRAIN_LIMIT:
                try:
                    items.append(q.get_nowait())
                except queue.Empty:
                    break
            stop = any(item is _STOP for item in items)
            chunks = [item for item in items if item is not _STOP]
            try:
                if chunks:
                    if len(chunks) == 1:
                        sources, targets, values = chunks[0][:3]
                    else:
                        sources = np.concatenate([c[0] for c in chunks])
                        targets = np.concatenate([c[1] for c in chunks])
                        values = np.concatenate([c[2] for c in chunks])
                    metas = [c[3] for c in chunks if len(c) > 3]
                    if metas:
                        self._apply_instrumented(
                            shard, pipeline, metas, sources, targets, values
                        )
                    else:
                        pipeline.submit_valid(sources, targets, values)
            except Exception as exc:  # pragma: no cover - defensive
                with self._counter_lock:
                    self.worker_errors.append(f"shard {shard}: {exc!r}")
            finally:
                if chunks:
                    taken = sum(int(c[2].size) for c in chunks)
                    with self._counter_lock:
                        self._queued_samples[shard] -= taken
                for _ in items:
                    q.task_done()
            if stop:
                return

    @property
    def running(self) -> bool:
        """Whether worker threads are draining the shard queues."""
        return bool(self._workers) and not self._closed

    def _put_chunk(self, shard: int, item) -> int:
        """Queue one chunk for a shard worker; sheds on sustained full.

        Called by the base's :meth:`_enqueue` with the gate held and
        the chunk already re-validated (and re-routed if the topology
        moved).  Returns how many samples were accepted (queued, or —
        after :meth:`close` — applied inline).  The gate guarantees a
        put can never land behind the stop sentinel.
        """
        samples = int(item[2].size)
        if self._closed or not self._workers:
            # workers are gone: apply inline, losing nothing
            if len(item) > 3:
                self._apply_instrumented(
                    shard, self.pipelines[shard], [item[3]], *item[:3]
                )
            else:
                self.pipelines[shard].submit_valid(*item)
            return samples
        with self._counter_lock:
            self._queued_samples[shard] += samples
        try:
            self._queues[shard].put(item, timeout=self.put_timeout)
            return samples
        except queue.Full:
            with self._counter_lock:
                self._queued_samples[shard] -= samples
                self.dropped_backpressure += samples
            return 0

    def close(self) -> None:
        """Stop the shard workers (idempotent); queued work is drained."""
        with self._gate:
            if self._closed or not self._workers:
                self._closed = True
                return
            self._closed = True
            for q in self._queues:
                q.put(_STOP)
        for thread in self._workers:
            thread.join(timeout=5.0)
        self._workers = []

    def __enter__(self) -> "ShardedIngest":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission (routing/validation live in RoutedIngestBase; these
    # hooks preserve the inline mode: without workers the pipeline's
    # actual verdict is returned and nothing touches the gate)
    # ------------------------------------------------------------------

    def _submit_single(self, shard: int, item) -> bool:
        if self._workers:
            return self._enqueue(shard, item) > 0
        meta = self._chunk_meta()
        if meta is not None:
            self._apply_instrumented(
                shard, self.pipelines[shard], [meta], *item
            )
            return bool(item[2].size)
        return bool(self.pipelines[shard].submit_valid(*item))

    def _submit_chunk(self, shard: int, item) -> int:
        if self._workers:
            # shed (backpressure) or re-dropped (a membership epoch
            # raced the routing validation) samples are excluded
            return self._enqueue(shard, item)
        meta = self._chunk_meta()
        if meta is not None:
            self._apply_instrumented(
                shard, self.pipelines[shard], [meta], *item
            )
        else:
            self.pipelines[shard].submit_valid(*item)
        return int(item[2].size)

    # ------------------------------------------------------------------
    # live topology
    # ------------------------------------------------------------------

    def _apply_topology(self, shards: int, reason: str) -> None:
        """Re-stride to ``shards`` partitions (gate held by the base).

        The transition is the membership-barrier quiesce followed by a
        copy-on-write store swap, touching only the shard resources
        that actually change:

        1. drain the queues and flush + publish every pipeline, so the
           store snapshots hold everything admitted under the old
           topology (no new chunk can enter — the gate is held);
        2. on a merge, stop exactly the retired tail workers and absorb
           their pipelines' counters (stats stay cumulative);
        3. swap the store to the new stride
           (:meth:`ShardedCoordinateStore.repartition` — one atomic
           tuple store, carried versions);
        4. on a split, build the new tail pipelines/queues/workers from
           the stored recipe.

        Surviving workers keep running untouched throughout — their
        queue/pipeline bindings stay valid because only the tail of the
        per-shard lists ever changes.  Readers never block: queries keep
        being served from whichever snapshot tuple they loaded.
        """
        old = self.shards
        self.drain()
        for pipeline in self.pipelines:
            pipeline.flush()
            pipeline.publish()
        if tracing.tracer is not None:
            now_us = tracing.now_us()
            for shard in range(len(self._pending_spans)):
                self._stamp_publish(shard, now_us)
        if shards < old:
            # retire the tail: stop its workers (queues are empty and
            # the gate blocks refills), absorb its counters
            if self._workers:
                for q in self._queues[shards:]:
                    q.put(_STOP)
                for thread in self._workers[shards:]:
                    thread.join(timeout=5.0)
            for pipeline in self.pipelines[shards:]:
                stats = pipeline.stats()
                retired = self._retired_stats
                retired.applied += stats.applied
                retired.deduped += stats.deduped
                retired.clipped += stats.clipped
                retired.rejected_guard += stats.rejected_guard
                retired.dropped_invalid += stats.dropped_invalid
                retired.dropped_nan += stats.dropped_nan
                retired.batches += stats.batches
                retired.publishes += stats.publishes
                if pipeline.guard is not None:
                    self._retired_admissions.append(pipeline.guard.as_dict())
            del self.pipelines[shards:]
            del self._queues[shards:]
            del self._workers[shards:]
            with self._counter_lock:
                del self._queued_samples[shards:]
                del self._pending_spans[shards:]
        self.store.repartition(shards)
        self.shards = shards
        if shards > old:
            with self._counter_lock:
                self._queued_samples.extend([0] * (shards - old))
                self._pending_spans.extend([] for _ in range(shards - old))
            for s in range(old, shards):
                guard = (
                    self._guard_factory(s)
                    if self._guard_factory is not None
                    else None
                )
                self.pipelines.append(self._build_pipeline(s, guard))
                if self._worker_mode and not self._closed:
                    self._start_worker(s)

    # ------------------------------------------------------------------
    # flushing / publishing
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Block until every queued submission has been processed."""
        for q in self._queues:
            q.join()

    @contextmanager
    def membership_barrier(self):
        """Quiesce ingest for a membership epoch transition.

        While the context is held:

        1. the submission gate is taken, so no new chunk can enter a
           shard queue (submitters block on the gate for at most
           ``put_timeout``, then shed the chunk — the same bounded
           backpressure as a full queue, so no handler thread can be
           wedged for the length of a transition);
        2. the queues are drained and every pipeline's buffer flushed,
           so all admitted measurements are applied against the *old*
           model — nothing validated under the old universe can reach
           the engine after the resize;
        3. the shared engine lock is held, so no SGD apply can race the
           caller's resize of engine + store.

        The caller mutates the model inside the ``with`` block (see
        :class:`repro.serving.membership.MembershipManager`); queries
        keep flowing throughout — readers never touch either lock.

        Full race-freedom requires worker mode: every submission then
        funnels through the gate, where chunks are re-validated against
        the post-transition universe.  Inline mode (``workers=False``)
        bypasses the gate — its applies are still serialized by the
        engine lock, but a submission concurrent with a shrink can
        buffer stale indices; inline mode is the deterministic
        single-threaded test/trace mode, so callers running membership
        transitions against it must serialize submissions themselves.
        """
        with self._gate:
            # from here on routed chunks must be re-validated at the
            # gate — the universe can now change between routing-time
            # validation and enqueue (set under the gate, so every
            # later _enqueue observes it)
            self._elastic = True
            self.drain()
            for pipeline in self.pipelines:
                pipeline.flush()
            with self._engine_lock:
                yield

    def flush(self) -> int:
        """Drain the queues, then apply every buffered measurement."""
        self.drain()
        return sum(pipeline.flush() for pipeline in self.pipelines)

    def publish(self) -> int:
        """Drain, flush and publish *every* shard; returns the version."""
        self.drain()
        for pipeline in self.pipelines:
            pipeline.publish()
        if tracing.tracer is not None:
            now_us = tracing.now_us()
            for shard in range(len(self._pending_spans)):
                self._stamp_publish(shard, now_us)
        return self.store.version

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def buffered(self) -> int:
        """Samples accepted but not yet applied (queues + batch buffers).

        Counted in *samples*, not queued chunks — ``/stats`` must show
        the true backlog during heavy streaming.
        """
        with self._counter_lock:
            queued = sum(self._queued_samples)
        return queued + sum(p.buffered for p in self.pipelines)

    @property
    def staleness(self) -> int:
        """Applied-but-unpublished measurements across all shards."""
        return sum(p.staleness for p in self.pipelines)

    def stats(self):
        """Aggregated ingest counters (live + merge-retired pipelines)."""
        retired = self._retired_stats
        total = IngestStats(
            applied=retired.applied,
            deduped=retired.deduped,
            clipped=retired.clipped,
            rejected_guard=retired.rejected_guard,
            dropped_invalid=retired.dropped_invalid,
            dropped_nan=retired.dropped_nan,
            batches=retired.batches,
            publishes=retired.publishes,
        )
        for pipeline in self.pipelines:
            stats = pipeline.stats()
            total.applied += stats.applied
            total.deduped += stats.deduped
            total.clipped += stats.clipped
            total.rejected_guard += stats.rejected_guard
            total.dropped_invalid += stats.dropped_invalid
            total.dropped_nan += stats.dropped_nan
            total.batches += stats.batches
            total.publishes += stats.publishes
            total.since_publish += stats.since_publish
        with self._counter_lock:
            total.received = self._received
            total.dropped_invalid += self._dropped_invalid
        return total

    def queue_load(self) -> List[Tuple[int, int]]:
        """Lock-free per-shard ``(queue_depth, queue_capacity)`` pairs.

        The :class:`~repro.serving.faults.LoadShedder` samples this on
        the request path, where :meth:`shard_info` would be wrong: its
        ``pipeline.stats()`` reads take each pipeline's lock, which a
        worker holds for its whole flush — exactly the congestion the
        shedder is trying to observe.  Raw ``qsize`` reads need no
        locks and are as fresh as the signal requires.
        """
        if not self._queues:
            return [(0, 0) for _ in range(self.shards)]
        return [(q.qsize(), self.queue_depth) for q in self._queues]

    def shard_info(self) -> List[Dict[str, object]]:
        """Per-shard vitals: queue depth, snapshot age/version, counters."""
        info: List[Dict[str, object]] = []
        for s, pipeline in enumerate(self.pipelines):
            snap = self.store.shard_snapshot(s)
            stats = pipeline.stats()
            info.append(
                {
                    "shard": s,
                    "owned_nodes": snap.owned,
                    "queue_depth": self._queues[s].qsize() if self._queues else 0,
                    "queue_capacity": self.queue_depth if self._queues else 0,
                    "queue_samples": self._queued_samples[s],
                    "buffered": pipeline.buffered,
                    "version": snap.version,
                    "snapshot_age_s": round(snap.age(), 6),
                    "applied": stats.applied,
                    "rejected_guard": stats.rejected_guard,
                    "publishes": stats.publishes,
                }
            )
        return info

    def guard_info(self) -> Dict[str, object]:
        """Aggregated guard state across shards (+ per-shard admission)."""
        pipeline = self.pipelines[0]
        info: Dict[str, object] = {
            "mode": self.mode,
            "step_clip": pipeline.step_clip,
            "deduped": 0,
            "clipped": 0,
            "rejected_total": 0,
        }
        retired = self._retired_stats
        info["deduped"] += retired.deduped  # type: ignore[operator]
        info["clipped"] += retired.clipped  # type: ignore[operator]
        info["rejected_total"] += retired.rejected_guard  # type: ignore[operator]
        admissions = list(self._retired_admissions)
        aggregated: Dict[str, object] = {}
        for p in self.pipelines:
            stats = p.stats()
            info["deduped"] += stats.deduped  # type: ignore[operator]
            info["clipped"] += stats.clipped  # type: ignore[operator]
            info["rejected_total"] += stats.rejected_guard  # type: ignore[operator]
            if p.guard is not None:
                admissions.append(p.guard.as_dict())
        if admissions:
            aggregated = {
                "received": sum(a["received"] for a in admissions),
                "admitted": sum(a["admitted"] for a in admissions),
                "rejected_total": sum(a["rejected_total"] for a in admissions),
                "rejected": {
                    reason: sum(a["rejected"][reason] for a in admissions)
                    for reason in admissions[0]["rejected"]
                },
            }
            info["admission"] = aggregated
        return info

    def stats_payload(self) -> Dict[str, object]:
        """The ``ingest``/``guard``/``shards``/``topology`` of ``/stats``."""
        ingest = self.stats().as_dict()
        ingest["buffered"] = self.buffered
        self._unify_shard_keys(ingest)
        ingest["dropped_backpressure"] = self.dropped_backpressure
        with self._counter_lock:
            ingest["dropped_membership"] = self._dropped_membership
        if self.worker_errors:
            ingest["worker_errors"] = list(self.worker_errors)
        return {
            "ingest": ingest,
            "guard": self.guard_info(),
            "shards": self.shard_info(),
            "topology": self.topology(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedIngest(shards={self.shards}, n={self.engine.n}, "
            f"mode={self.mode!r}, workers={bool(self._workers)})"
        )


class _CoalescedBatch:
    """One flush unit: requests answered together by a single gather."""

    __slots__ = (
        "sources",
        "targets",
        "event",
        "estimates",
        "version",
        "error",
        "callbacks",
    )

    def __init__(self) -> None:
        self.sources: List[int] = []
        self.targets: List[int] = []
        self.event = threading.Event()
        # a plain list after the flush (float extraction is amortized
        # by one vectorized tolist instead of paid per result() call)
        self.estimates: Optional[List[float]] = None
        self.version = 0
        self.error: Optional[BaseException] = None
        # completion callbacks (non-blocking consumers, e.g. the
        # selectors gateway loop); invoked by the flush worker after
        # the event is set, appended under the coalescer lock
        self.callbacks: List[Callable[[], None]] = []


class CoalescedRequest:
    """Handle to one coalesced single-pair query (future-like)."""

    __slots__ = ("_batch", "_index", "_coalescer")

    def __init__(
        self,
        batch: _CoalescedBatch,
        index: int,
        coalescer: "RequestCoalescer",
    ) -> None:
        self._batch = batch
        self._index = index
        self._coalescer = coalescer

    def done(self) -> bool:
        return self._batch.event.is_set()

    def on_done(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once the batch is answered (non-blocking).

        The callback runs on the coalescer's flush worker (or inline,
        right here, if the batch already completed), so it must be
        quick and must not block — the selectors backend uses it to
        hand the finished result back to its event loop via a wake
        pipe.  ``result(timeout=0)`` inside the callback never blocks.
        """
        batch = self._batch
        with self._coalescer._lock:
            if not batch.event.is_set():
                batch.callbacks.append(callback)
                return
        callback()  # already flushed: complete immediately

    def result(self, timeout: Optional[float] = None) -> Tuple[float, int]:
        """Block for the batch flush; returns ``(estimate, version)``.

        Fast path: once the flush has landed (``estimates`` is bound
        before the event is set, and the GIL orders the two writes),
        the result is read without touching the event's lock.
        """
        batch = self._batch
        if batch.estimates is None and batch.error is None:
            if not batch.event.wait(timeout):
                raise TimeoutError("coalesced request not answered in time")
        if batch.error is not None:
            raise batch.error
        return batch.estimates[self._index], batch.version


class RequestCoalescer:
    """Batch concurrent single-pair queries onto the vectorized path.

    Single ``GET /predict`` requests each cost a Python-level dot
    product plus interpreter overhead (~hundreds of thousands per
    second), while the batch gather answers tens of millions of pairs
    per second.  The coalescer closes that gap for *concurrent* single
    queries: the first request in a window opens a batch, requests
    arriving within ``window`` seconds join it, and one
    ``predict_pairs`` gather answers the whole batch — every waiter is
    released by a single shared event.

    Latency cost is bounded by ``window`` (default 1 ms); a lone
    request therefore pays at most the window before its gather runs.
    ``max_batch`` caps a batch so a flood flushes early instead of
    growing one giant gather.

    Parameters
    ----------
    service:
        The :class:`~repro.serving.service.PredictionService` answering
        the gathers (any store — single or sharded).
    window:
        Seconds the opener of a batch waits for co-travellers.
    max_batch:
        Flush immediately once a batch holds this many requests.
    """

    def __init__(
        self,
        service: PredictionService,
        *,
        window: float = 0.001,
        max_batch: int = 4096,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.service = service
        self.window = float(window)
        self.max_batch = int(max_batch)
        # cached model size for the hot-path range check; refreshed on
        # a miss, since membership epochs can grow/shrink the universe
        self._n = int(service.store.n)
        self._lock = threading.Lock()
        self._pending: Optional[_CoalescedBatch] = None
        self._ready: List[_CoalescedBatch] = []  # filled-to-max batches
        self._work_ready = threading.Event()  # a batch is open
        self._flush_now = threading.Event()  # a batch hit max_batch
        self._stopping = False
        self._thread: Optional[threading.Thread] = None
        # counters (written by the flush worker only)
        self.requests = 0
        self.batches = 0
        self.max_batch_seen = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "RequestCoalescer":
        """Start the flush worker; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("coalescer already started")
        self._stopping = False
        self._thread = threading.Thread(
            target=self._loop, name="repro-coalescer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the flush worker; pending requests are answered first."""
        self._stopping = True
        self._work_ready.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        # answer anything the worker did not get to before exiting
        for batch in self._drain():
            self._account(batch)
            self._flush(batch)

    def __enter__(self) -> "RequestCoalescer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # submission (the per-request hot path — kept deliberately lean:
    # one lock, two list appends, no per-request condition signaling)
    # ------------------------------------------------------------------

    def submit(self, source: int, target: int) -> CoalescedRequest:
        """Join the open batch (starting one if needed); non-blocking.

        Index validation happens here so one bad request rejects alone
        instead of failing everyone sharing its gather.
        """
        source = int(source)
        target = int(target)
        n = self._n
        if source < 0 or source >= n or target < 0 or target >= n:
            # the universe may have grown since the size was cached
            # (membership join); re-read before rejecting
            n = self._n = int(self.service.store.n)
            if source < 0 or source >= n or target < 0 or target >= n:
                raise ValueError(
                    f"pair ({source}, {target}) out of range for {n} nodes"
                )
        if self._thread is None:
            raise RuntimeError("coalescer is not running (call start())")
        lock = self._lock
        lock.acquire()
        batch = self._pending
        if batch is None:
            batch = self._pending = _CoalescedBatch()
            opened = True
        else:
            opened = False
        sources = batch.sources
        index = len(sources)
        sources.append(source)
        batch.targets.append(target)
        if index + 1 >= self.max_batch:
            # full: hand it to the worker and interrupt its window wait
            self._ready.append(batch)
            self._pending = None
            lock.release()
            self._flush_now.set()
            # the worker gates on _work_ready first, so a batch that
            # fills instantly (small max_batch) must set it too or it
            # would sit in _ready unflushed
            self._work_ready.set()
        else:
            lock.release()
            if opened:
                self._work_ready.set()
        return CoalescedRequest(batch, index, self)

    def estimate(self, source: int, target: int) -> Tuple[float, int]:
        """Blocking single-pair estimate through the coalesced path."""
        return self.submit(source, target).result()

    def refresh_model_size(self) -> int:
        """Re-read the store's node count into the submit-range cache.

        Called by the membership layer after an epoch transition (one
        int store, atomic under the GIL), so the hot-path range check
        tracks the new universe immediately; a grown universe is also
        picked up lazily on the first out-of-range miss.  Returns the
        refreshed size.
        """
        self._n = n = int(self.service.store.n)
        return n

    # ------------------------------------------------------------------
    # the flush worker
    # ------------------------------------------------------------------

    def _drain(self) -> List[_CoalescedBatch]:
        """Take every open/ready batch (worker or final-stop cleanup)."""
        with self._lock:
            batches = self._ready
            self._ready = []
            if self._pending is not None:
                batches.append(self._pending)
                self._pending = None
            self._work_ready.clear()
            self._flush_now.clear()
        return batches

    def _account(self, batch: _CoalescedBatch) -> None:
        size = len(batch.sources)
        self.batches += 1
        self.requests += size
        if size > self.max_batch_seen:
            self.max_batch_seen = size

    def _flush(self, batch: _CoalescedBatch) -> None:
        try:
            sources = np.asarray(batch.sources, dtype=int)
            targets = np.asarray(batch.targets, dtype=int)
            # A membership shrink between submit-time validation and
            # this gather can strand a request beyond the new universe;
            # answer that request NaN (-> JSON null) instead of failing
            # everyone sharing its gather with a batch-wide error.
            n = int(self.service.store.n)
            valid = (sources < n) & (targets < n)
            if valid.all():
                prediction = self.service.predict_pairs(sources, targets)
                batch.version = prediction.version
                batch.estimates = prediction.estimates.tolist()
            else:
                estimates = np.full(sources.size, np.nan)
                prediction = self.service.predict_pairs(
                    sources[valid], targets[valid]
                )
                estimates[valid] = prediction.estimates
                batch.version = prediction.version
                batch.estimates = estimates.tolist()
        except BaseException as exc:  # pragma: no cover - defensive
            batch.error = exc
        finally:
            # set under the lock so on_done's registered-vs-late check
            # is race-free; callbacks then run outside it
            with self._lock:
                batch.event.set()
                callbacks = batch.callbacks
                batch.callbacks = []
            for callback in callbacks:
                try:
                    callback()
                except Exception:  # pragma: no cover - consumer bug
                    pass

    def _loop(self) -> None:
        while True:
            if not self._work_ready.wait(timeout=0.05):
                if self._stopping:
                    return
                continue
            # a batch is open: give co-travellers up to one window to
            # join, unless a batch already filled to max_batch
            if not self._ready:
                self._flush_now.wait(timeout=self.window)
            for batch in self._drain():
                self._account(batch)
                self._flush(batch)
            if self._stopping:
                return

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready counters (the ``coalescer`` stats section)."""
        batches = self.batches
        requests = self.requests
        biggest = self.max_batch_seen
        return {
            "window_s": self.window,
            "max_batch": self.max_batch,
            "requests": requests,
            "batches": batches,
            "coalesced": requests - batches if batches else 0,
            "max_batch_seen": biggest,
            "mean_batch": round(requests / batches, 3) if batches else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RequestCoalescer(window={self.window}, "
            f"max_batch={self.max_batch}, requests={self.requests})"
        )
