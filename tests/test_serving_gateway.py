"""End-to-end tests: in-process HTTP gateway + client (repro.serving)."""

import json
from urllib.request import urlopen

import numpy as np
import pytest

from repro.core.config import DMFSGDConfig
from repro.core.engine import DMFSGDEngine, matrix_label_fn
from repro.serving import (
    GatewayError,
    IngestPipeline,
    PredictionService,
    ServingClient,
    ServingGateway,
)
from repro.serving.store import CoordinateStore


@pytest.fixture(scope="module")
def stack(rtt_labels_module):
    """Engine pre-trained briefly, wrapped in store/service/ingest."""
    labels = rtt_labels_module
    n = labels.shape[0]
    config = DMFSGDConfig(neighbors=8)
    engine = DMFSGDEngine(n, matrix_label_fn(labels), config, rng=11)
    engine.run(rounds=120)
    store = CoordinateStore(engine.coordinates)
    service = PredictionService(store, cache_size=256)
    ingest = IngestPipeline(
        engine, store, batch_size=64, refresh_interval=500
    )
    return store, service, ingest


@pytest.fixture(scope="module")
def rtt_labels_module():
    from repro.datasets import load_meridian

    return load_meridian(n_hosts=40, rng=7).class_matrix()


@pytest.fixture(scope="module")
def gateway(stack):
    _, service, ingest = stack
    with ServingGateway(service, ingest, port=0) as gw:
        yield gw


@pytest.fixture(scope="module")
def client(gateway):
    return ServingClient(gateway.url)


class TestQueryEndpoints:
    def test_health(self, client, stack):
        store, _, _ = stack
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["nodes"] == store.n

    def test_predict_pair_matches_service(self, client, stack):
        store, _, _ = stack
        payload = client.predict(1, 2)
        assert payload["estimate"] == pytest.approx(
            store.snapshot().estimate(1, 2)
        )
        assert payload["label"] in (-1, 1)

    def test_predict_from(self, client, stack):
        store, _, _ = stack
        payload = client.predict_from(0, targets=[1, 2, 3])
        assert payload["targets"] == [1, 2, 3]
        assert payload["estimates"][0] == pytest.approx(
            store.snapshot().estimate(0, 1)
        )

    def test_predict_from_full_row_masks_self(self, client, stack):
        store, _, _ = stack
        payload = client.predict_from(5)
        assert len(payload["estimates"]) == store.n
        assert payload["estimates"][5] is None

    def test_stats_exposes_both_sides(self, client):
        payload = client.stats()
        assert "service" in payload and "ingest" in payload
        assert payload["service"]["pair_queries"] >= 1

    def test_version_endpoint(self, client, stack):
        store, _, _ = stack
        assert client.version() == store.version


class TestErrorHandling:
    def test_missing_parameter_is_400(self, client, gateway):
        with pytest.raises(GatewayError) as excinfo:
            client._request("/predict?src=0")
        assert excinfo.value.status == 400

    def test_out_of_range_is_400(self, client, stack):
        store, _, _ = stack
        with pytest.raises(GatewayError) as excinfo:
            client.predict(0, store.n + 5)
        assert excinfo.value.status == 400

    def test_unknown_path_is_404(self, client):
        with pytest.raises(GatewayError) as excinfo:
            client._request("/nope")
        assert excinfo.value.status == 404

    def test_bad_ingest_body_is_400(self, client):
        with pytest.raises(GatewayError) as excinfo:
            client._request("/ingest", {"measurements": "nope"})
        assert excinfo.value.status == 400

    def test_non_numeric_measurement_is_400(self, client):
        # np.asarray raises TypeError on JSON objects; the gateway must
        # answer 400 instead of dropping the connection.
        with pytest.raises(GatewayError) as excinfo:
            client._request("/ingest", {"measurements": [[1, 2, {}]]})
        assert excinfo.value.status == 400

    def test_self_pair_is_400(self, client):
        with pytest.raises(GatewayError) as excinfo:
            client.predict(3, 3)
        assert excinfo.value.status == 400

    def test_non_json_body_is_400(self, gateway):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            gateway.url + "/ingest", data=b"not json"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urlopen(request, timeout=5)
        assert excinfo.value.code == 400


class TestReadOnlyGateway:
    def test_post_without_ingest_is_400(self, stack):
        _, service, _ = stack
        with ServingGateway(service, None, port=0) as gw:
            client = ServingClient(gw.url)
            with pytest.raises(GatewayError) as excinfo:
                client.refresh()
            assert excinfo.value.status == 400
            assert client.health()["status"] == "ok"


class TestOnlineLearningEndToEnd:
    def test_streamed_measurements_change_predictions(self, client, stack):
        """The acceptance-criteria scenario: query, stream >= 1k
        measurements, observe the served prediction change."""
        store, _, _ = stack
        rng = np.random.default_rng(99)
        n = store.n

        before = client.predict(3, 7)
        version_before = before["version"]

        # 1200 measurements: hammer pair (3, 7) with bad-class labels,
        # mixed with background traffic on random other pairs.
        measurements = []
        for k in range(1200):
            if k % 2 == 0:
                src, dst = (3, 7) if k % 4 == 0 else (7, 3)
                measurements.append((src, dst, -1.0))
            else:
                src = int(rng.integers(0, n))
                dst = int((src + 1 + rng.integers(0, n - 1)) % n)
                value = float(rng.choice([-1.0, 1.0]))
                measurements.append((src, dst, value))

        response = client.ingest(measurements)
        assert response["accepted"] == 1200
        client.refresh()  # drain the buffer and publish

        after = client.predict(3, 7)
        assert after["version"] > version_before  # refresh policy fired
        assert after["estimate"] != before["estimate"]
        assert after["estimate"] < before["estimate"]  # pushed toward bad

        ingest_stats = client.stats()["ingest"]
        assert ingest_stats["applied"] >= 1200
        assert ingest_stats["publishes"] >= 1

    def test_cache_invalidated_by_ingest_publish(self, client):
        first = client.predict(2, 9)
        cached = client.predict(2, 9)
        assert cached["cached"] is True
        client.ingest([(2, 9, -1.0)] * 64)
        client.refresh()
        fresh = client.predict(2, 9)
        assert fresh["cached"] is False
        assert fresh["version"] > first["version"]


class TestGatewayLifecycle:
    def test_port_zero_picks_free_port(self, gateway):
        assert gateway.port > 0
        assert str(gateway.port) in gateway.url

    def test_double_start_rejected(self, gateway):
        with pytest.raises(RuntimeError):
            gateway.start()

    def test_raw_http_speaks_json(self, gateway):
        with urlopen(gateway.url + "/health", timeout=5) as response:
            assert response.headers["Content-Type"] == "application/json"
            payload = json.loads(response.read().decode())
        assert payload["status"] == "ok"
