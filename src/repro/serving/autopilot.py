"""Self-driving topology: a hysteresis control loop over the shard plane.

The serving stack exposes topology as a *live* property
(:meth:`~repro.serving.plane.RoutedIngestBase.set_shard_count` and the
``split_shard`` / ``merge_shards`` entry points); this module closes the
loop.  :class:`Autopilot` samples the plane's vitals — queue fill,
per-shard apply throughput, worker heartbeat progress — and applies a
watermark-with-hysteresis policy (:class:`AutopilotPolicy`) to decide
when to split a hot plane, merge a cold one, or do nothing.

Three design rules keep the loop safe to leave running:

* **hysteresis, not thresholds** — an action needs ``patience``
  consecutive samples beyond a watermark, and after any action the loop
  holds still for ``cooldown_s`` seconds.  A reconfiguration costs one
  drain-and-republish transition, so the controller must never chase a
  single noisy sample into a split/merge/split oscillation;
* **veto on instability** — while any worker's heartbeat has stalled
  (its counter stopped advancing with work still queued, e.g. mid
  crash-recovery), the loop refuses to act: re-striding a plane that is
  already replacing workers only compounds the disruption;
* **observability first** — every sample, decision and error is kept
  (bounded) and served through :meth:`Autopilot.as_dict` in ``/stats``,
  and manual operator actions (``POST /admin/reconfig``) run through
  the same :meth:`Autopilot.reconfig` path so the action log is one
  timeline.

:class:`PeriodicController` is the reusable base the loop shares with
:class:`~repro.serving.guard.AdaptiveGuardTuner`: both are "every so
often, re-derive and maybe act" controllers; the tuner paces itself on
a *sample-count* mark (evaluator observations), the autopilot on a
*wall-clock* mark.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, fields
from typing import Callable, Dict, List, Optional

__all__ = [
    "PeriodicController",
    "AutopilotPolicy",
    "Autopilot",
]


class PeriodicController:
    """Base for controllers that act every ``interval`` of some mark.

    A *mark* is any monotone progress measure — observed sample counts
    (:class:`~repro.serving.guard.AdaptiveGuardTuner`), wall-clock
    seconds (:class:`Autopilot`).  :meth:`_due` gates on it: the first
    call whose mark is at least ``interval`` past the last due mark
    returns ``True`` and re-arms.  Subclasses call
    :meth:`_record_update` when they actually change something, so
    ``updates`` counts *actions taken*, not polls.
    """

    def __init__(self, *, interval: float, min_samples: int = 1) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.interval = interval
        self.min_samples = int(min_samples)
        self.updates = 0
        self._last_mark: float = 0.0

    def _due(self, mark: float) -> bool:
        """Whether an interval elapsed since the last due mark (re-arms)."""
        if mark - self._last_mark < self.interval:
            return False
        self._last_mark = mark
        return True

    def _record_update(self) -> None:
        self.updates += 1


@dataclass(frozen=True)
class AutopilotPolicy:
    """Watermarks and hysteresis knobs for the reconfig control loop.

    Loadable from a JSON file (:meth:`from_file`) so operators version
    policies next to their deployment configs; unknown keys are
    rejected loudly rather than silently ignored.

    Parameters
    ----------
    sample_interval_s:
        Seconds between signal samples (the controller's mark interval).
    split_queue_fill:
        High watermark on the *worst* shard's queue fill
        (``queue_depth / queue_capacity``); sustained fill at or above
        it votes to split.
    merge_queue_fill:
        Low watermark on the worst shard's queue fill; sustained fill
        at or below it (with pps also cold, if configured) votes to
        merge.  Must sit strictly below ``split_queue_fill`` — the gap
        is the hysteresis band.
    split_pps / merge_pps:
        Optional per-shard apply-throughput watermarks (samples/s on
        the hottest shard).  ``None`` disables the pps vote.
    patience:
        Consecutive hot (cold) samples required before a split (merge).
    cooldown_s:
        Minimum seconds between actions, measured action-to-action.
    min_shards / max_shards:
        Hard bounds the loop never crosses (manual
        :meth:`Autopilot.reconfig` is not bound by them).
    """

    sample_interval_s: float = 0.5
    split_queue_fill: float = 0.75
    merge_queue_fill: float = 0.15
    split_pps: Optional[float] = None
    merge_pps: Optional[float] = None
    patience: int = 3
    cooldown_s: float = 5.0
    min_shards: int = 1
    max_shards: int = 8

    def __post_init__(self) -> None:
        if self.sample_interval_s <= 0:
            raise ValueError(
                f"sample_interval_s must be positive, got "
                f"{self.sample_interval_s}"
            )
        if not 0.0 <= self.merge_queue_fill < self.split_queue_fill <= 1.0:
            raise ValueError(
                "need 0 <= merge_queue_fill < split_queue_fill <= 1, got "
                f"[{self.merge_queue_fill}, {self.split_queue_fill}]"
            )
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")
        if self.cooldown_s < 0:
            raise ValueError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError(
                "need 1 <= min_shards <= max_shards, got "
                f"[{self.min_shards}, {self.max_shards}]"
            )
        for name in ("split_pps", "merge_pps"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    @classmethod
    def from_file(cls, path: str) -> "AutopilotPolicy":
        """Load a policy from a JSON object file (unknown keys rejected)."""
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        if not isinstance(raw, dict):
            raise ValueError(
                f"autopilot policy file {path!r} must hold a JSON object, "
                f"got {type(raw).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ValueError(
                f"unknown autopilot policy keys {unknown} in {path!r} "
                f"(known: {sorted(known)})"
            )
        return cls(**raw)

    def as_dict(self) -> Dict[str, object]:
        """Policy knobs as a plain dict (the `/stats` policy object)."""
        return asdict(self)


class Autopilot(PeriodicController):
    """The reconfig control loop: sample vitals, split/merge on hysteresis.

    Drives any mutable-topology :class:`~repro.serving.plane.ShardPlane`
    (thread-mode :class:`~repro.serving.shard.ShardedIngest` or
    process-mode :class:`~repro.serving.procs.ProcessShardedIngest`)
    purely through the public plane surface — ``shard_info()`` for
    signals, ``split_shard`` / ``merge_shards`` for actions — so it is
    oblivious to the transport underneath.

    Run it as a daemon thread (``start()`` / ``stop()``, or as a
    context manager), or drive it synchronously by calling
    :meth:`step` with an explicit clock (how the tests and the reconfig
    benchmark use it).  ``pause()`` keeps sampling but suspends
    decisions — the ``POST /admin/reconfig`` escape hatch for an
    operator who wants the wheel back.

    Thread safety: :meth:`step` and :meth:`reconfig` serialize on one
    internal lock; the plane's own submission gate makes the underlying
    transition atomic regardless.
    """

    def __init__(
        self,
        plane,
        policy: Optional[AutopilotPolicy] = None,
        *,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else AutopilotPolicy()
        super().__init__(interval=self.policy.sample_interval_s)
        self.plane = plane
        self._now = now
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.paused = False
        self.samples = 0
        self.actions: List[Dict[str, object]] = []
        self.errors: List[str] = []
        self.last_signals: Dict[str, object] = {}
        self._hot_streak = 0
        self._cold_streak = 0
        self._last_action_at: Optional[float] = None
        # per-shard (mark, applied) for pps; (counter, stalled samples)
        # for heartbeat progress — both keyed by shard id and reset on
        # every topology change (ids are re-strided)
        self._pps_state: Dict[int, "tuple[float, int]"] = {}
        self._hb_state: Dict[int, "tuple[int, int]"] = {}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Autopilot":
        """Spawn the sampling thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-autopilot", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampling thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Autopilot":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the sampling thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def pause(self) -> None:
        """Suspend decisions (sampling continues; streaks reset)."""
        with self._lock:
            self.paused = True
            self._hot_streak = self._cold_streak = 0

    def resume(self) -> None:
        """Lift a pause(); the next hot/cold streak starts fresh."""
        with self._lock:
            self.paused = False

    def _run(self) -> None:
        # poll finer than the sample interval so stop() stays prompt;
        # _due() paces the actual sampling
        poll = max(0.01, min(0.1, self.policy.sample_interval_s / 4.0))
        while not self._stop.wait(poll):
            try:
                self.step()
            except Exception as exc:  # pragma: no cover - defensive
                self._note_error(f"autopilot step failed: {exc!r}")

    # -- the control loop ----------------------------------------------

    def step(self, now: Optional[float] = None) -> Optional[Dict[str, object]]:
        """One controller tick: sample if due, decide, maybe act.

        Returns the action record when an action was taken, else
        ``None``.  Passing ``now`` (any monotone clock) makes the loop
        fully deterministic for tests.
        """
        with self._lock:
            mark = self._now() if now is None else float(now)
            if not self._due(mark):
                return None
            try:
                info = self.plane.shard_info()
            except Exception as exc:
                self._note_error(f"shard_info failed: {exc!r}")
                return None
            signals = self._signals(info, mark)
            self.samples += 1
            self.last_signals = signals
            if self.paused:
                return None
            return self._decide(signals, mark)

    def _signals(self, info, mark: float) -> Dict[str, object]:
        """Condense ``shard_info()`` into the controller's signal set."""
        fills: List[float] = []
        pps: List[float] = []
        stalled: List[int] = []
        pps_state: Dict[int, "tuple[float, int]"] = {}
        hb_state: Dict[int, "tuple[int, int]"] = {}
        for entry in info:
            shard = int(entry["shard"])
            capacity = int(entry.get("queue_capacity", 0) or 0)
            depth = max(0, int(entry.get("queue_depth", 0) or 0))
            fills.append(depth / capacity if capacity > 0 else 0.0)
            applied = int(entry.get("applied", 0) or 0)
            last = self._pps_state.get(shard)
            rate = 0.0
            if last is not None and mark > last[0]:
                rate = max(0.0, (applied - last[1]) / (mark - last[0]))
            pps_state[shard] = (mark, applied)
            pps.append(rate)
            heartbeat = entry.get("heartbeat")
            if heartbeat is not None:
                heartbeat = int(heartbeat)
                prev = self._hb_state.get(shard)
                pending = int(entry.get("queue_samples", 0) or 0)
                stall = 0
                if (
                    prev is not None
                    and heartbeat == prev[0]
                    and pending > 0
                ):
                    stall = prev[1] + 1
                hb_state[shard] = (heartbeat, stall)
                if stall:
                    stalled.append(shard)
        self._pps_state = pps_state
        self._hb_state = hb_state
        hottest = 0
        if fills:
            hottest = max(range(len(fills)), key=lambda s: (fills[s], pps[s]))
        coldest = sorted(range(len(fills)), key=lambda s: (fills[s], pps[s]))
        return {
            "shards": len(info),
            "queue_fill": round(max(fills), 4) if fills else 0.0,
            "pps_max": round(max(pps), 3) if pps else 0.0,
            "pps_total": round(sum(pps), 3),
            "hottest_shard": hottest,
            "coldest_shards": coldest[:2],
            "stalled_shards": stalled,
        }

    def _decide(
        self, signals: Dict[str, object], mark: float
    ) -> Optional[Dict[str, object]]:
        policy = self.policy
        if signals["stalled_shards"]:
            # a worker stopped making progress with work queued: the
            # supervisor is (or should be) replacing it — re-striding
            # now would stack transitions, so hold still
            self._hot_streak = self._cold_streak = 0
            return None
        fill = float(signals["queue_fill"])
        pps_max = float(signals["pps_max"])
        hot = fill >= policy.split_queue_fill or (
            policy.split_pps is not None and pps_max >= policy.split_pps
        )
        cold = fill <= policy.merge_queue_fill and (
            policy.merge_pps is None or pps_max <= policy.merge_pps
        )
        self._hot_streak = self._hot_streak + 1 if hot else 0
        self._cold_streak = self._cold_streak + 1 if cold else 0
        if (
            self._last_action_at is not None
            and mark - self._last_action_at < policy.cooldown_s
        ):
            return None
        shards = int(signals["shards"])
        if self._hot_streak >= policy.patience and shards < policy.max_shards:
            return self._act(
                "split", signals, mark, reason="autopilot:queue-hot"
            )
        if self._cold_streak >= policy.patience and shards > policy.min_shards:
            return self._act(
                "merge", signals, mark, reason="autopilot:queue-cold"
            )
        return None

    def _act(
        self,
        action: str,
        signals: Dict[str, object],
        mark: float,
        *,
        reason: str,
    ) -> Optional[Dict[str, object]]:
        try:
            if action == "split":
                topology = self.plane.split_shard(
                    int(signals["hottest_shard"]), reason=reason
                )
            else:
                cold = list(signals["coldest_shards"])
                if len(cold) < 2:  # pragma: no cover - shards >= 2 here
                    return None
                topology = self.plane.merge_shards(
                    int(cold[0]), int(cold[1]), reason=reason
                )
        except Exception as exc:
            self._note_error(f"{action} failed: {exc!r}")
            return None
        self._hot_streak = self._cold_streak = 0
        self._last_action_at = mark
        self._pps_state = {}
        self._hb_state = {}
        self._record_update()
        record = {
            "action": action,
            "reason": reason,
            "shards": topology["shard_count"],
            "epoch": topology["topology_epoch"],
            "transition_ms": topology["last_transition_ms"],
            "signals": dict(signals),
        }
        self.actions.append(record)
        del self.actions[:-32]
        return record

    # -- manual operator path (POST /admin/reconfig) ---------------------

    def reconfig(
        self, shards: int, *, reason: str = "admin"
    ) -> Dict[str, object]:
        """Operator-requested re-stride, logged on the autopilot timeline.

        Not bound by the policy's ``min_shards``/``max_shards`` (the
        plane still enforces ``[1, n]``); resets streaks and starts a
        cooldown so the loop does not immediately fight the operator.
        """
        with self._lock:
            topology = self.plane.set_shard_count(int(shards), reason=reason)
            mark = self._now()
            self._hot_streak = self._cold_streak = 0
            self._last_action_at = mark
            self._pps_state = {}
            self._hb_state = {}
            self._record_update()
            record = {
                "action": "reconfig",
                "reason": reason,
                "shards": topology["shard_count"],
                "epoch": topology["topology_epoch"],
                "transition_ms": topology["last_transition_ms"],
                "signals": dict(self.last_signals),
            }
            self.actions.append(record)
            del self.actions[:-32]
            return topology

    # -- introspection ---------------------------------------------------

    def _note_error(self, message: str) -> None:
        self.errors.append(message)
        del self.errors[:-8]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready controller state (the ``autopilot`` /stats section)."""
        payload: Dict[str, object] = {
            "running": self.running,
            "paused": self.paused,
            "samples": self.samples,
            "actions_taken": self.updates,
            "hot_streak": self._hot_streak,
            "cold_streak": self._cold_streak,
            "policy": self.policy.as_dict(),
            "signals": dict(self.last_signals),
            "actions": list(self.actions[-8:]),
        }
        if self.errors:
            payload["errors"] = list(self.errors)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Autopilot(running={self.running}, samples={self.samples}, "
            f"actions={self.updates}, shards={self.plane.shards})"
        )
