"""Online serving subsystem: a queryable, incrementally-updated service.

The offline pipeline ends with a trained factor pair ``(U, V)``; this
package turns that into the long-lived system the paper envisions —
every node's performance class towards every other node, predictable on
demand while fresh measurements keep improving the model:

* :mod:`repro.serving.store` — :class:`CoordinateStore`, versioned
  copy-on-write snapshots of the factors with save/load checkpointing;
* :mod:`repro.serving.service` — :class:`PredictionService`,
  single-pair / one-to-many / full-batch prediction with a bounded,
  version-keyed LRU cache;
* :mod:`repro.serving.ingest` — :class:`IngestPipeline`, streaming
  measurements applied as incremental mini-batch SGD with a
  staleness-bounded refresh policy;
* :mod:`repro.serving.gateway` — :class:`ServingGateway`, a
  stdlib-only JSON/HTTP frontend (``repro serve``);
* :mod:`repro.serving.client` — :class:`ServingClient`, the matching
  :mod:`urllib` client;
* :mod:`repro.serving.app` — :func:`build_gateway`, the one-stop
  dataset-to-gateway assembler.

Quick start::

    from repro.serving import build_gateway, ServingClient

    with build_gateway("meridian", nodes=120, port=0) as gateway:
        client = ServingClient(gateway.url)
        print(client.predict(3, 17))         # {'estimate': ..., 'label': 1, ...}
        client.ingest([(3, 17, 250.0)] * 64) # stream new measurements
        client.refresh()                     # publish -> new version
"""

from repro.serving.app import build_gateway
from repro.serving.client import GatewayError, ServingClient
from repro.serving.gateway import ServingGateway
from repro.serving.ingest import IngestPipeline, IngestStats
from repro.serving.service import (
    PairPrediction,
    PredictionService,
    RowPrediction,
    ServiceStats,
)
from repro.serving.store import CoordinateSnapshot, CoordinateStore

__all__ = [
    "build_gateway",
    "GatewayError",
    "ServingClient",
    "ServingGateway",
    "IngestPipeline",
    "IngestStats",
    "PairPrediction",
    "PredictionService",
    "RowPrediction",
    "ServiceStats",
    "CoordinateSnapshot",
    "CoordinateStore",
]
