"""Tests for the message-level DMFSGD protocol (Algorithms 1 and 2)."""

import numpy as np
import pytest

from repro.core.config import DMFSGDConfig
from repro.core.dmfsgd import DMFSGDSimulation, oracle_from_matrix
from repro.evaluation import auc_score


@pytest.fixture
def config():
    return DMFSGDConfig(neighbors=6)


class TestOracle:
    def test_lookup(self):
        matrix = np.array([[np.nan, 1.0], [-1.0, np.nan]])
        oracle = oracle_from_matrix(matrix)
        assert oracle(0, 1) == 1.0
        assert oracle(1, 0) == -1.0
        assert np.isnan(oracle(0, 0))


class TestRttProtocol:
    def test_messages_flow(self, rtt_labels, config):
        n = rtt_labels.shape[0]
        sim = DMFSGDSimulation(
            n, oracle_from_matrix(rtt_labels), config, metric="rtt", rng=0
        )
        sim.run(duration=20.0)
        sent = sim.network.messages_sent
        assert sent["rtt_probe"] > 0
        assert sent["rtt_reply"] > 0
        # every delivered probe generates one reply
        assert sent["rtt_reply"] == sim.network.messages_delivered["rtt_probe"]

    def test_learning_happens(self, rtt_labels, config):
        n = rtt_labels.shape[0]
        sim = DMFSGDSimulation(
            n, oracle_from_matrix(rtt_labels), config, metric="rtt", rng=0
        )
        before = auc_score(rtt_labels, sim.coordinate_table().estimate_matrix())
        sim.run(duration=150.0)
        after = auc_score(rtt_labels, sim.coordinate_table().estimate_matrix())
        assert after > before
        assert after > 0.8

    def test_measurements_accumulate(self, rtt_labels, config):
        n = rtt_labels.shape[0]
        sim = DMFSGDSimulation(
            n, oracle_from_matrix(rtt_labels), config, metric="rtt", rng=0
        )
        sim.run(duration=30.0)
        # roughly one probe per node per second, minus NaN pairs
        assert sim.measurements > 10 * n

    def test_history_snapshots(self, rtt_labels, config):
        n = rtt_labels.shape[0]
        sim = DMFSGDSimulation(
            n, oracle_from_matrix(rtt_labels), config, metric="rtt", rng=0
        )
        evaluator = lambda table: {
            "auc": auc_score(rtt_labels, table.estimate_matrix())
        }
        history = sim.run(duration=40.0, evaluator=evaluator, eval_every=10.0)
        assert len(history) >= 4

    def test_message_loss_tolerated(self, rtt_labels, config):
        n = rtt_labels.shape[0]
        sim = DMFSGDSimulation(
            n,
            oracle_from_matrix(rtt_labels),
            config,
            metric="rtt",
            loss_rate=0.2,
            rng=0,
        )
        sim.run(duration=150.0)
        auc = auc_score(rtt_labels, sim.coordinate_table().estimate_matrix())
        assert auc > 0.75  # learning survives 20% message loss
        assert sum(sim.network.messages_dropped.values()) > 0


class TestAbwProtocol:
    def test_messages_flow(self, abw_labels, config):
        n = abw_labels.shape[0]
        sim = DMFSGDSimulation(
            n, oracle_from_matrix(abw_labels), config, metric="abw", rng=0
        )
        sim.run(duration=20.0)
        sent = sim.network.messages_sent
        assert sent["abw_probe"] > 0 and sent["abw_reply"] > 0

    def test_learning_happens(self, abw_labels, config):
        n = abw_labels.shape[0]
        sim = DMFSGDSimulation(
            n, oracle_from_matrix(abw_labels), config, metric="abw", rng=0
        )
        sim.run(duration=200.0)
        auc = auc_score(abw_labels, sim.coordinate_table().estimate_matrix())
        assert auc > 0.8

    def test_reply_carries_label_and_v(self, abw_labels, config):
        """Algorithm 2 step 3: the reply ships x_ij and v_j."""
        n = abw_labels.shape[0]
        sim = DMFSGDSimulation(
            n, oracle_from_matrix(abw_labels), config, metric="abw", rng=0
        )
        captured = []
        original_send = sim.network.send

        def spy(message):
            if message.kind == "abw_reply":
                captured.append(message)
            original_send(message)

        sim.network.send = spy
        sim.run(duration=5.0)
        assert captured, "no ABW replies observed"
        reply = captured[0]
        assert reply.payload["x"] in (1.0, -1.0)
        assert reply.payload["v"].shape == (sim.config.rank,)


class TestValidation:
    def test_rejects_tiny_n(self, config):
        with pytest.raises(ValueError):
            DMFSGDSimulation(1, oracle_from_matrix(np.zeros((1, 1))), config)

    def test_rejects_bad_interval(self, rtt_labels, config):
        with pytest.raises(ValueError):
            DMFSGDSimulation(
                rtt_labels.shape[0],
                oracle_from_matrix(rtt_labels),
                config,
                probe_interval=0.0,
            )

    def test_rejects_bad_duration(self, rtt_labels, config):
        sim = DMFSGDSimulation(
            rtt_labels.shape[0], oracle_from_matrix(rtt_labels), config, rng=0
        )
        with pytest.raises(ValueError):
            sim.run(duration=0.0)


class TestDecentralization:
    def test_state_is_per_node(self, rtt_labels, config):
        """Coordinates live in the nodes, not in any central table."""
        n = rtt_labels.shape[0]
        sim = DMFSGDSimulation(
            n, oracle_from_matrix(rtt_labels), config, metric="rtt", rng=0
        )
        sim.run(duration=10.0)
        table_a = sim.coordinate_table()
        # mutating the exported snapshot must not affect node state
        table_a.U[:] = 0.0
        table_b = sim.coordinate_table()
        assert not np.allclose(table_b.U, 0.0)
