"""Ablation bench — DMFSGD vs IDES-style landmark factorization.

The paper's architectural pitch: no landmarks, no hotspots.  Checked:
DMFSGD matches or beats the landmark system's accuracy while its
per-node measurement load is an order of magnitude below the load each
landmark must answer.
"""

from repro.experiments import ext_applications


def test_ablation_landmarks(run_once, report):
    result = run_once(ext_applications.run_landmarks)
    report("Ablation — landmarks vs DMFSGD", ext_applications.format_result(result))

    assert result["dmfsgd_auc"] > 0.85
    assert result["dmfsgd_auc"] > result["landmark_auc"] - 0.05, (
        "DMFSGD should be competitive with the landmark architecture"
    )
    assert (
        result["landmark_per_node_load"]
        > 10 * result["dmfsgd_per_node_load"]
    ), "the landmark hotspot cost should dominate DMFSGD's k probes"
