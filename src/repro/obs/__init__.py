"""Telemetry plane: unified metrics, latency histograms, request tracing.

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: lock-free
  counters/gauges/histograms (per-thread cells summed on scrape, one
  shared log-spaced bucket ladder) plus scrape-time collectors and the
  Prometheus text renderer behind ``GET /metrics``;
* :mod:`repro.obs.tracing` — span ids minted at the gateway and
  stamped through accept → admit → queue → apply → publish, crossing
  the shared-memory boundary in process mode; armed exactly like the
  fault plane (module-global ``tracer``, off by default);
* :mod:`repro.obs.bridge` — collectors mapping every existing stats
  surface (ingest counters, shard rows, breaker/shedder/chaos vitals,
  mirror lag, autopilot signals) onto canonical metric families so all
  three worker planes export identical names;
* :mod:`repro.obs.top` — the ``repro top`` live terminal view.
"""

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    BUCKET_COUNT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    escape_label_value,
    histogram_quantile,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "BUCKET_BOUNDS",
    "BUCKET_COUNT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "bucket_index",
    "escape_label_value",
    "histogram_quantile",
]
