"""Streaming measurement ingestion with incremental model refresh.

The paper's deployment story is a *living* system: application traffic
keeps producing new RTT/ABW observations, and the factor model must
track them (Section 6.1 runs the Harvard stream in time order for
exactly this reason).  :class:`IngestPipeline` is that loop as a
service component:

1. measurements arrive one at a time (:meth:`IngestPipeline.submit`),
   in arrays (:meth:`IngestPipeline.submit_many`) or as a whole
   :class:`~repro.datasets.trace.MeasurementTrace`
   (:meth:`IngestPipeline.ingest_trace`);
2. an optional :class:`~repro.serving.guard.AdmissionGuard` sheds
   rate-limited and outlier traffic at the door;
3. admitted measurements are buffered into mini-batches and applied to
   the training engine with
   :meth:`~repro.core.engine.DMFSGDEngine.apply_measurements` — the
   same eqs. 9-13 SGD updates as offline training, so online serving
   needs no second learning rule;
4. a **refresh policy** bounds staleness: once ``refresh_interval``
   measurements have been applied since the last publish, the updated
   factors are pushed to the :class:`~repro.serving.store.CoordinateStore`,
   bumping the version (which invalidates the service's cache).

Raw measured quantities are mapped to training values by ``classify``
(the engine's ``label_fn`` value contract): a
:class:`~repro.measurement.classifier.ThresholdClassifier` for
class-based serving, or the identity for the L2/quantity variant.

Consistency-model caveat (and the hot-pair bug it causes)
---------------------------------------------------------
Within one mini-batch every update reads **batch-start** coordinates —
the engine's asynchrony model, faithful to in-flight messages carrying
slightly stale coordinates.  The corollary: ``m`` copies of the same
pair inside one batch each contribute a *full* SGD step, multiplying
that pair's effective step by ``m``.  A source hammering one pair can
therefore diverge its estimate (observed live: 1200 measurements of
one pair pushed ``|x_hat|`` towards 1e10).  ``mode="guarded"`` (the
default) closes this hole by averaging duplicate pairs within each
batch before applying, optionally clipping each pair's coordinate step
to ``step_clip``; ``mode="raw"`` preserves the seed behavior exactly —
every sample counted, no clip — for trace-replay fidelity.
"""

from __future__ import annotations

import math
import threading
import warnings
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.engine import DMFSGDEngine, dedup_pairs
from repro.datasets.trace import MeasurementTrace
from repro.serving import faults
from repro.serving.guard import (
    AdaptiveGuardTuner,
    AdmissionGuard,
    OnlineEvaluator,
)
from repro.serving.store import CoordinateStore

__all__ = ["IngestStats", "IngestPipeline"]

Classifier = Callable[[np.ndarray], np.ndarray]


@dataclass
class IngestStats:
    """Cumulative ingestion counters.

    ``dropped_invalid`` counts validation drops (NaN values, bad
    indices, self-pairs) and ``dropped_nan`` counts classifier-emitted
    NaN training values — split so ``/stats`` can tell malformed
    traffic from near-threshold quantities the classifier refuses to
    label.  ``rejected_guard`` counts admission-control rejections
    (see the guard's own breakdown for reasons), ``deduped`` the
    duplicate samples merged within batches, and ``clipped`` the
    coordinate steps bounded by the step clip.
    """

    received: int = 0
    applied: int = 0
    deduped: int = 0
    clipped: int = 0
    rejected_guard: int = 0
    dropped_invalid: int = 0
    dropped_nan: int = 0
    batches: int = 0
    publishes: int = 0
    since_publish: int = 0

    @property
    def dropped(self) -> int:
        """Total drops (validation + classifier), the pre-split counter."""
        return self.dropped_invalid + self.dropped_nan

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready counters (the ``ingest`` section of ``/stats``)."""
        payload = dict(self.__dict__)
        payload["dropped"] = self.dropped
        return payload


class IngestPipeline:
    """Mini-batch SGD ingestion feeding a coordinate store.

    Thread-safety: all public methods are safe to call from any
    thread — one internal re-entrant lock serializes submission,
    flushing, publishing and counter reads.  The engine and guard are
    only ever touched under that lock, so neither needs locking of its
    own when owned by a single pipeline.

    Parameters
    ----------
    engine:
        The (typically pre-trained) trainer whose coordinates are
        served.  The pipeline owns further updates to it.
    store:
        Destination of published snapshots; its model shape must match
        the engine.
    classify:
        Maps raw measured quantities to training values (see module
        docstring); identity when omitted.
    batch_size:
        Buffered measurements per SGD step; within a batch updates read
        batch-start coordinates, the engine's asynchrony model.
    refresh_interval:
        Publish after this many *applied* measurements (staleness
        bound).  Measurements still in the buffer are not yet applied;
        call :meth:`flush` or :meth:`publish` to force them out.
    mode:
        ``"guarded"`` (default) averages duplicate pairs within each
        batch and applies ``step_clip`` — one hot pair cannot multiply
        its SGD step by its duplicate count.  ``"raw"`` reproduces the
        unguarded behavior sample for sample (trace-replay fidelity);
        it rejects ``guard``/``step_clip`` to keep fidelity unambiguous.
    step_clip:
        Optional per-pair L2 bound on each coordinate step (guarded
        mode only); ``None`` disables clipping.
    guard:
        Optional :class:`~repro.serving.guard.AdmissionGuard` applying
        rate limiting and outlier rejection before buffering.
    evaluator:
        Optional :class:`~repro.serving.guard.OnlineEvaluator` fed
        test-then-train samples: each admitted batch is predicted by
        the current model *before* it is applied.
    adaptive:
        Optional :class:`~repro.serving.guard.AdaptiveGuardTuner`
        re-deriving ``step_clip`` and the sigma-filter multiplier from
        the evaluator's sliding window after each evaluated batch
        (requires ``evaluator``; guarded mode only).
    """

    def __init__(
        self,
        engine: DMFSGDEngine,
        store: CoordinateStore,
        *,
        classify: Optional[Classifier] = None,
        batch_size: int = 256,
        refresh_interval: int = 1000,
        mode: str = "guarded",
        step_clip: Optional[float] = None,
        guard: Optional[AdmissionGuard] = None,
        evaluator: Optional[OnlineEvaluator] = None,
        adaptive: Optional[AdaptiveGuardTuner] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if refresh_interval <= 0:
            raise ValueError(
                f"refresh_interval must be positive, got {refresh_interval}"
            )
        if store.n != engine.n:
            raise ValueError(
                f"store has {store.n} nodes, engine has {engine.n}"
            )
        if mode not in ("guarded", "raw"):
            raise ValueError(f"mode must be 'guarded' or 'raw', got {mode!r}")
        if mode == "raw" and (
            guard is not None or step_clip is not None or adaptive is not None
        ):
            raise ValueError(
                "mode='raw' is the fidelity mode: it cannot combine with "
                "guard, step_clip or adaptive tuning"
            )
        if step_clip is not None and step_clip <= 0:
            raise ValueError(f"step_clip must be positive, got {step_clip}")
        if adaptive is not None and evaluator is None:
            raise ValueError(
                "adaptive tuning derives thresholds from the online "
                "evaluator's window; pass evaluator= as well"
            )
        self.engine = engine
        self.store = store
        self.classify = classify or (lambda values: values)
        self.batch_size = int(batch_size)
        self.refresh_interval = int(refresh_interval)
        self.mode = mode
        self.step_clip = None if step_clip is None else float(step_clip)
        self.guard = guard
        self.evaluator = evaluator
        self.adaptive = adaptive
        self._lock = threading.RLock()
        self._sources: List[int] = []
        self._targets: List[int] = []
        self._values: List[float] = []
        self._stats = IngestStats()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, source: int, target: int, value: float) -> bool:
        """Accept one measurement (flushes when a batch fills up).

        This is the gateway's hot path, so it validates the scalars
        directly instead of paying :meth:`submit_many`'s array
        round-trip per sample.  Returns whether the sample was kept.
        """
        source_f, target_f, value = float(source), float(target), float(value)
        n = self.engine.n
        src = dst = -1
        valid = (
            math.isfinite(value)
            and math.isfinite(source_f)
            and math.isfinite(target_f)
        )
        if valid:
            src, dst = int(source_f), int(target_f)
            valid = (
                src == source_f
                and dst == target_f
                and 0 <= src < n
                and 0 <= dst < n
                and src != dst
            )
        with self._lock:
            self._stats.received += 1
            if not valid:
                self._stats.dropped_invalid += 1
                return False
            if self.guard is not None and not self.guard.admit_one(
                src, dst, value
            ):
                self._stats.rejected_guard += 1
                return False
            self._sources.append(src)
            self._targets.append(dst)
            self._values.append(value)
            if len(self._values) >= self.batch_size:
                self._flush_one_batch()
        return True

    def submit_many(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        values: np.ndarray,
    ) -> int:
        """Accept a batch of measurements; returns how many were kept.

        Invalid samples — NaN values, out-of-range indices,
        self-measurements — are dropped and counted, never raised:
        a serving endpoint must survive malformed traffic.  Samples the
        admission guard rejects (rate limit, outliers) are likewise
        counted, not raised; the returned count is what actually
        entered the buffer.
        """
        sources = np.asarray(sources, dtype=float)
        targets = np.asarray(targets, dtype=float)
        values = np.asarray(values, dtype=float)
        if not sources.shape == targets.shape == values.shape or sources.ndim != 1:
            raise ValueError(
                "sources, targets and values must be matching 1-D arrays"
            )
        n = self.engine.n
        with np.errstate(invalid="ignore"):
            keep = (
                np.isfinite(values)
                & np.isfinite(sources)
                & np.isfinite(targets)
                & (sources == np.floor(sources))
                & (targets == np.floor(targets))
                & (sources >= 0)
                & (sources < n)
                & (targets >= 0)
                & (targets < n)
                & (sources != targets)
            )
        kept = int(keep.sum())
        with self._lock:
            self._stats.received += int(values.size)
            self._stats.dropped_invalid += int(values.size) - kept
            if kept:
                src = sources[keep].astype(int)
                dst = targets[keep].astype(int)
                vals = values[keep]
                if self.guard is not None:
                    admitted = self.guard.admit(src, dst, vals)
                    self._stats.rejected_guard += kept - int(admitted.sum())
                    src, dst, vals = src[admitted], dst[admitted], vals[admitted]
                    kept = int(admitted.sum())
                self._sources.extend(src.tolist())
                self._targets.extend(dst.tolist())
                self._values.extend(vals.tolist())
                while len(self._values) >= self.batch_size:
                    self._flush_one_batch()
        return kept

    def submit_valid(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        values: np.ndarray,
    ) -> int:
        """Pre-validated batch submission (the sharded router's path).

        The caller guarantees aligned 1-D arrays of finite, integral,
        in-range, non-self pairs — :class:`~repro.serving.shard.ShardedIngest`
        validates once when routing, so its shard workers must not pay
        the same element-wise checks a second time.  Semantics are
        otherwise identical to :meth:`submit_many`.
        """
        kept = int(values.size)
        if kept == 0:
            return 0
        with self._lock:
            self._stats.received += kept
            src, dst, vals = sources, targets, values
            if self.guard is not None:
                admitted = self.guard.admit(src, dst, vals)
                self._stats.rejected_guard += kept - int(admitted.sum())
                src, dst, vals = src[admitted], dst[admitted], vals[admitted]
                kept = int(admitted.sum())
            self._sources.extend(src.tolist())
            self._targets.extend(dst.tolist())
            self._values.extend(vals.tolist())
            while len(self._values) >= self.batch_size:
                self._flush_one_batch()
        return kept

    def ingest_trace(
        self, trace: MeasurementTrace, *, batch_size: Optional[int] = None
    ) -> int:
        """Stream a whole trace through the pipeline in time order.

        Replay experiments usually want sample-for-sample fidelity;
        a guarded pipeline averages within-batch duplicate pairs, so
        replaying through one warns (mechanically, not as tribal
        knowledge) that the replay will not match the raw stream.
        """
        if trace.n_nodes != self.engine.n:
            raise ValueError(
                f"trace has {trace.n_nodes} nodes, engine has {self.engine.n}"
            )
        if self.mode != "raw":
            warnings.warn(
                "ingest_trace through a guarded pipeline averages "
                "within-batch duplicate pairs; construct "
                "IngestPipeline(mode='raw') for sample-for-sample "
                "replay fidelity",
                RuntimeWarning,
                stacklevel=2,
            )
        kept = 0
        for batch in trace.batches(batch_size or self.batch_size):
            kept += self.submit_many(batch.sources, batch.targets, batch.values)
        return kept

    # ------------------------------------------------------------------
    # flushing / publishing
    # ------------------------------------------------------------------

    def _flush_one_batch(self) -> int:
        """Apply the first ``batch_size`` buffered samples (lock held)."""
        take = min(self.batch_size, len(self._values))
        if take == 0:
            return 0
        sources = np.array(self._sources[:take], dtype=int)
        targets = np.array(self._targets[:take], dtype=int)
        values = np.array(self._values[:take], dtype=float)
        del self._sources[:take], self._targets[:take], self._values[:take]
        if self.mode == "guarded":
            # average duplicates on the *raw* quantities, then classify:
            # classifying the mean yields a clean training value, while a
            # mean of +/-1 labels would not.
            sources, targets, values, merged = dedup_pairs(
                sources, targets, values
            )
            self._stats.deduped += merged
        training_values = np.asarray(self.classify(values), dtype=float)
        if self.evaluator is not None:
            finite = np.isfinite(training_values)
            if finite.any():
                # test-then-train: score the model as it was *before*
                # this batch updates it
                estimates = self.engine.coordinates.estimate_pairs(
                    sources[finite], targets[finite]
                )
                self.evaluator.observe(estimates, training_values[finite])
            if self.adaptive is not None:
                self.adaptive.maybe_update(self)
        if faults.injector is not None:
            # "drop" loses the batch exactly as a worker crash between
            # dequeue and apply would; delay/stall slow the apply loop
            verdict = faults.injector.fire(
                "worker.apply", batch=int(sources.size)
            )
            if verdict is faults.DROP:
                self._stats.batches += 1
                return 0
        clipped_before = self.engine.steps_clipped
        used = self.engine.apply_measurements(
            sources, targets, training_values, step_clip=self.step_clip
        )
        self._stats.clipped += self.engine.steps_clipped - clipped_before
        self._stats.applied += used
        self._stats.dropped_nan += int(sources.size) - used  # classify NaN
        self._stats.batches += 1
        self._stats.since_publish += used
        if self._stats.since_publish >= self.refresh_interval:
            self._publish_locked()
        return used

    def _publish_locked(self) -> None:
        self.store.publish(self.engine.coordinates)
        self._stats.publishes += 1
        self._stats.since_publish = 0

    def flush(self) -> int:
        """Apply everything buffered, regardless of batch size."""
        applied = 0
        with self._lock:
            while self._values:
                applied += self._flush_one_batch()
        return applied

    def publish(self) -> int:
        """Flush and publish unconditionally; returns the new version."""
        with self._lock:
            self.flush()
            self._publish_locked()
            return self.store.version

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def staleness(self) -> int:
        """Measurements applied to the engine but not yet published."""
        with self._lock:
            return self._stats.since_publish

    @property
    def buffered(self) -> int:
        """Measurements accepted but not yet applied."""
        with self._lock:
            return len(self._values)

    def stats(self) -> IngestStats:
        """A point-in-time copy of the counters."""
        with self._lock:
            return replace(self._stats)

    def _guard_info_locked(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "mode": self.mode,
            "step_clip": self.step_clip,
            "deduped": self._stats.deduped,
            "clipped": self._stats.clipped,
            "rejected_total": self._stats.rejected_guard,
        }
        if self.guard is not None:
            info["admission"] = self.guard.as_dict()
        if self.adaptive is not None:
            info["adaptive"] = self.adaptive.as_dict()
        return info

    def guard_info(self) -> Dict[str, object]:
        """JSON-ready guard state (the ``guard`` section of ``/stats``).

        Always present for a writable gateway — mode and dedup/clip
        activity are pipeline-level — with the admission breakdown
        nested under ``"admission"`` when a guard is attached.
        """
        with self._lock:
            return self._guard_info_locked()

    def stats_payload(self) -> Dict[str, Dict[str, object]]:
        """The ``ingest`` + ``guard`` sections of ``/stats`` as one
        atomic snapshot, so their counters are mutually consistent even
        while traffic flushes concurrently."""
        with self._lock:
            ingest = self._stats.as_dict()
            ingest["buffered"] = len(self._values)
            return {"ingest": ingest, "guard": self._guard_info_locked()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IngestPipeline(n={self.engine.n}, batch_size={self.batch_size}, "
            f"refresh_interval={self.refresh_interval}, mode={self.mode!r})"
        )
