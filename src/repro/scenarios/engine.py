"""Declarative scenario engine: phases, load curves, seeded schedules.

The paper evaluates DMFSGD on replayed internet latency workloads
(P2PSim/Meridian matrices, the Harvard stream — Section 6.1); the
serving stack grown on top of it (PRs 2–8) accumulated one bespoke
bench per workload shape.  This module makes the workloads *data*: a
:class:`Scenario` is a sequence of :class:`Phase` objects — each a load
curve plus declarative event rules — interpreted tick by tick on a
shared clock by :mod:`repro.scenarios.runner` against any
:class:`~repro.serving.plane.ShardPlane`.

Determinism is the load-bearing property.  Every source of randomness
derives from the scenario seed via :func:`stream` / :func:`np_stream`
using the FaultPlan per-rule idiom (``(seed * 1_000_003) ^ index`` —
see :meth:`repro.serving.faults.FaultRule.bind`): each event rule and
each phase's traffic feeder owns a private stream, so adding a rule
never perturbs another rule's draws, and the *materialized* event
schedule — and the deterministic counters downstream of it — is
bitwise-identical for a given seed, on the thread plane and the
process plane alike.  :meth:`Schedule.digest` hashes the materialized
schedule; ``compare.py --check`` gates thread/process digest equality
per scenario.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

import numpy as np

__all__ = [
    "MIN_AVAILABILITY",
    "stream",
    "np_stream",
    "LoadCurve",
    "ConstantLoad",
    "SineLoad",
    "BurstLoad",
    "ScheduledEvent",
    "EventSpec",
    "Phase",
    "Scenario",
    "Schedule",
]

#: the standing availability floor every scenario is gated on — same
#: contract as the reconfig / chaos / churn benches: reads are
#: epoch-atomic snapshot gathers and must never observe a transition.
MIN_AVAILABILITY = 0.999

#: the FaultPlan stream-derivation multiplier (kept identical on
#: purpose: one seed-derivation idiom across the whole repo)
_STREAM_MULTIPLIER = 1_000_003

# index namespaces, so event rules, traffic feeders and scenario-state
# draws can never collide on a stream index
_EVENT_NS = 0
_TRAFFIC_NS = 1 << 20
_STATE_NS = 1 << 21
_QUERY_NS = 1 << 22


def stream(seed: int, index: int) -> random.Random:
    """A private ``random.Random`` for rule ``index`` under ``seed``."""
    return random.Random((int(seed) * _STREAM_MULTIPLIER) ^ int(index))


def np_stream(seed: int, index: int) -> np.random.Generator:
    """A private numpy generator for rule ``index`` under ``seed``."""
    mixed = ((int(seed) * _STREAM_MULTIPLIER) ^ int(index)) & (2**63 - 1)
    return np.random.default_rng(mixed)


def traffic_stream(seed: int, phase_index: int) -> np.random.Generator:
    """The feeder stream of phase ``phase_index`` (its own namespace)."""
    return np_stream(seed, _TRAFFIC_NS + phase_index)


def state_stream(seed: int, slot: int) -> np.random.Generator:
    """A scenario-state stream (regions, liar sets, base matrices)."""
    return np_stream(seed, _STATE_NS + slot)


def query_stream(seed: int) -> np.random.Generator:
    """The stream the runner draws its standing query batch from."""
    return np_stream(seed, _QUERY_NS)


# ----------------------------------------------------------------------
# load curves
# ----------------------------------------------------------------------


class LoadCurve:
    """Samples offered at each tick of a phase (pure, seed-free)."""

    def samples_at(self, tick: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLoad(LoadCurve):
    """Flat offered load: ``samples`` per tick."""

    samples: int

    def __post_init__(self) -> None:
        if self.samples < 0:
            raise ValueError(f"samples must be >= 0, got {self.samples}")

    def samples_at(self, tick: int) -> int:
        return self.samples


@dataclass(frozen=True)
class SineLoad(LoadCurve):
    """Sinusoidal (diurnal) offered load around ``base``.

    ``base + amplitude * sin(2*pi*(tick + phase_shift)/period)``,
    floored at zero — the day/night cycle of internet measurement
    traffic, compressed to ticks.
    """

    base: int
    amplitude: int
    period: int
    phase_shift: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"base must be >= 0, got {self.base}")
        if self.amplitude < 0:
            raise ValueError(f"amplitude must be >= 0, got {self.amplitude}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")

    def samples_at(self, tick: int) -> int:
        angle = 2.0 * math.pi * (tick + self.phase_shift) / self.period
        return max(0, int(round(self.base + self.amplitude * math.sin(angle))))


@dataclass(frozen=True)
class BurstLoad(LoadCurve):
    """Quiet load with a flash-crowd plateau in ``[start, stop)``."""

    quiet: int
    burst: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.quiet < 0 or self.burst < 0:
            raise ValueError("quiet and burst must be >= 0")
        if not (0 <= self.start < self.stop):
            raise ValueError(
                f"need 0 <= start < stop, got [{self.start}, {self.stop})"
            )

    def samples_at(self, tick: int) -> int:
        return self.burst if self.start <= tick < self.stop else self.quiet


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------

#: the event actions the runner knows how to interpret; a Scenario
#: using anything else is rejected at schedule-build time (the
#: FaultPlan.from_dict name-validation idiom)
KNOWN_ACTIONS = (
    "rotate_hot_pair",  # retarget the HotPairDriver (draw_nodes=2)
    "drift_step",  # re-derive the drift factor field (draws=1)
    "set_shards",  # live topology: params target=<int>
    "leave",  # membership: tombstone one drawn node
    "join",  # membership: rejoin (lowest tombstone / fresh id)
)


@dataclass(frozen=True)
class ScheduledEvent:
    """One materialized event on the shared clock.

    ``params`` is a sorted tuple of ``(key, value)`` pairs — hashable,
    JSON-stable, and fully concrete: every draw an event needs (node
    ids, per-event sub-seeds) is taken at schedule-build time from the
    owning rule's stream, never at fire time, so the schedule *is* the
    randomness and the digest covers all of it.
    """

    tick: int
    action: str
    params: Tuple[Tuple[str, object], ...] = ()

    def param(self, key: str, default: object = None) -> object:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def as_dict(self) -> Dict[str, object]:
        return {
            "tick": self.tick,
            "action": self.action,
            "params": {k: v for k, v in self.params},
        }


@dataclass(frozen=True)
class EventSpec:
    """A declarative event rule, materialized per phase.

    Exactly one trigger must be given:

    * ``at`` — explicit phase-relative ticks;
    * ``every`` — one event each ``every`` ticks from ``offset``;
    * ``count`` — ``count`` distinct ticks sampled from the phase by
      the rule's private stream.

    ``draw_nodes`` attaches ``nodes=(...)`` to each event — node ids
    drawn *without replacement across the whole rule* from
    ``[node_low, n_nodes)``, so e.g. a leave burst never picks the
    same node twice.  ``draws`` attaches ``draw=(...)`` — sub-seeds a
    handler may use to derive further deterministic randomness (the
    drift field).  Static ``params`` ride along unchanged.
    """

    action: str
    at: Tuple[int, ...] = ()
    every: int = 0
    offset: int = 0
    count: int = 0
    draw_nodes: int = 0
    node_low: int = 0
    draws: int = 0
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.action not in KNOWN_ACTIONS:
            raise ValueError(
                f"unknown event action {self.action!r}; "
                f"known actions: {', '.join(KNOWN_ACTIONS)}"
            )
        triggers = sum(
            (bool(self.at), self.every > 0, self.count > 0)
        )
        if triggers != 1:
            raise ValueError(
                "exactly one of at=/every=/count= must be set, "
                f"got at={self.at!r} every={self.every} count={self.count}"
            )
        if self.draw_nodes < 0 or self.draws < 0 or self.node_low < 0:
            raise ValueError("draw_nodes/draws/node_low must be >= 0")

    def _ticks(self, rng: random.Random, phase_ticks: int) -> List[int]:
        if self.at:
            ticks = sorted(int(t) for t in self.at)
            if ticks and (ticks[0] < 0 or ticks[-1] >= phase_ticks):
                raise ValueError(
                    f"at={self.at!r} out of range for a "
                    f"{phase_ticks}-tick phase"
                )
            return ticks
        if self.every:
            return list(range(self.offset, phase_ticks, self.every))
        if self.count > phase_ticks:
            raise ValueError(
                f"count={self.count} exceeds the {phase_ticks}-tick phase"
            )
        return sorted(rng.sample(range(phase_ticks), self.count))

    def materialize(
        self,
        rng: random.Random,
        phase_start: int,
        phase_ticks: int,
        n_nodes: int,
    ) -> List[ScheduledEvent]:
        """Concrete events for one phase, all draws taken now."""
        ticks = self._ticks(rng, phase_ticks)
        node_pool: List[int] = []
        if self.draw_nodes:
            need = self.draw_nodes * len(ticks)
            universe = range(self.node_low, n_nodes)
            if need > len(universe):
                raise ValueError(
                    f"rule {self.action!r} needs {need} distinct nodes, "
                    f"only {len(universe)} available"
                )
            node_pool = rng.sample(universe, need)
        events: List[ScheduledEvent] = []
        for i, tick in enumerate(ticks):
            params = dict(self.params)
            if self.draw_nodes:
                lo = i * self.draw_nodes
                params["nodes"] = tuple(
                    node_pool[lo : lo + self.draw_nodes]
                )
            if self.draws:
                params["draw"] = tuple(
                    rng.randrange(2**32) for _ in range(self.draws)
                )
            events.append(
                ScheduledEvent(
                    tick=phase_start + tick,
                    action=self.action,
                    params=tuple(sorted(params.items())),
                )
            )
        return events


# ----------------------------------------------------------------------
# phases and scenarios
# ----------------------------------------------------------------------

#: traffic kinds the runner implements (each maps to a simnet driver)
TRAFFIC_KINDS = ("uniform", "hot_pair", "drift", "poison", "trace")


@dataclass(frozen=True)
class Phase:
    """One segment of the shared clock: a load curve + event rules."""

    name: str
    ticks: int
    load: LoadCurve
    traffic: str = "uniform"
    traffic_params: Mapping[str, object] = field(default_factory=dict)
    events: Tuple[EventSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.ticks <= 0:
            raise ValueError(f"ticks must be positive, got {self.ticks}")
        if self.traffic not in TRAFFIC_KINDS:
            raise ValueError(
                f"unknown traffic kind {self.traffic!r}; "
                f"known kinds: {', '.join(TRAFFIC_KINDS)}"
            )


@dataclass(frozen=True)
class Scenario:
    """A named, seed-deterministic workload over any ShardPlane.

    ``guard`` selects the admission posture the plane is built with
    (``"none"``, ``"static"`` or ``"adaptive"``); ``membership`` marks
    scenarios whose events drive the
    :class:`~repro.serving.membership.MembershipManager`;
    ``supports_cluster`` gates ``repro bench --cluster`` (membership
    and live topology have no cluster-plane equivalent yet).
    ``protect`` low node ids are never churned and supply the standing
    query working set, so availability is measured against nodes that
    are always members.
    """

    name: str
    description: str
    phases: Tuple[Phase, ...]
    nodes: int = 160
    shards: int = 2
    protect: int = 32
    guard: str = "none"
    membership: bool = False
    supports_cluster: bool = True
    query_batch: int = 64
    publish_every: int = 4
    batch_size: int = 64
    refresh_interval: int = 256
    queue_depth: int = 32

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a scenario needs at least one phase")
        if self.guard not in ("none", "static", "adaptive"):
            raise ValueError(
                f"guard must be none/static/adaptive, got {self.guard!r}"
            )
        if not (2 <= self.protect <= self.nodes):
            raise ValueError(
                f"protect must be in [2, {self.nodes}], got {self.protect}"
            )
        names = [phase.name for phase in self.phases]
        if len(set(names)) != len(names):
            raise ValueError(f"phase names must be unique, got {names}")

    @property
    def total_ticks(self) -> int:
        return sum(phase.ticks for phase in self.phases)

    def phase_at(self, tick: int) -> Tuple[int, Phase, int]:
        """``(phase_index, phase, local_tick)`` for a global tick."""
        offset = 0
        for index, phase in enumerate(self.phases):
            if tick < offset + phase.ticks:
                return index, phase, tick - offset
            offset += phase.ticks
        raise IndexError(f"tick {tick} past the {self.total_ticks}-tick run")

    def subset(self, phase_names: Tuple[str, ...]) -> "Scenario":
        """A copy keeping only the named phases (smoke runs).

        The subset is a first-class scenario: its schedule is re-built
        (and re-digested) for the shorter clock, so determinism
        properties hold for it exactly as for the full run.
        """
        keep = tuple(p for p in self.phases if p.name in phase_names)
        missing = set(phase_names) - {p.name for p in keep}
        if missing:
            raise ValueError(
                f"unknown phase(s) {sorted(missing)} for {self.name!r}"
            )
        return Scenario(
            name=self.name,
            description=self.description,
            phases=keep,
            nodes=self.nodes,
            shards=self.shards,
            protect=self.protect,
            guard=self.guard,
            membership=self.membership,
            supports_cluster=self.supports_cluster,
            query_batch=self.query_batch,
            publish_every=self.publish_every,
            batch_size=self.batch_size,
            refresh_interval=self.refresh_interval,
            queue_depth=self.queue_depth,
        )

    def shortest_phase(self) -> str:
        """Name of the shortest phase (what the smoke marker runs)."""
        return min(self.phases, key=lambda p: p.ticks).name

    def build_schedule(self, seed: int) -> "Schedule":
        """Materialize every event rule under ``seed``.

        Per-rule streams (``stream(seed, phase_index * 64 + rule_index)``)
        keep rules independent — the FaultPlan idiom — and the whole
        schedule is concrete before the first tick runs.
        """
        events: List[ScheduledEvent] = []
        offset = 0
        for phase_index, phase in enumerate(self.phases):
            if len(phase.events) >= 64:
                raise ValueError("at most 63 event rules per phase")
            for rule_index, spec in enumerate(phase.events):
                rng = stream(seed, _EVENT_NS + phase_index * 64 + rule_index)
                events.extend(
                    spec.materialize(rng, offset, phase.ticks, self.nodes)
                )
            offset += phase.ticks
        events.sort(key=lambda e: (e.tick, e.action, e.params))
        return Schedule(scenario=self.name, seed=int(seed), events=tuple(events))


@dataclass(frozen=True)
class Schedule:
    """The materialized event schedule of one ``(scenario, seed)``."""

    scenario: str
    seed: int
    events: Tuple[ScheduledEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def at(self, tick: int) -> List[ScheduledEvent]:
        """Events firing at a global tick (sorted, stable)."""
        return [event for event in self.events if event.tick == tick]

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of the schedule.

        Two runs (any worker mode, any machine) with the same seed
        must produce the same digest; ``compare.py --check`` enforces
        exactly that across the thread and process planes.
        """
        canonical = json.dumps(
            [event.as_dict() for event in self.events],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "events": len(self.events),
            "digest": self.digest(),
        }
