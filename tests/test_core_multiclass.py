"""Tests for the ordinal multiclass extension."""

import numpy as np
import pytest

from repro.core.config import DMFSGDConfig
from repro.core.multiclass import MulticlassDMFSGD, quantize_classes


class TestQuantizeClasses:
    def test_rtt_orientation(self):
        # smaller RTT = better = higher class index
        quantities = np.array([[np.nan, 10.0], [200.0, np.nan]])
        classes = quantize_classes(quantities, [50.0, 150.0], "rtt")
        assert classes[0, 1] == 2.0  # 10ms clears both thresholds
        assert classes[1, 0] == 0.0  # 200ms clears none

    def test_abw_orientation(self):
        quantities = np.array([[np.nan, 100.0], [5.0, np.nan]])
        classes = quantize_classes(quantities, [10.0, 50.0], "abw")
        assert classes[0, 1] == 2.0
        assert classes[1, 0] == 0.0

    def test_middle_class(self):
        quantities = np.array([[np.nan, 100.0], [100.0, np.nan]])
        classes = quantize_classes(quantities, [50.0, 150.0], "rtt")
        assert classes[0, 1] == 1.0

    def test_nan_passthrough(self):
        quantities = np.array([[np.nan, np.nan], [1.0, np.nan]])
        classes = quantize_classes(quantities, [5.0], "rtt")
        assert np.isnan(classes[0, 1])

    def test_rejects_empty_thresholds(self):
        with pytest.raises(ValueError):
            quantize_classes(np.ones((2, 2)), [], "rtt")

    def test_rejects_duplicate_thresholds(self):
        with pytest.raises(ValueError):
            quantize_classes(np.ones((2, 2)), [5.0, 5.0], "rtt")

    def test_class_count(self, rtt_dataset):
        thresholds = [
            rtt_dataset.tau_for_good_fraction(0.25),
            rtt_dataset.tau_for_good_fraction(0.75),
        ]
        classes = quantize_classes(
            rtt_dataset.quantities, sorted(thresholds), "rtt"
        )
        observed = classes[np.isfinite(classes)]
        assert set(np.unique(observed)) <= {0.0, 1.0, 2.0}


class TestMulticlassDMFSGD:
    @pytest.fixture(scope="class")
    def trained(self, rtt_dataset):
        thresholds = sorted(
            (
                rtt_dataset.tau_for_good_fraction(0.25),
                rtt_dataset.tau_for_good_fraction(0.75),
            )
        )
        classes = quantize_classes(rtt_dataset.quantities, thresholds, "rtt")
        model = MulticlassDMFSGD(
            rtt_dataset.n,
            classes,
            n_classes=3,
            config=DMFSGDConfig(neighbors=8),
            metric="rtt",
            rng=0,
        )
        model.train(rounds=200)
        return model, classes

    def test_engine_count(self, trained):
        model, _ = trained
        assert len(model.engines) == 2  # C - 1 boundary models

    def test_predictions_in_range(self, trained):
        model, _ = trained
        predicted = model.predict_classes()
        observed = predicted[np.isfinite(predicted)]
        assert observed.min() >= 0 and observed.max() <= 2

    def test_beats_majority_baseline(self, trained):
        model, classes = trained
        observed = classes[np.isfinite(classes)]
        majority = np.bincount(observed.astype(int)).max() / observed.size
        assert model.accuracy() > majority

    def test_within_one_accuracy_high(self, trained):
        model, _ = trained
        assert model.off_by_at_most(1) > 0.9

    def test_off_by_zero_equals_accuracy(self, trained):
        model, _ = trained
        assert model.off_by_at_most(0) == pytest.approx(model.accuracy())

    def test_rejects_negative_distance(self, trained):
        model, _ = trained
        with pytest.raises(ValueError):
            model.off_by_at_most(-1)


class TestMulticlassValidation:
    def test_rejects_non_integer_classes(self):
        with pytest.raises(ValueError):
            MulticlassDMFSGD(3, np.full((3, 3), 0.5))

    def test_rejects_single_class(self):
        matrix = np.zeros((5, 5))
        np.fill_diagonal(matrix, np.nan)
        with pytest.raises(ValueError):
            MulticlassDMFSGD(5, matrix, n_classes=1)

    def test_rejects_class_above_count(self):
        matrix = np.full((5, 5), 4.0)
        np.fill_diagonal(matrix, np.nan)
        with pytest.raises(ValueError):
            MulticlassDMFSGD(5, matrix, n_classes=3)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            MulticlassDMFSGD(4, np.zeros((3, 3)))
