"""Neighbor-set management (paper Section 5.3).

DMFSGD shares Vivaldi's architecture: each node randomly and
independently chooses ``k`` other nodes as its *neighbor set* (its
references) and at each step probes one of them at random.  The paper
reports the algorithm insensitive to this random selection.

:func:`sample_neighbor_sets` builds the ``(n, k)`` index table both the
vectorized engine and the message-level simulator use;
:class:`NeighborSet` is the per-node object the protocol nodes own, with
optional churn (neighbor replacement) used by robustness extensions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

__all__ = ["sample_neighbor_sets", "NeighborSet"]


def sample_neighbor_sets(
    n: int,
    k: int,
    rng: RngLike = None,
    *,
    exclude: Optional[Sequence[Sequence[int]]] = None,
) -> np.ndarray:
    """Sample ``k`` distinct random neighbors (!= self) for each node.

    Parameters
    ----------
    n:
        Number of nodes.
    k:
        Neighbors per node; must satisfy ``k <= n - 1``.
    rng:
        Seed or generator.
    exclude:
        Optional per-node sequences of ids that must not be chosen
        (used by peer-selection experiments to keep peer sets disjoint
        from neighbor sets).

    Returns
    -------
    numpy.ndarray
        ``(n, k)`` integer array; row ``i`` lists node ``i``'s
        neighbors.
    """
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    if not 0 < k <= n - 1:
        raise ValueError(f"k must be in [1, n-1] = [1, {n - 1}], got {k}")
    generator = ensure_rng(rng)
    table = np.empty((n, k), dtype=int)
    for i in range(n):
        forbidden = {i}
        if exclude is not None:
            forbidden.update(int(x) for x in exclude[i])
        candidates = np.setdiff1d(np.arange(n), np.fromiter(forbidden, dtype=int))
        if candidates.size < k:
            raise ValueError(
                f"node {i}: only {candidates.size} candidates for k={k}"
            )
        table[i] = generator.choice(candidates, size=k, replace=False)
    return table


class NeighborSet:
    """One node's reference set with random probing and optional churn."""

    def __init__(
        self,
        owner: int,
        members: Sequence[int],
        rng: RngLike = None,
    ) -> None:
        members = [int(m) for m in members]
        if owner in members:
            raise ValueError(f"node {owner} cannot be its own neighbor")
        if len(set(members)) != len(members):
            raise ValueError("neighbor set contains duplicates")
        if not members:
            raise ValueError("neighbor set must not be empty")
        self.owner = int(owner)
        self._members: List[int] = members
        self._rng = ensure_rng(rng)

    @property
    def members(self) -> List[int]:
        """Current neighbor ids (copy)."""
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: int) -> bool:
        return int(node) in self._members

    def pick(self) -> int:
        """Choose a random neighbor to probe next."""
        return int(self._rng.choice(self._members))

    def replace(self, old: int, new: int) -> None:
        """Swap one neighbor for another (churn handling)."""
        old, new = int(old), int(new)
        if old not in self._members:
            raise ValueError(f"{old} is not a member")
        if new == self.owner or new in self._members:
            raise ValueError(f"{new} is an invalid replacement")
        self._members[self._members.index(old)] = new
