"""Fig. 6 — robustness against erroneous class labels.

The training labels are corrupted *persistently* per path by the four
error models of Section 6.3, at error levels of 5 / 10 / 15 %:

* Types 1 and 4 on Harvard and Meridian;
* Types 1-4 on HP-S3 (types 2 and 3 are ABW-specific).

Expected shape: the random errors ("flip randomly", "good-to-bad")
degrade AUC much more than the near-threshold errors ("flip near tau",
"underestimation bias"), whose flipped paths carry little margin
information anyway.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import DEFAULT_SEED, get_dataset, train_classifier
from repro.measurement.errors import delta_for_error_level, make_error_model
from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table

__all__ = ["run", "format_result", "ERROR_LEVELS", "ERROR_TYPES"]

#: Error levels of the x-axis.
ERROR_LEVELS = (0.0, 0.05, 0.10, 0.15)

#: Error types per dataset (paper: 1 & 4 for RTT sets, 1-4 for HP-S3).
ERROR_TYPES: Dict[str, tuple] = {
    "harvard": (1, 4),
    "meridian": (1, 4),
    "hps3": (1, 2, 3, 4),
}


def corrupt_labels(
    name: str, error_type: int, level: float, seed: int = DEFAULT_SEED
):
    """Build the corrupted label matrix for one experiment cell."""
    dataset = get_dataset(name, seed=seed)
    tau = dataset.median()
    labels = dataset.class_matrix(tau)
    if level == 0.0:
        return labels
    if error_type in (1, 2):
        delta = delta_for_error_level(
            dataset.observed_values(), tau, level, error_type
        )
        model = make_error_model(error_type, tau=tau, delta=delta)
    else:
        model = make_error_model(error_type, p=level)
    return model.apply(labels, dataset.quantities, rng=ensure_rng(seed + 7))


def run(
    seed: int = DEFAULT_SEED, *, datasets: tuple = ("harvard", "meridian", "hps3")
) -> Dict[str, object]:
    """Sweep error type x level per dataset.

    Returns
    -------
    dict
        ``auc``: mapping ``(dataset, error_type, level) -> auc`` against
        the *uncorrupted* ground truth.
    """
    auc: Dict[tuple, float] = {}
    for name in datasets:
        for error_type in ERROR_TYPES[name]:
            for level in ERROR_LEVELS:
                corrupted = corrupt_labels(name, error_type, level, seed)
                run_info = train_classifier(
                    name, seed=seed, train_labels=corrupted
                )
                auc[(name, error_type, level)] = run_info.auc
    return {"auc": auc, "datasets": tuple(datasets)}


def format_result(result: Dict[str, object]) -> str:
    """One table per dataset: AUC by error level and type."""
    sections: List[str] = []
    for name in result["datasets"]:
        types = ERROR_TYPES[name]
        headers = ["error%"] + [f"Type {t}" for t in types]
        rows = []
        for level in ERROR_LEVELS:
            row: List[object] = [f"{level:.0%}"]
            for error_type in types:
                row.append(result["auc"][(name, error_type, level)])
            rows.append(row)
        sections.append(
            f"[{name}]\n" + format_table(rows, headers=headers, float_fmt=".3f")
        )
    return "\n\n".join(sections)
