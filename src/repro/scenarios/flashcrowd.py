"""Flash-crowd realtime measurements (the autopilot split/merge gate).

The ``flash_crowd`` scenario has two halves.  The tick-driven half
(scheduled ``set_shards`` events under a burst load curve) runs through
the generic :mod:`repro.scenarios.runner` like every other scenario and
is seed-deterministic.  This module is the *realtime* half — the
measurement that used to live in ``benchmarks/reconfig_bench.py``:

* :func:`autopilot_flash_crowd` — a thread-mode plane starts at one
  shard while feeder threads hammer it with a
  :class:`~repro.simnet.livefeed.HotPairDriver` burst against an
  aggressive :class:`~repro.serving.autopilot.AutopilotPolicy`.  The
  autopilot must *split* at least one shard while the burst runs, and
  *merge* back down once the feeders stop.  Throughout, a querier
  thread reads ``estimate_pairs`` batches off live snapshots; reported
  ``query_availability_during_reconfig`` must stay >= 99.9% on any
  machine — snapshot reads are epoch-atomic in-process gathers and
  must never observe a transition.  Shard versions are sampled around
  every transition and must never rewind (the version-keyed cache
  contract).

* :func:`transition_latency` — direct ``split_shard`` /
  ``merge_shards`` calls timed on a thread-mode plane and on a
  process-mode plane (worker barrier + stop + re-stride + respawn),
  with a bitwise before/after parity check of the full factor arrays
  in each mode.  Latency is informational (machine-dependent); parity
  and version monotonicity are the acceptance bits.

``benchmarks/reconfig_bench.py`` is now a thin wrapper over these two
functions (same constants, same BENCH_reconfig.json keys), and
``repro bench --scenario flash_crowd --workers threads`` merges
:func:`autopilot_flash_crowd` into the scenario payload — the gate
lives here, enforced from both entry points.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.config import DMFSGDConfig
from repro.core.engine import DMFSGDEngine, EngineSpec
from repro.serving.autopilot import Autopilot, AutopilotPolicy
from repro.serving.procs import (
    ProcessShardedIngest,
    ProcessShardedStore,
    WorkerSpec,
    WorkerSupervisor,
)
from repro.serving.shard import ShardedCoordinateStore, ShardedIngest
from repro.simnet.livefeed import HotPairDriver

__all__ = [
    "FLASH_POLICY",
    "autopilot_flash_crowd",
    "transition_latency",
]

#: the flash-crowd policy: aggressive on purpose, so the burst
#: reliably crosses a split watermark within the tier-1 budget on any
#: machine, and the idle post-burst plane crosses the merge watermark
#: right after.  The *throughput* watermark is the load-bearing one:
#: on a single core the GIL hands the worker long slices, so queue
#: fill oscillates 0 <-> 1 and rarely holds over a whole patience
#: window, while applied-samples/s stays high for the entire burst
#: and collapses to ~0 the moment the feeders stop.
FLASH_POLICY = AutopilotPolicy(
    sample_interval_s=0.05,
    split_queue_fill=0.90,
    merge_queue_fill=0.05,
    split_pps=20_000.0,
    merge_pps=2_000.0,
    patience=2,
    cooldown_s=0.25,
    min_shards=1,
    max_shards=4,
)


def _engine(nodes: int, seed: int) -> DMFSGDEngine:
    config = DMFSGDConfig(neighbors=8)
    return DMFSGDEngine(nodes, lambda r, c: np.ones(len(r)), config, rng=seed)


def _quantities(rng: np.random.Generator, nodes: int) -> np.ndarray:
    quantities = rng.uniform(10.0, 200.0, size=(nodes, nodes))
    np.fill_diagonal(quantities, np.nan)
    return quantities


def autopilot_flash_crowd(
    *,
    nodes: int = 240,
    seed: int = 20111206,
    policy: Optional[AutopilotPolicy] = None,
    hot_pair: "tuple[int, int]" = (3, 7),
    feeders: int = 3,
    query_batch: int = 256,
    burst: int = 512,
    queue_depth: int = 16,
    burst_deadline_s: float = 10.0,
    settle_deadline_s: float = 10.0,
) -> Dict[str, object]:
    """Autopilot splits under a HotPairDriver burst, merges after it."""
    policy = FLASH_POLICY if policy is None else policy
    rng = np.random.default_rng(seed)
    engine = _engine(nodes, seed)
    store = ShardedCoordinateStore(engine.coordinates, shards=1)
    ingest = ShardedIngest(
        engine,
        store,
        batch_size=64,
        refresh_interval=256,
        step_clip=0.1,
        queue_depth=queue_depth,
        put_timeout=0.05,
        workers=True,
    )
    pilot = Autopilot(ingest, policy)
    quantities = _quantities(rng, nodes)

    stop_feeding = threading.Event()
    stop_all = threading.Event()
    ok = [0]
    failed = [0]
    version_rewinds = [0]

    qs = rng.integers(0, nodes, size=query_batch)
    qt = (qs + 1 + rng.integers(0, nodes - 1, size=query_batch)) % nodes

    def feeder(feeder_seed: int) -> None:
        driver = HotPairDriver(
            quantities,
            ingest,
            hot_pair,
            background=0.5,
            rng=feeder_seed,
        )
        while not stop_feeding.is_set():
            driver.run(4 * burst, burst=burst)

    def querier() -> None:
        last_version = -1
        while not stop_all.is_set():
            try:
                snapshot = store.snapshot()
                batch = snapshot.estimate_pairs(qs, qt)
                if np.all(np.isfinite(batch)):
                    ok[0] += 1
                else:
                    failed[0] += 1
                # summed snapshot version must never rewind, reconfig
                # or not — this *is* the cache-key soundness contract
                if snapshot.version < last_version:
                    version_rewinds[0] += 1
                last_version = snapshot.version
            except Exception:
                failed[0] += 1

    threads = [
        threading.Thread(target=feeder, args=(seed + i,), daemon=True)
        for i in range(feeders)
    ]
    threads.append(threading.Thread(target=querier, daemon=True))

    started = time.perf_counter()
    pilot.start()
    for thread in threads:
        thread.start()
    try:
        # phase 1: burst until the autopilot splits (bounded wait)
        deadline = started + burst_deadline_s
        while ingest.shards == 1 and time.perf_counter() < deadline:
            time.sleep(0.01)
        peak_shards = ingest.shards
        split_at_s = time.perf_counter() - started
        # keep the crowd up briefly past the first split so the window
        # prices reads *through* a transition, not just up to one
        hold = time.perf_counter() + 0.5
        while time.perf_counter() < min(hold, deadline):
            peak_shards = max(peak_shards, ingest.shards)
            time.sleep(0.01)

        # phase 2: burst over — the queues drain and the cold
        # watermark must bring the plane back down to min_shards
        stop_feeding.set()
        deadline = time.perf_counter() + settle_deadline_s
        while (
            ingest.shards > policy.min_shards
            and time.perf_counter() < deadline
        ):
            peak_shards = max(peak_shards, ingest.shards)
            time.sleep(0.01)
        elapsed = time.perf_counter() - started
    finally:
        stop_feeding.set()
        stop_all.set()
        pilot.stop()
        for thread in threads:
            thread.join(timeout=5.0)
        ingest.close()

    topology = ingest.topology()
    transitions = topology["transitions"]
    splits = [t for t in transitions if t["action"] == "split"]
    merges = [t for t in transitions if t["action"] == "merge"]
    answered, dropped = ok[0], failed[0]
    total = answered + dropped
    stats = ingest.stats()
    return {
        "autopilot_splits": len(splits),
        "autopilot_merges": len(merges),
        "peak_shards": int(peak_shards),
        "final_shards": int(ingest.shards),
        "first_split_after_s": split_at_s,
        "flash_window_s": elapsed,
        "split_ms": (
            float(np.mean([t["transition_ms"] for t in splits]))
            if splits
            else float("nan")
        ),
        "merge_ms": (
            float(np.mean([t["transition_ms"] for t in merges]))
            if merges
            else float("nan")
        ),
        "query_availability_during_reconfig": (
            answered / total if total else 0.0
        ),
        "queries_answered_during_reconfig": answered,
        "queries_failed_during_reconfig": dropped,
        "queries_during_reconfig_pps": (
            answered * query_batch / elapsed if elapsed else 0.0
        ),
        "version_rewinds_observed": version_rewinds[0],
        "samples_applied": int(stats.applied),
        "samples_shed_backpressure": int(ingest.dropped_backpressure),
        "autopilot_errors": len(pilot.errors),
    }


def _time_transitions(
    ingest, store_arrays: Callable[[], "tuple[np.ndarray, np.ndarray]"]
) -> Dict[str, object]:
    """Split 2->3->4, merge 4->3->2; time each step, check parity."""
    reference = store_arrays()
    timings: dict = {}
    for action, target in (
        ("split", 3),
        ("split", 4),
        ("merge", 3),
        ("merge", 2),
    ):
        versions_before = list(ingest.topology_versions())
        start = time.perf_counter()
        ingest.set_shard_count(target, reason="bench")
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        timings.setdefault(f"{action}_ms", []).append(elapsed_ms)
        versions_after = list(ingest.topology_versions())
        if min(versions_after) <= max(versions_before):
            timings["version_rewound"] = True
    U, V = store_arrays()
    parity = bool(
        np.array_equal(U, reference[0]) and np.array_equal(V, reference[1])
    )
    return {
        "split_ms": float(np.mean(timings["split_ms"])),
        "merge_ms": float(np.mean(timings["merge_ms"])),
        "parity_bitwise": parity,
        "version_monotone": not timings.get("version_rewound", False),
    }


def transition_latency(
    *, nodes: int = 240, seed: int = 20111206
) -> Dict[str, object]:
    """Direct split/merge latency + parity, thread and process modes."""
    rng = np.random.default_rng(seed)
    result: Dict[str, object] = {}

    # -- thread mode ---------------------------------------------------
    engine = _engine(nodes, seed)
    store = ShardedCoordinateStore(engine.coordinates, shards=2)
    ingest = ShardedIngest(engine, store, workers=False)
    ingest.topology_versions = lambda: [
        p.version for p in store.snapshot().parts
    ]
    try:
        src = rng.integers(0, nodes, size=2000)
        dst = (src + 1 + rng.integers(0, nodes - 1, size=2000)) % nodes
        ingest.submit_many(src, dst, rng.choice([-1.0, 1.0], size=2000))
        ingest.flush()
        ingest.publish()

        def thread_arrays():
            table = store.snapshot().as_table()
            return table.U.copy(), table.V.copy()

        timing = _time_transitions(ingest, thread_arrays)
    finally:
        ingest.close()
    result.update({f"thread_{k}": v for k, v in timing.items()})

    # -- process mode --------------------------------------------------
    engine = _engine(nodes, seed + 1)
    store = ProcessShardedStore.create(engine.coordinates, shards=2)
    spec = WorkerSpec(
        engine=EngineSpec.from_engine(engine, seed=seed + 1),
        batch_size=64,
        refresh_interval=256,
    )
    supervisor = WorkerSupervisor(
        store, spec, queue_depth=64, monitor=False, command_timeout=15.0
    ).start()
    ingest = ProcessShardedIngest(store, supervisor)
    ingest.topology_versions = lambda: list(store.versions)
    try:
        src = rng.integers(0, nodes, size=2000)
        dst = (src + 1 + rng.integers(0, nodes - 1, size=2000)) % nodes
        ingest.submit_many(src, dst, rng.choice([-1.0, 1.0], size=2000))
        ingest.drain()
        ingest.flush()
        ingest.publish()
        timing = _time_transitions(ingest, store.as_full_arrays)
    finally:
        ingest.close()
    result.update({f"process_{k}": v for k, v in timing.items()})
    return result
