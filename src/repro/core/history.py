"""Convergence tracking for DMFSGD training runs.

The paper reports convergence as AUC versus the *average measurement
number per node* (Fig. 5, rightmost plot): the total number of
measurements consumed by all nodes divided by ``n``, expressed in units of
``k``.  :class:`TrainingHistory` records periodic snapshots of arbitrary
scalar metrics keyed by that normalized probe count, so the same object
backs the convergence curves of Fig. 5 and ad-hoc debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["TrainingHistory", "Snapshot"]


@dataclass(frozen=True)
class Snapshot:
    """One evaluation point during training.

    Attributes
    ----------
    measurements:
        Total measurements consumed so far across all nodes.
    per_node:
        ``measurements / n`` — the paper's x-axis unit before dividing
        by ``k``.
    metrics:
        Scalar metric values (e.g. ``{"auc": 0.93}``) at this point.
    """

    measurements: int
    per_node: float
    metrics: Dict[str, float]


class TrainingHistory:
    """Time series of evaluation snapshots for a training run.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the simulation, used to normalize probe counts.
    neighbors:
        The neighbor count ``k``; when set, :meth:`per_node_in_k` converts
        the x-axis into the "measurement number (x k)" unit of Fig. 5.
    """

    def __init__(self, n_nodes: int, neighbors: Optional[int] = None) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.neighbors = int(neighbors) if neighbors else None
        self._snapshots: List[Snapshot] = []

    def record(self, measurements: int, **metrics: float) -> Snapshot:
        """Append a snapshot taken after ``measurements`` total probes."""
        if measurements < 0:
            raise ValueError(f"measurements must be >= 0, got {measurements}")
        if self._snapshots and measurements < self._snapshots[-1].measurements:
            raise ValueError(
                "snapshots must be recorded in non-decreasing measurement order"
            )
        snap = Snapshot(
            measurements=int(measurements),
            per_node=measurements / self.n_nodes,
            metrics={key: float(val) for key, val in metrics.items()},
        )
        self._snapshots.append(snap)
        return snap

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self):
        return iter(self._snapshots)

    @property
    def snapshots(self) -> List[Snapshot]:
        """The recorded snapshots, oldest first."""
        return list(self._snapshots)

    def series(self, metric: str) -> "tuple[np.ndarray, np.ndarray]":
        """``(per_node_counts, values)`` arrays for one metric.

        Snapshots that did not record the metric are skipped.
        """
        xs = [s.per_node for s in self._snapshots if metric in s.metrics]
        ys = [s.metrics[metric] for s in self._snapshots if metric in s.metrics]
        return np.asarray(xs, dtype=float), np.asarray(ys, dtype=float)

    def per_node_in_k(self, metric: str) -> "tuple[np.ndarray, np.ndarray]":
        """Like :meth:`series` but with the x-axis in units of ``k``."""
        if not self.neighbors:
            raise ValueError("neighbors (k) was not provided to TrainingHistory")
        xs, ys = self.series(metric)
        return xs / self.neighbors, ys

    def final(self, metric: str) -> float:
        """The last recorded value of a metric."""
        for snap in reversed(self._snapshots):
            if metric in snap.metrics:
                return snap.metrics[metric]
        raise KeyError(f"metric {metric!r} was never recorded")

    def converged_at(
        self, metric: str, threshold: float, *, in_k: bool = True
    ) -> Optional[float]:
        """First x-axis point at which ``metric >= threshold``.

        Returns ``None`` when the threshold is never reached.  Used by the
        Fig. 5 bench to check the "converges within ~20 x k measurements
        per node" claim.
        """
        xs, ys = self.per_node_in_k(metric) if in_k else self.series(metric)
        hits = np.nonzero(ys >= threshold)[0]
        if hits.size == 0:
            return None
        return float(xs[hits[0]])
