"""Stdlib-only JSON/HTTP gateway in front of the serving components.

A thin transport layer: every endpoint delegates to
:class:`~repro.serving.service.PredictionService` and
:class:`~repro.serving.ingest.IngestPipeline`; no model logic lives
here.  Built on :mod:`http.server`'s ``ThreadingHTTPServer`` so the
repo stays dependency-free — the store/service/ingest triple is
thread-safe precisely so concurrent gateway requests are sound.

Endpoints (all JSON):

========  =======================  =======================================
method    path                     meaning
========  =======================  =======================================
GET       ``/health``              liveness + model vitals
GET       ``/version``             served snapshot version
GET       ``/stats``               service + ingest + guard + online-eval
GET       ``/predict``             ``?src=i&dst=j`` single-pair prediction
GET       ``/predict_from``        ``?src=i[&targets=j,k,...]`` one-to-many
POST      ``/estimate/batch``      ``{"pairs": [[src, dst], ...]}`` vectorized
POST      ``/ingest``              ``{"measurements": [[src, dst, value], ...]}``
POST      ``/refresh``             force flush + publish (new version)
========  =======================  =======================================

``/stats`` of a writable gateway carries, beyond the ``service`` and
``ingest`` counter sections, a ``guard`` section (ingest mode,
dedup/clip activity, per-reason admission rejections), an
``online_eval`` section (the sliding-window drift metric) when the
pipeline has an evaluator, and a ``checkpoint`` section when a
background checkpointer is attached.

Use :class:`ServingGateway` programmatically (``start()`` /
``stop()``, or as a context manager — port 0 picks a free port, which
is how the end-to-end tests run it in-process) or via the ``repro
serve`` CLI command.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.serving.guard import BackgroundCheckpointer
from repro.serving.ingest import IngestPipeline
from repro.serving.service import PredictionService

__all__ = ["ServingGateway"]


class _BadRequest(ValueError):
    """Client error: reported as HTTP 400 with a JSON body."""


def _get_int(params: Dict[str, list], name: str) -> int:
    if name not in params:
        raise _BadRequest(f"missing query parameter {name!r}")
    raw = params[name][-1]
    try:
        return int(raw)
    except ValueError:
        raise _BadRequest(f"parameter {name!r} must be an integer, got {raw!r}")


class _Handler(BaseHTTPRequestHandler):
    server: "_ServingHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(self, payload: Dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _BadRequest("empty request body")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _BadRequest("request body is not valid JSON")
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        params = parse_qs(url.query)
        service = self.server.service
        try:
            if url.path == "/health":
                snapshot = service.store.snapshot()
                self._send_json(
                    {
                        "status": "ok",
                        "version": snapshot.version,
                        "nodes": snapshot.n,
                        "rank": snapshot.rank,
                    }
                )
            elif url.path == "/version":
                self._send_json({"version": service.store.version})
            elif url.path == "/stats":
                payload = {"service": service.stats().as_dict()}
                ingest = self.server.ingest
                if ingest is not None:
                    # one atomic snapshot: ingest + guard counters agree
                    payload.update(ingest.stats_payload())
                    if ingest.evaluator is not None:
                        payload["online_eval"] = ingest.evaluator.evaluate()
                if self.server.checkpointer is not None:
                    payload["checkpoint"] = self.server.checkpointer.as_dict()
                self._send_json(payload)
            elif url.path == "/predict":
                src = _get_int(params, "src")
                dst = _get_int(params, "dst")
                self._send_json(service.predict_pair(src, dst).as_dict())
            elif url.path == "/predict_from":
                src = _get_int(params, "src")
                targets = None
                if "targets" in params:
                    raw = params["targets"][-1]
                    try:
                        targets = np.array(
                            [int(t) for t in raw.split(",") if t != ""],
                            dtype=int,
                        )
                    except ValueError:
                        raise _BadRequest(
                            f"targets must be comma-separated integers, got {raw!r}"
                        )
                self._send_json(service.predict_from(src, targets).as_dict())
            else:
                self._send_error_json(404, f"unknown path {url.path!r}")
        except (_BadRequest, ValueError, TypeError, IndexError) as exc:
            self._send_error_json(400, str(exc))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        ingest = self.server.ingest
        try:
            if url.path == "/estimate/batch":
                # a read path despite the POST verb (the pair list does
                # not fit a query string); works on read-only gateways
                payload = self._read_body()
                pairs = payload.get("pairs")
                if not isinstance(pairs, list):
                    raise _BadRequest('body must contain a "pairs" list')
                for entry in pairs:
                    if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                        raise _BadRequest("each pair must be [source, target]")
                if pairs:
                    array = np.asarray(pairs, dtype=float)
                    if not np.all(
                        np.isfinite(array) & (array == np.floor(array))
                    ):
                        raise _BadRequest("pair indices must be integers")
                    sources = array[:, 0].astype(int)
                    targets = array[:, 1].astype(int)
                else:
                    sources = np.array([], dtype=int)
                    targets = np.array([], dtype=int)
                prediction = self.server.service.predict_pairs(
                    sources, targets
                )
                self._send_json(prediction.as_dict())
            elif url.path == "/ingest":
                if ingest is None:
                    self._send_error_json(400, "gateway is read-only")
                    return
                payload = self._read_body()
                measurements = payload.get("measurements")
                if not isinstance(measurements, list):
                    raise _BadRequest('body must contain a "measurements" list')
                triples = []
                for entry in measurements:
                    if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                        raise _BadRequest(
                            "each measurement must be [source, target, value]"
                        )
                    triples.append(entry)
                if len(triples) == 1:
                    # the scalar fast path: single-measurement posts
                    # skip the array round-trip entirely (None -> NaN,
                    # matching np.asarray's coercion on the batch path)
                    src, dst, value = (
                        float("nan") if entry is None else float(entry)
                        for entry in triples[0]
                    )
                    kept = int(ingest.submit(src, dst, value))
                elif triples:
                    array = np.asarray(triples, dtype=float)
                    kept = ingest.submit_many(
                        array[:, 0], array[:, 1], array[:, 2]
                    )
                else:
                    kept = 0
                self._send_json(
                    {
                        "accepted": kept,
                        "received": len(triples),
                        "buffered": ingest.buffered,
                        "version": ingest.store.version,
                    }
                )
            elif url.path == "/refresh":
                if ingest is None:
                    self._send_error_json(400, "gateway is read-only")
                    return
                version = ingest.publish()
                self._send_json({"version": version})
            else:
                self._send_error_json(404, f"unknown path {url.path!r}")
        except (_BadRequest, ValueError, TypeError) as exc:
            # TypeError covers np.asarray on non-numeric JSON entries; a
            # serving endpoint answers 400, it never drops the connection.
            self._send_error_json(400, str(exc))


class _ServingHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: PredictionService,
        ingest: Optional[IngestPipeline],
        checkpointer: Optional[BackgroundCheckpointer],
        verbose: bool,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.ingest = ingest
        self.checkpointer = checkpointer
        self.verbose = verbose


class ServingGateway:
    """Owns the HTTP server wrapping a service (+ optional ingest).

    Parameters
    ----------
    service:
        Query frontend.
    ingest:
        Write path; omit for a read-only gateway (the ingest/refresh
        POST endpoints then return 400; ``/estimate/batch`` still
        works).
    checkpointer:
        Optional :class:`~repro.serving.guard.BackgroundCheckpointer`;
        its thread lives exactly as long as the gateway serves.
    host, port:
        Bind address; ``port=0`` lets the OS pick a free port (read it
        back from :attr:`port` / :attr:`url`).
    verbose:
        Log requests to stderr (quiet by default: tests and benches).
    """

    def __init__(
        self,
        service: PredictionService,
        ingest: Optional[IngestPipeline] = None,
        *,
        checkpointer: Optional[BackgroundCheckpointer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.ingest = ingest
        self.checkpointer = checkpointer
        self._server = _ServingHTTPServer(
            (host, port), service, ingest, checkpointer, verbose
        )
        self._thread: Optional[threading.Thread] = None
        self._activated = False

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServingGateway":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        self._activated = True
        if self.checkpointer is not None:
            self.checkpointer.start()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serving-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's blocking mode)."""
        self._activated = True
        if self.checkpointer is not None:
            self.checkpointer.start()
        self._server.serve_forever()

    def stop(self) -> None:
        """Shut down the server and release the port."""
        if self._activated:
            # shutdown() blocks forever unless serve_forever has run.
            self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.checkpointer is not None and self._activated:
            self.checkpointer.stop()
        self._server.server_close()

    def __enter__(self) -> "ServingGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServingGateway(url={self.url!r})"
