"""Scenario-matrix smoke -> the tier-1 ``scenario_smoke`` marker.

A ~5 s slice of the scenario matrix on the thread plane: the shortest
phase of ``diurnal`` (sine load + hot-pair rotations) plus the full
``churn_storm`` (membership leave/join storms under load).  Asserts
the engine's standing contract on every machine:

* the seeded event schedule is materialized up front and *fully
  fired* (``digest_match`` — the executed digest equals the schedule
  digest);
* two in-process runs under the same seed produce bitwise-identical
  deterministic counters (the property ``compare.py --check`` extends
  across the thread and process planes);
* the standing invariants hold — availability >= 99.9%, zero torn
  reads, versions never rewind;
* the workload demonstrably happened (rotations fired, churn applied
  with zero failures).

The full matrix (all six scenarios, thread *and* process planes) runs
in ``benchmarks/scenario_bench.py`` / ``repro bench`` and is gated by
``compare.py --check``.
"""

import pytest

from repro.scenarios import MIN_AVAILABILITY, get_scenario, run_scenario

import scenario_bench

pytestmark = pytest.mark.scenario_smoke

SEED = scenario_bench.SEED


def _assert_invariants(payload: dict) -> None:
    invariants = payload["invariants"]
    assert invariants["ok"], invariants
    assert invariants["availability"] >= MIN_AVAILABILITY, (
        f"availability {invariants['availability']:.4%} under the "
        f"{MIN_AVAILABILITY:.1%} floor"
    )
    assert invariants["torn_reads"] == 0
    assert invariants["version_rewinds"] == 0
    assert payload["digest_match"], "schedule was not fully fired"


def test_diurnal_shortest_phase(report, run_once):
    scenario = get_scenario("diurnal")
    slice_ = scenario.subset((scenario.shortest_phase(),))

    payload = run_once(
        lambda: run_scenario(slice_, workers="threads", seed=SEED)
    )
    report(
        "scenario smoke: diurnal (shortest phase, thread plane)",
        f"phase={scenario.shortest_phase()} ticks={payload['ticks']} "
        f"applied={payload['counters']['applied']} "
        f"rotations={payload['counters']['rotations']} "
        f"avail={payload['invariants']['availability']:.4f}",
    )

    _assert_invariants(payload)
    # the dawn traffic really drove the hot pair and rotated it
    assert payload["counters"]["rotations"] >= 1
    assert payload["counters"]["hot_fed"] >= 1
    assert payload["counters"]["applied"] >= 1

    # determinism: a second in-process run is bitwise-identical
    again = run_scenario(slice_, workers="threads", seed=SEED)
    assert again["schedule"]["digest"] == payload["schedule"]["digest"]
    assert again["counters"] == payload["counters"]


def test_churn_storm_thread_plane(report, run_once):
    payload = run_once(
        lambda: run_scenario("churn_storm", workers="threads", seed=SEED)
    )
    counters = payload["counters"]
    report(
        "scenario smoke: churn_storm (thread plane)",
        f"ticks={payload['ticks']} applied={counters['applied']} "
        f"leaves={counters['leaves']} joins={counters['joins']} "
        f"churn_failures={counters['churn_failures']} "
        f"avail={payload['invariants']['availability']:.4f}",
    )

    _assert_invariants(payload)
    # the storm really churned: every scheduled leave and join applied
    assert counters["leaves"] == 8
    assert counters["joins"] == 8
    assert counters["churn_applied"] == 16
    assert counters["churn_failures"] == 0
    # ingest kept routing around the tombstones without corruption
    assert counters["applied"] >= 1
    assert counters["dropped_membership"] >= 1
