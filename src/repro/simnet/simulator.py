"""The network simulator: message delivery, latency, loss, timers.

:class:`NetworkSimulator` owns the virtual clock, a registry of
:class:`~repro.simnet.node.SimNode` objects, and the delivery model:

* **latency** — a callable ``(src, dst) -> seconds``; by default a
  small uniform random delay, or derive it from a ground-truth RTT
  matrix via :func:`latency_from_rtt` for co-simulation fidelity;
* **loss** — messages are dropped independently with ``loss_rate``;
* **accounting** — per-kind message and byte counters, so experiments
  can report the probe-traffic cost the paper argues about.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Optional

import numpy as np

from repro.simnet.events import EventQueue
from repro.simnet.messages import Message
from repro.simnet.node import SimNode
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability

__all__ = ["NetworkSimulator", "latency_from_rtt"]

LatencyFn = Callable[[int, int], float]


def latency_from_rtt(rtt_matrix: np.ndarray, default_ms: float = 50.0) -> LatencyFn:
    """Latency model derived from a ground-truth RTT matrix.

    One-way delay is half the pair's RTT; unknown pairs fall back to
    ``default_ms``.  Returned values are in **seconds**.
    """
    matrix = np.asarray(rtt_matrix, dtype=float)

    def latency(src: int, dst: int) -> float:
        value = matrix[src, dst]
        if not np.isfinite(value):
            value = default_ms
        return float(value) / 2.0 / 1000.0

    return latency


class NetworkSimulator:
    """Deterministic discrete-event message network.

    Parameters
    ----------
    latency:
        ``(src, dst) -> seconds`` one-way delivery delay; default is a
        uniform random 10-100 ms per message.
    loss_rate:
        Independent probability of dropping each message.
    rng:
        Seed or generator for the default latency and loss draws.
    """

    def __init__(
        self,
        *,
        latency: Optional[LatencyFn] = None,
        loss_rate: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        self.queue = EventQueue()
        self.nodes: Dict[int, SimNode] = {}
        self._rng = ensure_rng(rng)
        self.loss_rate = check_probability(loss_rate, "loss_rate")
        self._latency = latency or self._default_latency
        self.messages_sent: Counter = Counter()
        self.messages_delivered: Counter = Counter()
        self.messages_dropped: Counter = Counter()
        self.bytes_sent = 0
        self._down: set = set()

    def _default_latency(self, src: int, dst: int) -> float:
        return float(self._rng.uniform(0.010, 0.100))

    # ------------------------------------------------------------------
    # topology management
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.queue.now

    def add_node(self, node: SimNode) -> None:
        """Register a node (ids must be unique)."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node
        node.attach(self)

    # ------------------------------------------------------------------
    # churn: nodes going down and coming back
    # ------------------------------------------------------------------

    def is_down(self, node_id: int) -> bool:
        """Whether a node is currently down (churned out)."""
        return node_id in self._down

    def set_down(self, node_id: int) -> None:
        """Take a node down: it stops receiving messages and timers.

        Messages addressed to it are dropped (counted as such) and its
        pending timers are silently discarded when they fire, exactly
        like a crashed process.
        """
        if node_id not in self.nodes:
            raise ValueError(f"unknown node {node_id}")
        self._down.add(node_id)

    def set_up(self, node_id: int) -> None:
        """Bring a node back up and re-run its ``start`` hook.

        ``start`` re-arms the node's timers (a rejoining process boots
        from scratch); local state handling is up to the caller.
        """
        if node_id not in self.nodes:
            raise ValueError(f"unknown node {node_id}")
        self._down.discard(node_id)
        self.nodes[node_id].start()

    # ------------------------------------------------------------------
    # message and timer plumbing
    # ------------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Enqueue a message for delivery (or drop it)."""
        if message.dst not in self.nodes:
            raise ValueError(f"unknown destination node {message.dst}")
        message.sent_at = self.now
        self.messages_sent[message.kind] += 1
        self.bytes_sent += message.size_bytes()
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.messages_dropped[message.kind] += 1
            return
        delay = self._latency(message.src, message.dst)
        if delay < 0:
            raise ValueError(f"latency must be >= 0, got {delay}")

        def deliver() -> None:
            if message.dst in self._down:  # crashed meanwhile
                self.messages_dropped[message.kind] += 1
                return
            self.messages_delivered[message.kind] += 1
            self.nodes[message.dst].on_message(message)

        self.queue.schedule(delay, deliver)

    def set_timer(self, node_id: int, delay: float, tag: str) -> None:
        """Arm a node timer."""
        if node_id not in self.nodes:
            raise ValueError(f"unknown node {node_id}")

        def fire() -> None:
            if node_id in self._down:  # timers die with the process
                return
            self.nodes[node_id].on_timer(tag)

        self.queue.schedule(delay, fire)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Invoke every node's ``start`` hook."""
        for node in self.nodes.values():
            node.start()

    def run_until(self, time: float, *, max_events: Optional[int] = None) -> int:
        """Advance the virtual clock to ``time``."""
        return self.queue.run_until(time, max_events=max_events)

    def run(self, *, max_events: int = 1_000_000) -> int:
        """Run until no events remain (bounded)."""
        return self.queue.run(max_events=max_events)

    def total_messages(self) -> int:
        """Total messages sent across all kinds."""
        return sum(self.messages_sent.values())
