"""SGD update rules (paper eqs. 9–10 and 12–13).

Two families of updates exist because of the different measurement
methodologies (Section 5.2):

* **RTT** is symmetric and inferred by the *sender*: when node ``i``
  measures ``x_ij`` it can update both its ``u_i`` (because ``x_ij`` is an
  observation of ``u_i . v_j``) and its ``v_i`` (because ``x_ji = x_ij``
  is an observation of ``u_j . v_i``).  This requires ``u_j`` and ``v_j``
  shipped back in the probe reply (Algorithm 1).
* **ABW** is asymmetric and inferred by the *target*: node ``j`` learns
  ``x_ij`` and sends it to node ``i`` along with ``v_j``; node ``j``
  updates its own ``v_j`` and node ``i`` updates its ``u_i``
  (Algorithm 2).

All functions are pure: they return new vectors and never mutate their
inputs, which keeps the message-level protocol easy to reason about.  The
shared shrinkage factor ``(1 - eta * lambda)`` implements the weight decay
induced by the regularization terms of eq. 3.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.losses import Loss

__all__ = ["rtt_update", "abw_update_prober", "abw_update_target"]


def _validate_step(eta: float, lam: float) -> None:
    if eta <= 0:
        raise ValueError(f"learning rate eta must be > 0, got {eta}")
    if lam < 0:
        raise ValueError(f"regularization lambda must be >= 0, got {lam}")


def rtt_update(
    u_i: np.ndarray,
    v_i: np.ndarray,
    u_j: np.ndarray,
    v_j: np.ndarray,
    x_ij: float,
    loss: Loss,
    eta: float,
    lam: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """One RTT update at node ``i`` (eqs. 9 and 10).

    Parameters
    ----------
    u_i, v_i:
        Node ``i``'s own coordinates (not modified).
    u_j, v_j:
        Node ``j``'s coordinates as received in the probe reply.
    x_ij:
        The measured class (+1/-1) or quantity between ``i`` and ``j``;
        symmetry means it serves as both ``x_ij`` and ``x_ji``.
    loss:
        Loss object providing the gradients.
    eta, lam:
        Learning rate and regularization coefficient.

    Returns
    -------
    (new_u_i, new_v_i)
    """
    _validate_step(eta, lam)
    shrink = 1.0 - eta * lam
    new_u = shrink * u_i - eta * loss.grad_u(x_ij, u_i, v_j)
    new_v = shrink * v_i - eta * loss.grad_v(x_ij, u_j, v_i)
    return new_u, new_v


def abw_update_prober(
    u_i: np.ndarray,
    v_j: np.ndarray,
    x_ij: float,
    loss: Loss,
    eta: float,
    lam: float,
) -> np.ndarray:
    """ABW update of ``u_i`` at the probing node ``i`` (eq. 12).

    Node ``i`` receives ``x_ij`` and ``v_j`` from the target and refines
    its row factor.
    """
    _validate_step(eta, lam)
    return (1.0 - eta * lam) * u_i - eta * loss.grad_u(x_ij, u_i, v_j)


def abw_update_target(
    u_i: np.ndarray,
    v_j: np.ndarray,
    x_ij: float,
    loss: Loss,
    eta: float,
    lam: float,
) -> np.ndarray:
    """ABW update of ``v_j`` at the target node ``j`` (eq. 13).

    Node ``j`` infers ``x_ij`` locally (it observes whether the probe
    train congested the path) using the ``u_i`` shipped with the probe.
    """
    _validate_step(eta, lam)
    return (1.0 - eta * lam) * v_j - eta * loss.grad_v(x_ij, u_i, v_j)
