#!/usr/bin/env python
"""Peer selection for a P2P download swarm (paper Section 6.4).

Scenario: every node in a 300-node swarm must pick one peer from a
random candidate set of 30.  We compare three selection strategies on
ground-truth RTTs:

* random selection (the naive baseline);
* class-based DMFSGD (the paper's approach — pick the peer most
  confidently predicted "good");
* quantity-based DMFSGD (L2 regression — pick the predicted-nearest).

plus class-based selection trained on 15% corrupted labels, to show the
robustness the paper reports ("as large as 15% erroneous labels degrade
peer selection by less than 5%").

Run:
    python examples/peer_selection_p2p.py
"""

import numpy as np

from repro.apps.peer_selection import PeerSelectionExperiment, build_peer_sets
from repro.core import DMFSGDConfig, DMFSGDEngine, matrix_label_fn
from repro.datasets import load_meridian
from repro.measurement.errors import FlipNearThreshold, GoodToBad, delta_for_error_level
from repro.utils.tables import format_table

SEED = 7
PEERS = 30


def train(
    labels: np.ndarray, metric: str, loss: str, rng: int, rounds_per_k: int = 30
) -> np.ndarray:
    """Train one DMFSGD model and return its decision matrix."""
    config = DMFSGDConfig(loss=loss, neighbors=10)
    engine = DMFSGDEngine(
        labels.shape[0], matrix_label_fn(labels), config, metric=metric, rng=rng
    )
    return engine.run(rounds=rounds_per_k * config.neighbors).estimate_matrix()


def main() -> None:
    dataset = load_meridian(n_hosts=300, rng=SEED)
    tau = dataset.median()
    labels = dataset.class_matrix(tau)

    # class-based predictor
    class_decision = train(labels, "rtt", "logistic", SEED)

    # class-based predictor under 15% label corruption (10% near-tau
    # flips + 5% good-to-bad), the paper's noise recipe for Fig. 7
    rng = np.random.default_rng(SEED)
    delta = delta_for_error_level(dataset.observed_values(), tau, 0.10, 1)
    noisy = FlipNearThreshold(tau, delta).apply(labels, dataset.quantities, rng)
    noisy = GoodToBad(0.05).apply(noisy, dataset.quantities, rng)
    noisy_decision = train(noisy, "rtt", "logistic", SEED)

    # quantity-based predictor (normalize, as L2 needs unit-scale data;
    # regression fits values, not just signs, so give it a longer run)
    normalized = dataset.quantities / tau
    regression_decision = train(normalized, "rtt", "l2", SEED, rounds_per_k=60) * tau

    peer_sets = build_peer_sets(dataset.n, PEERS, rng=SEED)
    experiment = PeerSelectionExperiment(dataset, peer_sets, tau=tau)

    rows = []
    for label, strategy, decision in (
        ("random", "random", None),
        ("classification", "classification", class_decision),
        ("classification+15% noise", "classification", noisy_decision),
        ("regression", "regression", regression_decision),
    ):
        outcome = experiment.run(strategy, decision_matrix=decision, rng=SEED)
        rows.append(
            [
                label,
                outcome.mean_stretch,
                f"{outcome.unsatisfied_fraction:.1%}",
            ]
        )

    print(f"swarm of {dataset.n} nodes, {PEERS} candidate peers each, "
          f"tau = {tau:.0f} ms\n")
    print(
        format_table(
            rows,
            headers=["strategy", "mean stretch", "unsatisfied nodes"],
            float_fmt=".2f",
        )
    )
    print(
        "\nstretch -> optimality (1.0 = always the nearest peer);"
        "\nunsatisfied -> picked a bad peer although a good one existed."
    )


if __name__ == "__main__":
    main()
