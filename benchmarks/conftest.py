"""Benchmark-harness fixtures.

Each bench runs its experiment exactly once (``benchmark.pedantic`` with
one round) — experiments are deterministic and minutes-long sweeps must
not be repeated for timing statistics — and prints the table/series the
paper reports through the ``report`` fixture, which bypasses pytest's
output capture so the rows appear in the bench log.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "mp_smoke: fast multi-process serving benchmarks (tier-1, < 60 s)",
    )
    config.addinivalue_line(
        "markers",
        "cluster_smoke: fast cluster-plane benchmarks (tier-1, < 60 s)",
    )
    config.addinivalue_line(
        "markers",
        "reconfig_smoke: fast live-topology benchmarks (tier-1, < 60 s)",
    )
    config.addinivalue_line(
        "markers",
        "chaos_smoke: fast fault-plane benchmarks (tier-1, < 60 s)",
    )
    config.addinivalue_line(
        "markers",
        "scenario_smoke: fast scenario-matrix benchmarks (tier-1, < 60 s)",
    )
    config.addinivalue_line(
        "markers",
        "obs_smoke: fast telemetry-overhead benchmarks (tier-1, < 60 s)",
    )


@pytest.fixture
def report(capsys):
    """Print a titled block straight to the terminal (capture bypassed)."""

    def _report(title: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n===== {title} =====")
            print(text)

    return _report


@pytest.fixture
def run_once(benchmark):
    """Run a zero-argument callable exactly once under the benchmark timer."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
