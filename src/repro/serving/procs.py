"""Process-per-shard serving: shared-memory slices, true CPU parallelism.

The thread-mode scale-out layer (:mod:`repro.serving.shard`) runs one
admission pipeline per shard, but every SGD ``apply`` serializes on the
GIL — the guarded ingest path tops out near one core no matter how many
shard workers exist.  DMFSGD itself is decentralized by construction:
node ``i`` updates only its own rows ``u_i``/``v_i`` using (possibly
stale) neighbor coordinates, which is exactly the parallelism a
process-per-shard deployment can exploit.  This module is that
deployment:

* :class:`FactorSegment` — one shard's strided factor slice in a
  :class:`multiprocessing.shared_memory.SharedMemory` segment, guarded
  by a **seqlock**: an even/odd sequence counter in the segment header.
  The writer (the shard's worker process) bumps the counter to odd,
  writes the slice, bumps it back to even; readers copy the payload and
  retry if the counter moved or was odd — lock-free, torn-read-free
  snapshots without any cross-process mutex;
* :class:`_ShardWorker` (child process) — owns shard ``s``'s rows
  authoritatively and runs the **full** per-shard pipeline
  (:class:`~repro.serving.guard.AdmissionGuard` →
  :class:`~repro.serving.ingest.IngestPipeline` → SGD apply) on its own
  :class:`~repro.core.engine.DMFSGDEngine`, rebuilt in-process from a
  picklable :class:`~repro.core.engine.EngineSpec`.  Rows of *other*
  shards are stale mirrors, refreshed from their segments whenever
  their published version moves — the paper's asynchrony model (in-
  flight messages carry slightly stale coordinates), now across
  processes;
* :class:`WorkerSupervisor` — spawns the workers, feeds them over
  bounded :class:`multiprocessing.Queue` chunks, health-checks them
  (liveness + heartbeat), restarts a crashed worker against the same
  segments (its published rows survive in shared memory — restart loses
  at most one ``refresh_interval`` of unpublished steps), and unlinks
  every segment on shutdown;
* :class:`ProcessShardedStore` — the gateway-side read facade: seqlock-
  consistent per-shard reads assembled into the *same*
  :class:`~repro.serving.shard.ShardSnapshot` /
  :class:`~repro.serving.shard.ShardedSnapshot` composites the thread
  stack serves, so every estimate is **bitwise identical** to thread
  mode for the same model, and
  :class:`~repro.serving.service.PredictionService` works unchanged.
  Checkpoints round-trip with the single-``.npz`` shard format of
  :class:`~repro.serving.shard.ShardedCoordinateStore`;
* :class:`ProcessShardedIngest` — the gateway-side submit facade with
  the exact :class:`~repro.serving.shard.ShardedIngest` surface
  (``submit``/``submit_many``/``flush``/``publish``/``stats_payload``/
  ``membership_barrier``/...), so the HTTP layer and the membership
  manager work unchanged on top of processes.

Consistency model
-----------------
Every reader builds its composite from one per-shard seqlock read each;
each slice is internally consistent at some published version, and
cross-shard staleness is bounded by each worker's ``refresh_interval``
— the same bound thread mode grants.  Counters (applied, rejected,
queue backlogs) live in the segment headers as plain aligned int64
slots: they are monotonic gauges, racy by a single increment at most,
and never participate in the seqlock.

Membership epochs are a **two-phase command**: phase one (``barrier``)
makes every worker drain its queue, flush its batch buffer and publish
— after the acks, shared memory *is* the model; phase two (``commit``)
hands every worker the new epoch's segment names, each worker
re-attaches and resizes its engine, and the gateway then atomically
swaps its read tuple.  Readers keep serving the old epoch's segments
throughout (they are unlinked, not unmapped, until shutdown), so
availability is 100% across a transition — and across a worker dying
mid-transition, which the supervisor repairs by respawning the worker
against the new epoch.
"""

from __future__ import annotations

import os
import queue as stdlib_queue
import secrets
import threading
import time
import multiprocessing
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.coordinates import CoordinateTable
from repro.core.engine import EngineSpec
from repro.obs.metrics import BUCKET_COUNT
from repro.serving.guard import (
    AdaptiveGuardTuner,
    AdmissionGuard,
    OnlineEvaluator,
)
from repro.serving.ingest import IngestPipeline, IngestStats
from repro.serving.plane import RoutedIngestBase, carried_versions
from repro.serving.shard import ShardedCoordinateStore, ShardedSnapshot, ShardSnapshot
from repro.serving.store import atomic_savez

__all__ = [
    "FactorSegment",
    "WorkerSpec",
    "WorkerSupervisor",
    "ProcessShardedStore",
    "ProcessShardedIngest",
]


# ----------------------------------------------------------------------
# segment layout
# ----------------------------------------------------------------------

#: int64 slots at the head of every segment, before the U/V payload
HEADER_SLOTS = 160

# seqlock + layout (written by the creator, layout never changes)
SEQ = 0  # seqlock counter: even = stable, odd = write in progress
VERSION = 1  # shard publish version
N = 2  # global node count of the epoch
SHARDS = 3
SHARD = 4
RANK = 5
OWNED = 6  # rows this shard owns (= len(range(shard, n, shards)))
EPOCH = 7
# worker-owned counters (monotonic gauges; never under the seqlock)
RECEIVED = 8
APPLIED = 9
DEDUPED = 10
CLIPPED = 11
REJECTED_GUARD = 12
DROPPED_NAN = 13
BATCHES = 14
PUBLISHES = 15
SINCE_PUBLISH = 16
BUFFERED = 17
CONSUMED = 18  # samples the worker has taken off its queue
HEARTBEAT = 19
LAST_ACK = 20  # last completed command token
REJ_RATE_LIMIT = 21
REJ_PAIR_RATE = 22
REJ_OUTLIER = 23
REJ_NOISE_BAND = 24
REJ_OTHER = 25
GUARD_RECEIVED = 26
GUARD_ADMITTED = 27
EVAL_SAMPLES = 28
EVAL_OBSERVED = 29
EVAL_AUC_E6 = 30  # auc * 1e6, -1 = undefined
EVAL_P50_E6 = 31  # rel_err quantiles * 1e6, -1 = undefined
EVAL_P90_E6 = 32
EVAL_P99_E6 = 33
STEP_CLIP_E9 = 34  # adaptive step clip * 1e9, -1 = none
SIGMA_E6 = 35  # adaptive sigma * 1e6, -1 = none
ADAPTIVE_UPDATES = 36
PUBLISHED_AT_US = 37  # time.monotonic() * 1e6 at last publish
PID = 38

# telemetry (PR 10): per-worker latency histograms on the shared
# bucket ladder of repro.obs.metrics (microsecond bounds 2**i), plus a
# small span ring so traces cross the process boundary without IPC.
# Observations past the top bound land only in the COUNT slot; the
# scrape derives +Inf as count - sum(buckets).
H_QUEUE_BUCKETS = 48  # BUCKET_COUNT slots: admit-to-dequeue wait
H_QUEUE_COUNT = H_QUEUE_BUCKETS + BUCKET_COUNT  # 72
H_QUEUE_SUM_US = H_QUEUE_COUNT + 1  # 73
H_APPLY_BUCKETS = H_QUEUE_SUM_US + 1  # 74: dequeue-to-applied latency
H_APPLY_COUNT = H_APPLY_BUCKETS + BUCKET_COUNT  # 98
H_APPLY_SUM_US = H_APPLY_COUNT + 1  # 99
TRACE_NEXT = 100  # monotone write cursor into the span ring
TRACE_RING = 101  # TRACE_ENTRIES entries of TRACE_FIELDS slots each
TRACE_ENTRIES = 8
#: per entry: accept, admit, queue, apply, publish (all µs),
#: samples, span_id — span_id is written *last* and re-read by the
#: harvester, so a torn entry is skipped rather than misread
TRACE_FIELDS = 7

#: slots [COUNTERS_FROM:] are carried over verbatim into a new epoch's
#: segments, so restarts and epoch swaps never rewind a counter
COUNTERS_FROM = 8

_REASON_SLOTS = {
    "rate_limit": REJ_RATE_LIMIT,
    "pair_rate": REJ_PAIR_RATE,
    "outlier": REJ_OUTLIER,
    "noise_band": REJ_NOISE_BAND,
}

#: cumulative *totals* (never gauges) — when a re-partition drops
#: shards, these slots of the retired segments are folded into shard
#: 0's new segment so aggregated stats stay cumulative across topology
#: changes; gauges (SINCE_PUBLISH, BUFFERED, HEARTBEAT, eval windows,
#: adaptive levels, PID) describe a live worker and are never folded
_ADDITIVE_SLOTS = (
    RECEIVED,
    APPLIED,
    DEDUPED,
    CLIPPED,
    REJECTED_GUARD,
    DROPPED_NAN,
    BATCHES,
    PUBLISHES,
    CONSUMED,
    REJ_RATE_LIMIT,
    REJ_PAIR_RATE,
    REJ_OUTLIER,
    REJ_NOISE_BAND,
    REJ_OTHER,
    GUARD_RECEIVED,
    GUARD_ADMITTED,
    EVAL_OBSERVED,
    ADAPTIVE_UPDATES,
    # histogram buckets/counts/sums are cumulative totals too, so a
    # merge folds them and the aggregated quantiles stay monotone; the
    # trace ring is *not* additive and is never folded
) + tuple(range(H_QUEUE_BUCKETS, H_APPLY_SUM_US + 1))


def _owned_rows(shard: int, shards: int, n: int) -> int:
    return len(range(shard, n, shards))


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment as a non-owner.

    CPython registers a segment with the per-process resource tracker
    only on *create*, so a plain attach is already untracked: the
    creator (the gateway-side store) remains the single owner that
    unlinks, and the tracker doubles as crash insurance — if the
    gateway dies without :meth:`ProcessShardedStore.destroy`, its
    tracker unlinks the registered segments at exit.
    """
    return shared_memory.SharedMemory(name=name)


class FactorSegment:
    """One shard's factor slice + header in a shared-memory segment.

    Layout: ``HEADER_SLOTS`` aligned int64 slots, then the ``U`` slice
    and the ``V`` slice as contiguous float64 ``(owned, rank)`` blocks.
    The writer side (:meth:`write_slice`) and the reader side
    (:meth:`read_slice`) implement the seqlock protocol described in
    the module docstring; counters are plain slot reads/writes.
    """

    def __init__(self, shm: shared_memory.SharedMemory, *, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self.name = shm.name
        self._header = np.ndarray(
            (HEADER_SLOTS,), dtype=np.int64, buffer=shm.buf
        )
        owned = int(self._header[OWNED])
        rank = int(self._header[RANK])
        base = HEADER_SLOTS * 8
        block = owned * rank * 8
        self._U = np.ndarray(
            (owned, rank), dtype=np.float64, buffer=shm.buf, offset=base
        )
        self._V = np.ndarray(
            (owned, rank),
            dtype=np.float64,
            buffer=shm.buf,
            offset=base + block,
        )

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(
        cls,
        name: str,
        *,
        shard: int,
        shards: int,
        n: int,
        rank: int,
        version: int = 1,
        epoch: int = 1,
    ) -> "FactorSegment":
        """Allocate and zero-initialize a segment (creator side)."""
        owned = _owned_rows(shard, shards, n)
        size = HEADER_SLOTS * 8 + 2 * owned * rank * 8
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        header = np.ndarray((HEADER_SLOTS,), dtype=np.int64, buffer=shm.buf)
        header[:] = 0
        header[VERSION] = int(version)
        header[N] = int(n)
        header[SHARDS] = int(shards)
        header[SHARD] = int(shard)
        header[RANK] = int(rank)
        header[OWNED] = owned
        header[EPOCH] = int(epoch)
        header[EVAL_AUC_E6] = -1
        header[EVAL_P50_E6] = -1
        header[EVAL_P90_E6] = -1
        header[EVAL_P99_E6] = -1
        header[STEP_CLIP_E9] = -1
        header[SIGMA_E6] = -1
        header[PUBLISHED_AT_US] = int(time.monotonic() * 1e6)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "FactorSegment":
        """Attach to an existing segment (worker / restarted gateway)."""
        return cls(_attach_untracked(name), owner=False)

    def close(self) -> None:
        """Drop the mapping (the segment itself survives)."""
        # the ndarray views export the mmap's buffer; they must be
        # released before close() or the memoryview refuses to die
        self._header = self._U = self._V = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        """Remove the segment name (mappings stay valid until closed)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    # -- header accessors ----------------------------------------------

    @property
    def header(self) -> np.ndarray:
        """The int64 header slots (live view)."""
        return self._header

    def slot(self, index: int) -> int:
        """One aligned int64 header slot (atomic single-word read)."""
        return int(self._header[index])

    # -- seqlock protocol ----------------------------------------------

    def write_slice(
        self, U_s: np.ndarray, V_s: np.ndarray, version: int
    ) -> None:
        """Publish a new slice (writer side; single writer per segment)."""
        header = self._header
        header[SEQ] += 1  # odd: readers back off
        self._U[:] = U_s
        self._V[:] = V_s
        header[VERSION] = int(version)
        header[PUBLISHED_AT_US] = int(time.monotonic() * 1e6)
        header[SEQ] += 1  # even again: slice is stable

    def read_slice(self) -> Tuple[int, int, np.ndarray, np.ndarray]:
        """Seqlock-consistent ``(seq, version, U, V)`` copy (reader side)."""
        header = self._header
        spins = 0
        while True:
            seq = int(header[SEQ])
            if seq % 2 == 0:
                version = int(header[VERSION])
                U = np.array(self._U, dtype=float, copy=True)
                V = np.array(self._V, dtype=float, copy=True)
                if int(header[SEQ]) == seq:
                    return seq, version, U, V
            spins += 1
            if spins % 1000 == 0:  # pragma: no cover - contention path
                time.sleep(0.0001)  # writer is mid-publish; yield

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FactorSegment(name={self.name!r}, "
            f"shard={self.slot(SHARD)}/{self.slot(SHARDS)}, "
            f"version={self.slot(VERSION)})"
        )


# ----------------------------------------------------------------------
# worker spec (picklable recipe for a shard worker process)
# ----------------------------------------------------------------------


@dataclass
class WorkerSpec:
    """Everything a shard worker needs to rebuild its pipeline.

    All fields must be picklable: the spec crosses the process boundary
    at spawn (and again at every restart).  Guards are per-shard
    stateful objects, so ``guards`` carries one *fresh* instance per
    shard (or ``None`` for an unguarded deployment); evaluators and
    adaptive tuners contain locks and are rebuilt from their parameters
    inside the worker instead.
    """

    engine: EngineSpec
    classify: Optional[Callable[[np.ndarray], np.ndarray]] = None
    batch_size: int = 256
    refresh_interval: int = 1000
    mode: str = "guarded"
    step_clip: Optional[float] = None
    guards: Optional[Sequence[Optional[AdmissionGuard]]] = None
    eval_mode: Optional[str] = None
    eval_window: int = 2000
    adaptive: bool = False


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------


class _WorkerStoreView:
    """The store protocol a worker's :class:`IngestPipeline` publishes to."""

    def __init__(self, worker: "_ShardWorker") -> None:
        self._worker = worker

    @property
    def n(self) -> int:
        return self._worker.engine.n

    @property
    def version(self) -> int:
        return self._worker.own_segment.slot(VERSION)

    def publish(self, coordinates: CoordinateTable) -> None:
        self._worker.publish_own(coordinates)


class _ShardWorker:
    """Shard-owning pipeline consumer living in a child process.

    Bootstraps its engine from the *segments* (not from pickled
    factors), so a restarted worker resumes from the last published
    state — the shared memory is the durable truth between restarts.
    """

    def __init__(
        self, spec: WorkerSpec, shard: int, names: Sequence[str]
    ) -> None:
        self.spec = spec
        self.shard = int(shard)
        self.segments: List[FactorSegment] = []
        self._attach(names)
        self.own_segment = self.segments[self.shard]
        header = self.own_segment.header
        n = int(header[N])
        self.shards = int(header[SHARDS])
        self.engine = spec.engine.build(n)
        U, V, versions = self._read_dense()
        self.engine.coordinates = CoordinateTable.from_arrays(U, V)
        self._mirror_versions = versions
        guard = spec.guards[self.shard] if spec.guards else None
        evaluator = (
            OnlineEvaluator(spec.eval_mode, window=spec.eval_window)
            if spec.eval_mode
            else None
        )
        adaptive = (
            AdaptiveGuardTuner(evaluator)
            if spec.adaptive and evaluator is not None
            else None
        )
        self.pipeline = IngestPipeline(
            self.engine,
            _WorkerStoreView(self),  # type: ignore[arg-type]
            classify=spec.classify,
            batch_size=spec.batch_size,
            refresh_interval=spec.refresh_interval,
            mode=spec.mode,
            step_clip=spec.step_clip,
            guard=guard,
            evaluator=evaluator,
            adaptive=adaptive,
        )
        # counter bases: a restarted worker's fresh pipeline must not
        # rewind the totals its predecessor accumulated in the header
        self._bases = {
            slot: int(header[slot])
            for slot in (
                RECEIVED,
                APPLIED,
                DEDUPED,
                CLIPPED,
                REJECTED_GUARD,
                DROPPED_NAN,
                BATCHES,
                PUBLISHES,
                REJ_RATE_LIMIT,
                REJ_PAIR_RATE,
                REJ_OUTLIER,
                REJ_NOISE_BAND,
                REJ_OTHER,
                GUARD_RECEIVED,
                GUARD_ADMITTED,
                EVAL_OBSERVED,
                ADAPTIVE_UPDATES,
            )
        }
        self._eval_batches = -1
        # spans applied but not yet published: flushed into the trace
        # ring by publish_own (lives only in this worker; a crash loses
        # at most the unpublished spans, like the unpublished steps)
        self._pending_spans: List[Tuple[int, int, int, int, int, int]] = []
        header[PID] = os.getpid()

    # -- segment plumbing ----------------------------------------------

    def _attach(self, names: Sequence[str]) -> None:
        self.segments = [FactorSegment.attach(name) for name in names]

    def _reattach(self, names: Sequence[str]) -> None:
        old = self.segments
        self._attach(names)
        self.own_segment = self.segments[self.shard]
        self.own_segment.header[PID] = os.getpid()
        for segment in old:
            segment.close()

    def close_segments(self) -> None:
        for segment in self.segments:
            segment.close()
        self.segments = []

    def _read_dense(self) -> Tuple[np.ndarray, np.ndarray, List[int]]:
        """Seqlock-read every shard's slice into dense ``(U, V)``."""
        header = self.segments[0].header
        n, rank, P = int(header[N]), int(header[RANK]), self.shards
        U = np.empty((n, rank), dtype=float)
        V = np.empty_like(U)
        versions: List[int] = []
        for s, segment in enumerate(self.segments):
            _, version, U_s, V_s = segment.read_slice()
            U[s::P] = U_s
            V[s::P] = V_s
            versions.append(version)
        return U, V, versions

    def _refresh_mirrors(self) -> None:
        """Pull other shards' newly published rows into the engine.

        One int read per shard decides staleness; only a moved version
        pays the seqlock copy.  This is the cross-process analogue of
        thread mode's shared engine — staleness bounded by each shard's
        ``refresh_interval`` instead of zero, exactly the paper's
        asynchrony budget.
        """
        P = self.shards
        table = self.engine.coordinates
        for s, segment in enumerate(self.segments):
            if s == self.shard:
                continue
            if segment.slot(VERSION) != self._mirror_versions[s]:
                _, version, U_s, V_s = segment.read_slice()
                table.U[s::P] = U_s
                table.V[s::P] = V_s
                self._mirror_versions[s] = version

    def publish_own(self, coordinates: CoordinateTable) -> None:
        """Seqlock-publish this shard's slice; then refresh mirrors."""
        P = self.shards
        segment = self.own_segment
        self.own_segment.write_slice(
            coordinates.U[self.shard :: P],
            coordinates.V[self.shard :: P],
            segment.slot(VERSION) + 1,
        )
        if self._pending_spans:
            publish_us = int(time.monotonic() * 1e6)
            for entry in self._pending_spans:
                self._ring_write(entry, publish_us)
            self._pending_spans = []
        self._refresh_mirrors()

    # -- telemetry (histogram slots + the span ring) -------------------

    def _observe(self, buckets_at: int, count_at: int, sum_at: int, us: int) -> None:
        """One latency observation into a header histogram triple."""
        header = self.own_segment.header
        # (us - 1).bit_length() == bisect_left over the 2**i µs ladder
        index = (us - 1).bit_length() if us > 0 else 0
        if index < BUCKET_COUNT:
            header[buckets_at + index] += 1
        header[count_at] += 1
        header[sum_at] += us

    def _ring_write(
        self, entry: Tuple[int, int, int, int, int, int], publish_us: int
    ) -> None:
        """Commit one completed span into the segment's trace ring."""
        header = self.own_segment.header
        span_id, accept_us, admit_us, queue_us, apply_us, samples = entry
        slot = TRACE_RING + (
            int(header[TRACE_NEXT]) % TRACE_ENTRIES
        ) * TRACE_FIELDS
        header[slot + 6] = 0  # invalidate while the fields change
        header[slot + 0] = accept_us
        header[slot + 1] = admit_us
        header[slot + 2] = queue_us
        header[slot + 3] = apply_us
        header[slot + 4] = publish_us
        header[slot + 5] = samples
        header[slot + 6] = span_id  # commit: the harvester keys on this
        header[TRACE_NEXT] += 1

    def _apply_traced(self, meta, sources, targets, values) -> None:
        """Apply one instrumented chunk, stamping stages as it goes."""
        span_id, accept_us, admit_us = meta
        dequeue_us = int(time.monotonic() * 1e6)
        self._observe(
            H_QUEUE_BUCKETS,
            H_QUEUE_COUNT,
            H_QUEUE_SUM_US,
            max(0, dequeue_us - admit_us),
        )
        pubs_before = self.pipeline.stats().publishes
        try:
            self.pipeline.submit_valid(sources, targets, values)
        finally:
            done_us = int(time.monotonic() * 1e6)
            self._observe(
                H_APPLY_BUCKETS,
                H_APPLY_COUNT,
                H_APPLY_SUM_US,
                max(0, done_us - dequeue_us),
            )
            if span_id:
                entry = (
                    span_id,
                    accept_us,
                    admit_us,
                    dequeue_us,
                    done_us,
                    int(values.size),
                )
                if self.pipeline.stats().publishes > pubs_before:
                    # this chunk triggered its own publish: publish_own
                    # already flushed earlier pendings, so ring-commit
                    # the entry directly with the post-apply stamp
                    self._ring_write(entry, done_us)
                else:
                    self._pending_spans.append(entry)

    # -- stats sync ----------------------------------------------------

    def _sync_counters(self) -> None:
        """Copy pipeline/guard/evaluator state into the header slots."""
        header = self.own_segment.header
        bases = self._bases
        stats = self.pipeline.stats()
        header[RECEIVED] = bases[RECEIVED] + stats.received
        header[APPLIED] = bases[APPLIED] + stats.applied
        header[DEDUPED] = bases[DEDUPED] + stats.deduped
        header[CLIPPED] = bases[CLIPPED] + stats.clipped
        header[REJECTED_GUARD] = bases[REJECTED_GUARD] + stats.rejected_guard
        header[DROPPED_NAN] = bases[DROPPED_NAN] + stats.dropped_nan
        header[BATCHES] = bases[BATCHES] + stats.batches
        header[PUBLISHES] = bases[PUBLISHES] + stats.publishes
        header[SINCE_PUBLISH] = stats.since_publish
        header[BUFFERED] = self.pipeline.buffered
        guard = self.pipeline.guard
        if guard is not None:
            header[GUARD_RECEIVED] = bases[GUARD_RECEIVED] + guard.received
            header[GUARD_ADMITTED] = bases[GUARD_ADMITTED] + guard.admitted
            other = 0
            for reason, count in guard.rejected.items():
                slot = _REASON_SLOTS.get(reason)
                if slot is None:
                    other += count
                else:
                    header[slot] = bases[slot] + count
            header[REJ_OTHER] = bases[REJ_OTHER] + other
        adaptive = self.pipeline.adaptive
        if adaptive is not None:
            header[ADAPTIVE_UPDATES] = (
                bases[ADAPTIVE_UPDATES] + adaptive.updates
            )
            header[STEP_CLIP_E9] = (
                int(adaptive.step_clip * 1e9)
                if adaptive.step_clip is not None
                else -1
            )
            header[SIGMA_E6] = (
                int(adaptive.sigma * 1e6) if adaptive.sigma is not None else -1
            )
        evaluator = self.pipeline.evaluator
        if evaluator is not None and stats.batches != self._eval_batches:
            # quantile/AUC recomputation is bounded by the window size;
            # refreshed once per batch boundary, not per chunk
            self._eval_batches = stats.batches
            payload = evaluator.evaluate()
            header[EVAL_SAMPLES] = int(payload["samples"])
            header[EVAL_OBSERVED] = bases[EVAL_OBSERVED] + int(
                payload["observed"]
            )
            if evaluator.mode == "class":
                auc = payload.get("auc")
                header[EVAL_AUC_E6] = -1 if auc is None else int(auc * 1e6)
            else:
                for key, slot in (
                    ("rel_err_p50", EVAL_P50_E6),
                    ("rel_err_p90", EVAL_P90_E6),
                    ("rel_err_p99", EVAL_P99_E6),
                ):
                    value = payload.get(key)
                    header[slot] = -1 if value is None else int(value * 1e6)

    def _ack(self, token: int) -> None:
        self._sync_counters()
        self.own_segment.header[LAST_ACK] = int(token)

    # -- the command loop ----------------------------------------------

    def run(self, commands: "multiprocessing.queues.Queue") -> None:
        while True:
            # NOT hoisted out of the loop: a "commit" swaps the epoch's
            # segments underneath us, and a header view cached across
            # that swap would write into an unmapped old segment
            header = self.own_segment.header
            try:
                item = commands.get(timeout=0.25)
            except stdlib_queue.Empty:
                header[HEARTBEAT] += 1
                continue
            header[HEARTBEAT] += 1
            kind = item[0]
            if kind == "chunk":
                sources, targets, values = item[1:4]
                meta = item[4] if len(item) > 4 else None
                self._refresh_mirrors()
                try:
                    if meta is not None:
                        self._apply_traced(meta, sources, targets, values)
                    else:
                        self.pipeline.submit_valid(sources, targets, values)
                finally:
                    header[CONSUMED] += int(values.size)
                    self._sync_counters()
            elif kind == "flush":
                self.pipeline.flush()
                self._ack(item[1])
            elif kind in ("publish", "barrier"):
                # barrier is phase one of an epoch transition: after
                # this ack, shared memory holds the worker's full state
                self.pipeline.publish()
                self._ack(item[1])
            elif kind == "commit":
                _, token, names = item
                self._reattach(names)
                U, V, versions = self._read_dense()
                self.engine.resize_model(U, V)
                self._mirror_versions = versions
                self._ack(token)
            elif kind == "resume":
                self._ack(item[1])  # aborted transition: nothing changed
            elif kind == "stop":
                self.pipeline.publish()  # leave shm == final state
                self._sync_counters()
                return
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown worker command {kind!r}")


# ----------------------------------------------------------------------
# gateway-side store facade
# ----------------------------------------------------------------------


class _EpochState:
    """One epoch's segments + per-shard snapshot cache (swapped atomically)."""

    __slots__ = ("segments", "names", "epoch", "cache")

    def __init__(
        self,
        segments: Tuple[FactorSegment, ...],
        names: Tuple[str, ...],
        epoch: int,
    ) -> None:
        self.segments = segments
        self.names = names
        self.epoch = epoch
        # per-shard (seq, ShardSnapshot); racy rebuilds are idempotent
        self.cache: List[Optional[Tuple[int, ShardSnapshot]]] = [
            None for _ in segments
        ]


class ProcessShardedStore:
    """Seqlock-reading composite store over per-shard shm segments.

    Mirrors the read API of
    :class:`~repro.serving.shard.ShardedCoordinateStore` — readers call
    :meth:`snapshot` and get the same immutable
    :class:`~repro.serving.shard.ShardedSnapshot` composite the thread
    stack serves (same gather, same einsum kernel, bitwise-identical
    estimates for the same model), so
    :class:`~repro.serving.service.PredictionService`,
    :class:`~repro.serving.shard.RequestCoalescer` and
    :class:`~repro.serving.guard.BackgroundCheckpointer` work
    unchanged.  Per-shard snapshots are cached keyed on the seqlock
    counter, so an unchanged shard costs two int reads, not a copy.

    The store owns segment *lifecycle*: :meth:`create` allocates the
    epoch's segments, epoch transitions retire the old set (unlinked
    immediately — the name disappears from ``/dev/shm`` — but kept
    mapped until :meth:`destroy` so concurrent readers never touch
    unmapped memory), and :meth:`destroy` closes and unlinks
    everything.

    Thread-safety: reads are lock-free against one atomically-swapped
    epoch state; writers (epoch swap, tombstones) serialize on an
    internal lock.
    """

    def __init__(
        self,
        state: _EpochState,
        prefix: str,
        *,
        tombstones: Sequence[int] = (),
    ) -> None:
        self._state = state
        self._prefix = prefix
        self._lock = threading.Lock()
        self._retired: List[FactorSegment] = []
        self._tombstones: Tuple[int, ...] = tuple(
            sorted(int(t) for t in tombstones)
        )
        self._destroyed = False
        #: shard count the factors were last re-partitioned *from*
        #: (checkpoint reload mismatch, or a live re-stride); surfaced
        #: in ``/stats`` so a topology change is visible after restart
        self.repartitioned_from: Optional[int] = None
        #: set True by :meth:`load` when the primary checkpoint was bad
        #: and the rotated last-good copy was restored instead
        self.recovered_from_fallback = False
        # wired by WorkerSupervisor: routes replace_model through the
        # two-phase worker commit instead of a gateway-only swap
        self._committer: Optional[Callable] = None

    # -- construction --------------------------------------------------

    @staticmethod
    def _unpack(
        coordinates: Union[CoordinateTable, Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        if isinstance(coordinates, CoordinateTable):
            U, V = coordinates.U, coordinates.V
        else:
            U, V = coordinates
        U = np.asarray(U, dtype=float)
        V = np.asarray(V, dtype=float)
        if U.shape != V.shape or U.ndim != 2:
            raise ValueError(
                f"U and V must be matching 2-D arrays, got {U.shape} "
                f"and {V.shape}"
            )
        return U, V

    @classmethod
    def create(
        cls,
        coordinates: Union[CoordinateTable, Tuple[np.ndarray, np.ndarray]],
        *,
        shards: int,
        versions: Optional[Sequence[int]] = None,
        tombstones: Sequence[int] = (),
    ) -> "ProcessShardedStore":
        """Allocate epoch-1 segments and write the initial slices."""
        U, V = cls._unpack(coordinates)
        n, rank = U.shape
        shards = int(shards)
        if not 1 <= shards <= n:
            raise ValueError(f"shards must be in [1, n={n}], got {shards}")
        if versions is None:
            versions = [1] * shards
        elif len(versions) != shards:
            raise ValueError(
                f"got {len(versions)} versions for {shards} shards"
            )
        if any(t < 0 or t >= n for t in tombstones):
            raise ValueError(f"tombstones out of range for n={n}")
        # short names: macOS caps POSIX shm names around 31 chars
        prefix = f"rp{os.getpid():x}{secrets.token_hex(3)}"
        segments = []
        names = []
        for s in range(shards):
            name = f"{prefix}e1s{s}"
            segment = FactorSegment.create(
                name,
                shard=s,
                shards=shards,
                n=n,
                rank=rank,
                version=int(versions[s]),
                epoch=1,
            )
            segment.write_slice(U[s::shards], V[s::shards], int(versions[s]))
            segments.append(segment)
            names.append(name)
        state = _EpochState(tuple(segments), tuple(names), 1)
        return cls(state, prefix, tombstones=tombstones)

    @classmethod
    def load(
        cls, path: "str | object", *, shards: Optional[int] = None
    ) -> "ProcessShardedStore":
        """Restore from any sharded / single-store ``.npz`` checkpoint.

        Delegates the format (including the shard-count-mismatch
        re-partitioning warning) to
        :meth:`~repro.serving.shard.ShardedCoordinateStore.load`, so
        thread-mode and process-mode checkpoints are interchangeable.
        """
        loaded = ShardedCoordinateStore.load(path, shards=shards)
        U, V = loaded.as_full_arrays()
        store = cls.create(
            (U, V),
            shards=loaded.shards,
            versions=loaded.versions,
            tombstones=loaded.tombstones,
        )
        store.repartitioned_from = loaded.repartitioned_from
        store.recovered_from_fallback = loaded.recovered_from_fallback
        return store

    # -- reads (lock-free) ---------------------------------------------

    def shard_snapshot(self, shard: int) -> ShardSnapshot:
        """Seqlock-consistent snapshot of one shard (cached by seq)."""
        state = self._state
        segment = state.segments[shard]
        cached = state.cache[shard]
        seq_now = segment.slot(SEQ)
        if cached is not None and cached[0] == seq_now and seq_now % 2 == 0:
            return cached[1]
        seq, version, U_s, V_s = segment.read_slice()
        header = segment.header
        part = ShardSnapshot(
            shard, len(state.segments), int(header[N]), version, U_s, V_s
        )
        state.cache[shard] = (seq, part)
        return part

    def snapshot(self) -> ShardedSnapshot:
        """The composite snapshot (per-shard seqlock reads, cached)."""
        state = self._state
        return ShardedSnapshot(
            tuple(
                self.shard_snapshot(s) for s in range(len(state.segments))
            )
        )

    @property
    def shards(self) -> int:
        """Number of partitions (one segment + worker per shard)."""
        return len(self._state.segments)

    @property
    def n(self) -> int:
        """Number of nodes in the currently served epoch."""
        return self._state.segments[0].slot(N)

    @property
    def rank(self) -> int:
        """Coordinate dimension ``r``."""
        return self._state.segments[0].slot(RANK)

    @property
    def epoch(self) -> int:
        """Current membership epoch (starts at 1, bumps per swap)."""
        return self._state.epoch

    @property
    def version(self) -> int:
        """Sum of per-shard versions (monotone under any publish)."""
        return sum(seg.slot(VERSION) for seg in self._state.segments)

    @property
    def versions(self) -> List[int]:
        """Per-shard publish versions (plain header reads)."""
        return [seg.slot(VERSION) for seg in self._state.segments]

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """The current epoch's segment names (worker attach targets)."""
        return self._state.names

    def as_full_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The reassembled dense ``(U, V)`` of the current snapshots."""
        return self.snapshot()._dense_view()

    # -- tombstones ----------------------------------------------------

    @property
    def tombstones(self) -> Tuple[int, ...]:
        """Node ids marked departed (sorted; lock-free read)."""
        return self._tombstones

    def set_tombstones(self, tombstones: Sequence[int]) -> None:
        """Replace the departed-node set (membership bookkeeping)."""
        marks = tuple(sorted(int(t) for t in tombstones))
        if any(t < 0 or t >= self.n for t in marks):
            raise ValueError(f"tombstones out of range for n={self.n}")
        with self._lock:
            self._tombstones = marks

    # -- checkpointing (same single-npz format as the thread store) ----

    def save(self, path: "str | object") -> None:
        """Checkpoint every shard to one ``.npz`` with per-shard keys.

        Crash-safe via :func:`repro.serving.store.atomic_savez` (temp
        + fsync + atomic rename, keep-last-2 rotation).
        """
        snap = self.snapshot()
        payload: Dict[str, np.ndarray] = {
            "shards": np.asarray(self.shards, dtype=np.int64),
            "n": np.asarray(snap.n, dtype=np.int64),
            "tombstones": np.asarray(self._tombstones, dtype=np.int64),
        }
        for s, part in enumerate(snap.parts):
            payload[f"U{s}"] = part.U
            payload[f"V{s}"] = part.V
            payload[f"version{s}"] = np.asarray(part.version, dtype=np.int64)
        atomic_savez(path, **payload)

    # -- epoch transitions ---------------------------------------------

    def prepare_epoch(
        self,
        coordinates: Union[CoordinateTable, Tuple[np.ndarray, np.ndarray]],
        *,
        tombstones: Optional[Sequence[int]] = None,
        shards: Optional[int] = None,
    ) -> _EpochState:
        """Allocate the next epoch's segments and write the new model.

        Counters are carried over from the live headers (totals never
        rewind across an epoch) and every shard's version is bumped, so
        the global version stays strictly monotone — which is what
        invalidates version-keyed caches after the swap.  The returned
        state is inert until :meth:`activate_epoch`.

        With ``shards`` given the new epoch is **re-strided** to a
        different partition count (a live topology change): versions
        follow :func:`repro.serving.plane.carried_versions` (no shard
        rewinds, the global sum grows), counters are carried per
        position where one exists, and — on a merge — the retired
        segments' additive totals are folded into shard 0 so the
        aggregated stats stay cumulative.
        """
        U, V = self._unpack(coordinates)
        n, rank = U.shape
        old_P = self.shards
        if shards is not None:
            P = int(shards)
            if not 1 <= P <= n:
                raise ValueError(f"shards must be in [1, n={n}], got {P}")
        else:
            P = old_P
        if n < P:
            raise ValueError(
                f"cannot shrink to {n} nodes: the store has {P} shard(s)"
            )
        if tombstones is not None:
            marks = tuple(sorted(int(t) for t in tombstones))
            if any(t < 0 or t >= n for t in marks):
                raise ValueError(f"tombstones out of range for n={n}")
        old = self._state
        epoch = old.epoch + 1
        if P == old_P:
            versions = [
                old.segments[s].slot(VERSION) + 1 for s in range(P)
            ]
        else:
            versions = carried_versions(
                [seg.slot(VERSION) for seg in old.segments], P
            )
        segments = []
        names = []
        for s in range(P):
            name = f"{self._prefix}e{epoch}s{s}"
            segment = FactorSegment.create(
                name,
                shard=s,
                shards=P,
                n=n,
                rank=rank,
                version=versions[s],
                epoch=epoch,
            )
            if s < old_P:
                segment.header[COUNTERS_FROM:] = old.segments[s].header[
                    COUNTERS_FROM:
                ]
            if s == 0 and P < old_P:
                # merge: retired shards' cumulative totals fold into
                # shard 0 (gauges describe a live worker — not carried)
                for retired in old.segments[P:]:
                    for slot in _ADDITIVE_SLOTS:
                        segment.header[slot] += retired.slot(slot)
            segment.write_slice(U[s::P], V[s::P], versions[s])
            segments.append(segment)
            names.append(name)
        return _EpochState(tuple(segments), tuple(names), epoch)

    def activate_epoch(
        self,
        state: _EpochState,
        *,
        tombstones: Optional[Sequence[int]] = None,
    ) -> None:
        """Swap readers onto the new epoch; retire the old segments.

        The swap is one attribute store: a reader either composes the
        complete old epoch or the complete new one, never a mix.  Old
        segments are unlinked now (gone from ``/dev/shm``) but stay
        mapped until :meth:`destroy` — a reader mid-copy must never
        touch unmapped memory.
        """
        with self._lock:
            old = self._state
            if tombstones is not None:
                self._tombstones = tuple(sorted(int(t) for t in tombstones))
            self._state = state  # the one atomic epoch swap
            for segment in old.segments:
                segment.unlink()
                self._retired.append(segment)

    def abort_epoch(self, state: _EpochState) -> None:
        """Destroy a prepared-but-never-activated epoch's segments."""
        for segment in state.segments:
            segment.close()
            segment.unlink()

    def replace_model(
        self,
        coordinates: Union[CoordinateTable, Tuple[np.ndarray, np.ndarray]],
        *,
        tombstones: Optional[Sequence[int]] = None,
    ) -> ShardedSnapshot:
        """Install a model of a different size (membership epoch swap).

        With a supervisor attached this is the **two-phase commit**:
        new segments are prepared, every (quiesced) worker re-attaches
        and resizes, and only then do readers swap — see
        :meth:`WorkerSupervisor.commit_epoch`.  Without workers (store
        used standalone) the swap is gateway-only.
        """
        if self._committer is not None:
            self._committer(coordinates, tombstones)
        else:
            state = self.prepare_epoch(coordinates, tombstones=tombstones)
            self.activate_epoch(state, tombstones=tombstones)
        return self.snapshot()

    # -- teardown ------------------------------------------------------

    def destroy(self) -> None:
        """Close and unlink every segment (idempotent; owner side)."""
        with self._lock:
            if self._destroyed:
                return
            self._destroyed = True
            state = self._state
            retired = self._retired
            self._retired = []
        for segment in state.segments:
            segment.close()
            segment.unlink()
        for segment in retired:
            segment.close()  # already unlinked at retirement

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessShardedStore(shards={self.shards}, n={self.n}, "
            f"epoch={self.epoch}, version={self.version})"
        )


def _worker_main(
    spec: WorkerSpec,
    shard: int,
    names: Sequence[str],
    commands,
    errors,
) -> None:
    """Child-process entry point (module-level: picklable for spawn)."""
    worker = None
    try:
        worker = _ShardWorker(spec, shard, names)
        worker.run(commands)
    except KeyboardInterrupt:  # pragma: no cover - operator interrupt
        pass
    except BaseException as exc:
        try:
            errors.put_nowait(f"shard {shard}: {exc!r}")
        except Exception:  # pragma: no cover - error queue gone
            pass
        raise
    finally:
        if worker is not None:
            worker.close_segments()


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------


class WorkerSupervisor:
    """Spawns, feeds, health-checks and restarts the shard workers.

    One bounded :class:`multiprocessing.Queue` per shard carries both
    measurement chunks and control commands, so a command naturally
    orders behind every chunk submitted before it (``flush`` means
    *everything enqueued so far is applied*).  Acks travel back through
    the ``LAST_ACK`` header slot of the worker's segment — no reply
    queue, no reply-matching state machine.

    Health: a worker is healthy while its process is alive; the monitor
    thread restarts dead workers against the **current** segment names.
    A restarted worker bootstraps its engine from the segments, so it
    resumes from the last published state (losing at most one
    ``refresh_interval`` of unpublished SGD steps) and keeps draining
    the same queue — queued chunks survive the crash.

    Parameters
    ----------
    store:
        The :class:`ProcessShardedStore` owning the segments.
    spec:
        The picklable :class:`WorkerSpec` every worker is built from.
    queue_depth:
        Bounded per-shard queue capacity, in chunks.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (fast spawn, no import replay) and falls back to ``spawn``.
        The spec is fully picklable, so both work.  Trade-off: a
        *restart* under ``fork`` forks this (by then multi-threaded)
        gateway process — POSIX only promises the child the forking
        thread, so a lock held by another thread at fork time (BLAS,
        allocator) can wedge the replacement worker.  Long-lived
        deployments that lean on crash recovery should prefer
        ``"spawn"`` (slower starts, a clean interpreter every time);
        contexts cannot be mixed per queue, so the choice is global.
    command_timeout:
        Seconds to wait for a command ack before declaring the worker
        wedged (commit recovery respawns it; other commands raise).
    health_interval:
        Monitor thread poll period; ``monitor=False`` disables the
        thread (tests drive :meth:`health_check` manually).
    """

    def __init__(
        self,
        store: ProcessShardedStore,
        spec: WorkerSpec,
        *,
        queue_depth: int = 64,
        start_method: Optional[str] = None,
        command_timeout: float = 30.0,
        health_interval: float = 0.5,
        monitor: bool = True,
        guard_factory: Optional[
            Callable[[int], Optional[AdmissionGuard]]
        ] = None,
    ) -> None:
        if queue_depth <= 0:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        if spec.guards is not None and len(spec.guards) != store.shards:
            raise ValueError(
                f"got {len(spec.guards)} guards for {store.shards} shards"
            )
        if store.shards > 1 and not spec.engine.metric.symmetric:
            # the asymmetric (ABW) update writes the *target's* v_j row
            # (eqs. 12-13), which usually lives on another shard: a
            # worker publishes only its own slice, so those deltas would
            # be silently overwritten by the owner's next mirror pull.
            # Thread mode shares one engine and is unaffected; cross-
            # shard update forwarding is a ROADMAP item.  Fail loudly
            # rather than quietly dropping (P-1)/P of target gradients.
            raise ValueError(
                "process mode with multiple shards supports symmetric "
                "(RTT) updates only: the asymmetric ABW update writes "
                "target-side rows owned by other shards' workers; use "
                "--workers threads (or shards=1) for ABW serving"
            )
        self.store = store
        self.spec = spec
        self.shards = store.shards
        #: equips shards born from a live split with fresh guards (the
        #: per-shard guards in ``spec.guards`` are positional; a new
        #: position needs a new stateful guard)
        self.guard_factory = guard_factory
        self.queue_depth = int(queue_depth)
        self.command_timeout = float(command_timeout)
        self.health_interval = float(health_interval)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.queues = [
            self._ctx.Queue(maxsize=self.queue_depth)
            for _ in range(self.shards)
        ]
        self.errors = self._ctx.Queue()
        self.procs: List[Optional[multiprocessing.Process]] = [
            None
        ] * self.shards
        self.restarts = [0] * self.shards
        self._token = 0
        self._token_lock = threading.Lock()
        # serializes spawn/restart/epoch against each other; the
        # monitor trylocks it so health checks skip live transitions
        self._lock = threading.RLock()
        self._monitor_enabled = bool(monitor)
        self._monitor_stop = threading.Event()
        self._monitor_thread: Optional[threading.Thread] = None
        self._epoch_committed = False
        self._closed = False
        store._committer = self._commit_epoch_hook

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerSupervisor":
        """Spawn every worker (and the monitor); returns self."""
        with self._lock:
            if self._closed:
                raise RuntimeError("supervisor is shut down")
            for shard in range(self.shards):
                if self.procs[shard] is None:
                    self._spawn(shard, self.store.segment_names)
        if self._monitor_enabled and self._monitor_thread is None:
            self._monitor_stop.clear()
            self._monitor_thread = threading.Thread(
                target=self._monitor_loop,
                name="repro-mp-supervisor",
                daemon=True,
            )
            self._monitor_thread.start()
        return self

    def _spawn(self, shard: int, names: Sequence[str]) -> None:
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                self.spec,
                shard,
                tuple(names),
                self.queues[shard],
                self.errors,
            ),
            name=f"repro-mp-shard-{shard}",
            daemon=True,
        )
        proc.start()
        self.procs[shard] = proc

    def _replace_queue(self, shard: int) -> None:
        """Swap in a fresh queue, salvaging the dead worker's backlog.

        A worker killed hard (SIGKILL, segfault) very likely died
        inside ``Queue.get`` *holding the queue's reader semaphore* —
        a successor could then never read the queue again.  The dead
        worker was the only consumer, so with the supervisor lock held
        we are the sole reader and may bypass the orphaned lock: drain
        the raw pipe and refill a fresh queue.  Chunks buffered in this
        process's feeder thread at swap time can be lost — crash
        recovery sheds at most a few in-flight chunks, never the
        published model.
        """
        from multiprocessing.reduction import ForkingPickler

        old = self.queues[shard]
        fresh = self._ctx.Queue(maxsize=self.queue_depth)
        try:
            time.sleep(0.05)  # let the feeder flush its buffer
            while old._reader.poll(0):
                try:
                    item = ForkingPickler.loads(old._reader.recv_bytes())
                except Exception:  # truncated/corrupt tail: stop here
                    break
                try:
                    fresh.put_nowait(item)
                except stdlib_queue.Full:  # pragma: no cover - shrunk
                    break
        except (OSError, ValueError, AttributeError):  # pragma: no cover
            pass
        self.queues[shard] = fresh
        try:
            old.close()
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass

    def respawn(self, shard: int, names: Optional[Sequence[str]] = None) -> None:
        """Kill (if needed) and relaunch one worker against ``names``."""
        with self._lock:
            proc = self.procs[shard]
            if proc is not None:
                if proc.is_alive():
                    proc.terminate()
                proc.join(timeout=2.0)
                if proc.exitcode != 0:
                    self._replace_queue(shard)
            self._spawn(
                shard, names if names is not None else self.store.segment_names
            )
            self.restarts[shard] += 1

    @property
    def running(self) -> bool:
        """Whether the supervisor has live workers."""
        return not self._closed and any(
            proc is not None and proc.is_alive() for proc in self.procs
        )

    def alive(self, shard: int) -> bool:
        """Whether one shard's worker process is currently alive."""
        proc = self.procs[shard]
        return proc is not None and proc.is_alive()

    def pids(self) -> List[Optional[int]]:
        """Per-shard worker process ids (None before spawn)."""
        return [
            proc.pid if proc is not None else None for proc in self.procs
        ]

    def drain_errors(self) -> List[str]:
        """Pull any worker-reported errors off the error queue."""
        drained: List[str] = []
        while True:
            try:
                drained.append(self.errors.get_nowait())
            except stdlib_queue.Empty:
                return drained
            except (OSError, ValueError):  # pragma: no cover - closed
                return drained

    # -- health --------------------------------------------------------

    def health_check(self) -> List[int]:
        """Restart dead workers; returns the shards restarted."""
        restarted: List[int] = []
        if self._closed:
            return restarted
        if not self._lock.acquire(blocking=False):
            return restarted  # an epoch transition is in flight
        try:
            for shard in range(self.shards):
                proc = self.procs[shard]
                if proc is not None and not proc.is_alive():
                    proc.join(timeout=0.5)
                    if proc.exitcode != 0:
                        self._replace_queue(shard)
                    self._spawn(shard, self.store.segment_names)
                    self.restarts[shard] += 1
                    restarted.append(shard)
        finally:
            self._lock.release()
        return restarted

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self.health_interval):
            try:
                self.health_check()
            except Exception:  # pragma: no cover - defensive
                pass

    # -- commands ------------------------------------------------------

    def _next_token(self) -> int:
        with self._token_lock:
            self._token += 1
            return self._token

    def command(
        self, shard: int, kind: str, *payload, timeout: Optional[float] = None
    ) -> int:
        """Enqueue one control command; returns its ack token."""
        token = self._next_token()
        self.queues[shard].put(
            (kind, token, *payload),
            timeout=timeout if timeout is not None else self.command_timeout,
        )
        return token

    def wait_ack(
        self,
        shard: int,
        token: int,
        *,
        timeout: Optional[float] = None,
        segment: Optional[FactorSegment] = None,
    ) -> None:
        """Spin-wait (with sleeps) for ``LAST_ACK`` to reach ``token``."""
        if segment is None:
            segment = self.store._state.segments[shard]
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.command_timeout
        )
        while segment.slot(LAST_ACK) < token:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"shard {shard} did not ack command {token} "
                    f"(alive={self.alive(shard)})"
                )
            time.sleep(0.0005)

    def command_all(self, kind: str, *payload) -> None:
        """Send one command to every worker and wait for all acks."""
        tokens = [
            self.command(shard, kind, *payload)
            for shard in range(self.shards)
        ]
        for shard, token in enumerate(tokens):
            self.wait_ack(shard, token)

    # -- the two-phase epoch protocol ----------------------------------

    def begin_epoch(self) -> None:
        """Phase one: quiesce every worker (drain + flush + publish).

        Takes the supervisor lock (held until :meth:`end_epoch`), so
        restarts cannot race the transition.  After this returns, the
        segments hold every worker's complete state and the workers sit
        idle waiting for ``commit`` or ``resume``.
        """
        self._lock.acquire()
        self._epoch_committed = False
        try:
            tokens = [
                self.command(shard, "barrier")
                for shard in range(self.shards)
            ]
            for shard, token in enumerate(tokens):
                try:
                    self.wait_ack(shard, token)
                except TimeoutError:
                    # dead worker: revive it from its last published
                    # state and re-quiesce (roll forward, never abort)
                    self.respawn(shard)
                    token = self.command(shard, "barrier")
                    self.wait_ack(shard, token)
        except BaseException:
            self._lock.release()
            raise

    def _commit_epoch_hook(self, coordinates, tombstones) -> None:
        """Phase two (store ``replace_model`` hook): commit to workers.

        Prepares the new epoch's segments, tells every worker to
        re-attach and resize, then atomically swaps the gateway's read
        tuple.  A worker dying mid-commit is respawned against the new
        epoch — the commit is one-way once the first worker has taken
        it, so recovery always rolls *forward*.
        """
        state = self.store.prepare_epoch(coordinates, tombstones=tombstones)
        try:
            tokens = [
                self.command(shard, "commit", state.names)
                for shard in range(self.shards)
            ]
        except BaseException:
            self.store.abort_epoch(state)
            raise
        for shard, token in enumerate(tokens):
            try:
                self.wait_ack(shard, token, segment=state.segments[shard])
            except TimeoutError:
                # roll forward: restart the worker on the new epoch
                self.respawn(shard, state.names)
                self.wait_ack(shard, token, segment=state.segments[shard])
        self.store.activate_epoch(state, tombstones=tombstones)
        self._epoch_committed = True

    def end_epoch(self) -> None:
        """Release the transition: resume workers if nothing committed."""
        try:
            if not self._epoch_committed:
                self.command_all("resume")
        finally:
            self._lock.release()

    # -- live topology -------------------------------------------------

    def set_shard_count(self, shards: int) -> None:
        """Re-partition the plane to ``shards`` worker processes.

        Reuses the two-phase epoch machinery with a twist: the worker
        *set itself* changes, so after phase one (barrier: every worker
        drains, flushes and publishes — shared memory **is** the model)
        all workers are stopped, the re-strided epoch's segments are
        prepared (:meth:`ProcessShardedStore.prepare_epoch` with
        ``shards=`` — counters folded on merge, versions carried),
        readers atomically swap, and a fresh worker set is spawned
        against the new epoch.  Queries never block: a reader keeps
        composing whichever epoch tuple it loaded, and the retired
        segments stay mapped until the store is destroyed.
        """
        shards = int(shards)
        if not 1 <= shards <= self.store.n:
            raise ValueError(
                f"shards must be in [1, n={self.store.n}], got {shards}"
            )
        if shards > 1 and not self.spec.engine.metric.symmetric:
            # same restriction as the constructor: the asymmetric ABW
            # update writes target-side rows owned by other workers
            raise ValueError(
                "process mode with multiple shards supports symmetric "
                "(RTT) updates only; cannot split an ABW plane"
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("supervisor is shut down")
            old = self.shards
            if shards == old:
                return
            # phase one: quiesce every worker (respawn-and-retry like
            # begin_epoch — roll forward, never abort)
            tokens = [
                self.command(shard, "barrier") for shard in range(old)
            ]
            for shard, token in enumerate(tokens):
                try:
                    self.wait_ack(shard, token)
                except TimeoutError:
                    self.respawn(shard)
                    token = self.command(shard, "barrier")
                    self.wait_ack(shard, token)
            # the worker set is being replaced wholesale: stop everyone
            # (their complete state now lives in the segments)
            for shard in range(old):
                proc = self.procs[shard]
                if proc is None or not proc.is_alive():
                    continue
                try:
                    self.queues[shard].put(("stop",), timeout=1.0)
                except (stdlib_queue.Full, OSError, ValueError):
                    proc.terminate()
            for shard in range(old):
                proc = self.procs[shard]
                if proc is None:
                    continue
                proc.join(timeout=self.command_timeout)
                if proc.is_alive():  # pragma: no cover - wedged worker
                    proc.terminate()
                    proc.join(timeout=2.0)
                self.procs[shard] = None
            # re-stride: one copy-on-write epoch swap
            U, V = self.store.as_full_arrays()
            state = self.store.prepare_epoch((U, V), shards=shards)
            self.store.activate_epoch(state)
            self.store.repartitioned_from = old
            self.shards = shards
            # resize the per-shard resources (queues are empty: the
            # barrier drained them and the gateway gate blocks refills)
            if shards < old:
                for q in self.queues[shards:]:
                    try:
                        q.close()
                        q.join_thread()
                    except (OSError, ValueError):  # pragma: no cover
                        pass
                del self.queues[shards:]
                del self.procs[shards:]
                del self.restarts[shards:]
            else:
                self.queues.extend(
                    self._ctx.Queue(maxsize=self.queue_depth)
                    for _ in range(old, shards)
                )
                self.procs.extend([None] * (shards - old))
                self.restarts.extend([0] * (shards - old))
            if self.spec.guards is not None:
                if self.guard_factory is not None:
                    # guards are positional *and* stateful: a re-stride
                    # reassigns every node id, so every shard gets a
                    # fresh guard rather than inheriting mismatched
                    # per-source state
                    self.spec.guards = [
                        self.guard_factory(s) for s in range(shards)
                    ]
                elif shards < old:
                    self.spec.guards = list(self.spec.guards[:shards])
                else:
                    # no recipe for new guards: new shards run
                    # unguarded (visible in /stats guard section)
                    self.spec.guards = list(self.spec.guards) + [None] * (
                        shards - old
                    )
            for shard in range(shards):
                self._spawn(shard, state.names)

    # -- shutdown ------------------------------------------------------

    def shutdown(self, *, timeout: float = 5.0) -> None:
        """Stop workers, close queues, unlink every segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._monitor_stop.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=2.0)
            self._monitor_thread = None
        for shard in range(self.shards):
            proc = self.procs[shard]
            if proc is None or not proc.is_alive():
                continue
            try:
                self.queues[shard].put(("stop",), timeout=1.0)
            except (stdlib_queue.Full, OSError, ValueError):
                proc.terminate()
        for shard, proc in enumerate(self.procs):
            if proc is None:
                continue
            proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=2.0)
            self.procs[shard] = None
        for q in self.queues + [self.errors]:
            try:
                q.close()
                q.join_thread()
            except (OSError, ValueError):  # pragma: no cover
                pass
        self.store.destroy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerSupervisor(shards={self.shards}, "
            f"start_method={self.start_method!r}, running={self.running})"
        )


# ----------------------------------------------------------------------
# gateway-side ingest facade
# ----------------------------------------------------------------------


class _GatewayEngineProxy:
    """The engine-shaped facade the membership layer manipulates.

    In process mode the real engines live in the workers; membership
    transitions read the quiesced model out of shared memory and write
    the resized model back through the two-phase commit.  This proxy
    satisfies exactly the surface
    :class:`~repro.serving.membership.MembershipManager` touches:
    ``n``/``config``/``coordinates`` reads, and a ``resize_model`` that
    is deliberately a no-op — the authoritative resize is the workers',
    performed by the commit that ``store.replace_model`` triggers.
    """

    def __init__(self, store: ProcessShardedStore, spec: WorkerSpec) -> None:
        self._store = store
        self._spec = spec

    @property
    def n(self) -> int:
        return self._store.n

    @property
    def config(self):
        return self._spec.engine.config

    @property
    def coordinates(self) -> CoordinateTable:
        """The current dense model (seqlock-consistent copy).

        Inside a membership barrier the workers have flushed and
        published, so this *is* the complete quiesced model.
        """
        U, V = self._store.as_full_arrays()
        return CoordinateTable.from_arrays(U, V)

    def resize_model(self, U: np.ndarray, V: np.ndarray) -> None:
        """Validated no-op: the worker-side resize rides the commit."""
        U = np.asarray(U, dtype=float)
        V = np.asarray(V, dtype=float)
        if U.shape != V.shape or U.ndim != 2:
            raise ValueError(
                f"U and V must be matching 2-D arrays, got {U.shape} "
                f"and {V.shape}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_GatewayEngineProxy(n={self.n})"


class _EvalFacade:
    """Merged cross-process view of the workers' online evaluators.

    Each worker runs its own test-then-train
    :class:`~repro.serving.guard.OnlineEvaluator` and publishes scalar
    window metrics into its segment header; this facade recomposes them
    into the ``online_eval`` stats section.  Quantile/AUC merging uses
    a sample-weighted mean of the per-shard window metrics — an
    approximation of the pooled-window value, exact when shards see
    exchangeable traffic.
    """

    def __init__(self, ingest: "ProcessShardedIngest") -> None:
        self._ingest = ingest
        self.mode = ingest.supervisor.spec.eval_mode
        self.window = ingest.supervisor.spec.eval_window

    def evaluate(self) -> Dict[str, object]:
        segments = self._ingest.store._state.segments
        samples = [seg.slot(EVAL_SAMPLES) for seg in segments]
        payload: Dict[str, object] = {
            "mode": self.mode,
            "window": self.window,
            "samples": int(sum(samples)),
            "observed": int(sum(seg.slot(EVAL_OBSERVED) for seg in segments)),
            "per_process": True,
        }
        if self.mode == "class":
            keys = (("auc", EVAL_AUC_E6),)
        else:
            keys = (
                ("rel_err_p50", EVAL_P50_E6),
                ("rel_err_p90", EVAL_P90_E6),
                ("rel_err_p99", EVAL_P99_E6),
            )
        for key, slot in keys:
            weighted = 0.0
            weight = 0
            for seg, count in zip(segments, samples):
                value = seg.slot(slot)
                if value >= 0 and count > 0:
                    weighted += (value / 1e6) * count
                    weight += count
            payload[key] = (weighted / weight) if weight else None
        return payload


class ProcessShardedIngest(RoutedIngestBase):
    """P admission pipelines in P worker *processes*, behind bounded queues.

    Mirrors the surface of :class:`~repro.serving.shard.ShardedIngest`
    (``submit`` / ``submit_many`` / ``flush`` / ``publish`` /
    ``buffered`` / ``stats_payload`` / ``membership_barrier`` / ...),
    so the gateway, the CLI and the membership manager run unchanged —
    but every SGD apply executes on its shard's own core, outside this
    process's GIL.  Together with :class:`ProcessShardedStore` this is
    the process-mode :class:`~repro.serving.plane.ShardPlane` —
    routing, validation and **live topology** (``set_shard_count`` /
    ``split_shard`` / ``merge_shards``) come from
    :class:`~repro.serving.plane.RoutedIngestBase`; this class supplies
    the process transport (multiprocessing queues into the worker set).

    Routing, validation and tombstone shedding happen gateway-side
    (identical to thread mode); admitted chunks cross the process
    boundary once, and admission/dedup/clip/apply run in the worker.
    Backpressure is bounded-then-shed exactly like thread mode: a full
    shard queue blocks the submitter for up to ``put_timeout`` seconds,
    then the chunk is shed and counted in ``dropped_backpressure``.
    """

    def __init__(
        self,
        store: ProcessShardedStore,
        supervisor: WorkerSupervisor,
        *,
        put_timeout: Optional[float] = 0.5,
    ) -> None:
        self.store = store
        self.supervisor = supervisor
        self.shards = store.shards
        self.spec = supervisor.spec
        self.mode = self.spec.mode
        self.queue_depth = supervisor.queue_depth
        self.put_timeout = None if put_timeout is None else float(put_timeout)
        self._gate = threading.Lock()
        self._counter_lock = threading.Lock()
        self._received = 0
        self._dropped_invalid = 0
        self._dropped_membership = 0
        self._elastic = False
        self.dropped_backpressure = 0
        self._submitted_samples = [0] * self.shards
        self.worker_errors: List[str] = []
        self._init_plane()
        self.evaluator = _EvalFacade(self) if self.spec.eval_mode else None
        self.engine = _GatewayEngineProxy(store, self.spec)
        # per-shard (monotonic time, applied) for the /shards pps gauge
        self._pps_state: Dict[int, Tuple[float, int]] = {}

    # -- helpers -------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether worker processes are draining the shard queues."""
        return self.supervisor.running

    def _drain_worker_errors(self) -> None:
        self.worker_errors.extend(self.supervisor.drain_errors())

    def _segment(self, shard: int) -> FactorSegment:
        return self.store._state.segments[shard]

    # -- submission (routing/validation live in RoutedIngestBase) ------

    def _put_chunk(self, shard: int, item) -> int:
        """Ship one chunk to a shard worker (gate held by the base)."""
        src, dst, vals = item[:3]
        samples = int(vals.size)
        if not self.supervisor.running:
            # workers are gone (shutdown race): shed, never wedge
            with self._counter_lock:
                self.dropped_backpressure += samples
            return 0
        command = (
            ("chunk", src, dst, vals, item[3])
            if len(item) > 3
            else ("chunk", src, dst, vals)
        )
        try:
            self.supervisor.queues[shard].put(
                command, timeout=self.put_timeout
            )
        except stdlib_queue.Full:
            with self._counter_lock:
                self.dropped_backpressure += samples
            return 0
        with self._counter_lock:
            self._submitted_samples[shard] += samples
        return samples

    # -- telemetry -----------------------------------------------------

    def bind_obs(self, registry) -> None:
        """Arm chunk metadata and expose the workers' shm histograms.

        Unlike thread mode, the latency histograms are not registry
        instruments: the observations happen in the worker processes,
        which write the shared bucket-ladder slots of their segment
        headers.  A scrape-time collector merges those slots into the
        *same* family names thread mode emits, so all planes report
        identically-shaped telemetry.
        """
        super().bind_obs(registry)
        registry.register_collector(self._collect_worker_latency)

    def _collect_worker_latency(self) -> List[tuple]:
        families: List[tuple] = []
        for buckets_at, count_at, sum_at, name, help in (
            (
                H_QUEUE_BUCKETS,
                H_QUEUE_COUNT,
                H_QUEUE_SUM_US,
                "repro_ingest_queue_wait_seconds",
                "Admit-to-dequeue wait of routed ingest chunks.",
            ),
            (
                H_APPLY_BUCKETS,
                H_APPLY_COUNT,
                H_APPLY_SUM_US,
                "repro_ingest_apply_seconds",
                "Dequeue-to-applied latency of drained ingest batches.",
            ),
        ):
            counts = [0] * BUCKET_COUNT
            total_us = 0
            count = 0
            for s in range(self.shards):
                header = self._segment(s).header
                for i in range(BUCKET_COUNT):
                    counts[i] += int(header[buckets_at + i])
                count += int(header[count_at])
                total_us += int(header[sum_at])
            families.append(
                (
                    name,
                    "histogram",
                    help,
                    [({}, (tuple(counts), total_us / 1e6, count))],
                )
            )
        return families

    def harvest_traces(self) -> List[Dict[str, int]]:
        """Drain every worker's span ring into merge-ready stage dicts.

        Reads are torn-entry-safe: the span id is read, then the
        fields, then the span id again — a writer re-using the entry
        mid-read changes the id, and the entry is skipped.  Entries
        stay in the ring (they survive worker restarts with the rest of
        the segment); :meth:`repro.obs.tracing.Tracer.merge` dedupes
        re-harvested spans by completeness.
        """
        out: List[Dict[str, int]] = []
        for s in range(self.shards):
            header = self._segment(s).header
            for e in range(TRACE_ENTRIES):
                slot = TRACE_RING + e * TRACE_FIELDS
                span_id = int(header[slot + 6])
                if not span_id:
                    continue
                fields = [int(header[slot + i]) for i in range(6)]
                if int(header[slot + 6]) != span_id:
                    continue  # torn: the writer lapped this entry
                out.append(
                    {
                        "span_id": span_id,
                        "accept_us": fields[0],
                        "admit_us": fields[1],
                        "queue_us": fields[2],
                        "apply_us": fields[3],
                        "publish_us": fields[4],
                        "samples": fields[5],
                    }
                )
        return out

    # -- live topology -------------------------------------------------

    def _apply_topology(self, shards: int, reason: str) -> None:
        """Re-stride the worker plane (gate held by the base).

        Delegates the heavy lifting to
        :meth:`WorkerSupervisor.set_shard_count` (barrier, worker-set
        replacement, copy-on-write epoch swap), then re-bases the
        gateway-side drain accounting: the new epoch's segments carry
        the consumed totals forward, so each shard's lag restarts at
        zero against its new ``CONSUMED`` baseline.
        """
        self.supervisor.set_shard_count(shards)
        self.shards = shards
        with self._counter_lock:
            self._submitted_samples = [
                self._segment(s).slot(CONSUMED) for s in range(shards)
            ]
        self._pps_state = {}

    # -- flushing / publishing -----------------------------------------

    def drain(self) -> None:
        """Block until every enqueued chunk has been consumed."""
        deadline = time.monotonic() + self.supervisor.command_timeout
        while True:
            with self._counter_lock:
                submitted = list(self._submitted_samples)
            lag = sum(
                max(0, submitted[s] - self._segment(s).slot(CONSUMED))
                for s in range(self.shards)
            )
            if lag == 0:
                return
            if time.monotonic() > deadline:
                raise TimeoutError(f"{lag} samples still queued after drain")
            time.sleep(0.001)

    def flush(self) -> int:
        """Drain the queues, then apply every buffered measurement."""
        before = sum(
            self._segment(s).slot(APPLIED) for s in range(self.shards)
        )
        self.supervisor.command_all("flush")
        after = sum(
            self._segment(s).slot(APPLIED) for s in range(self.shards)
        )
        return after - before

    def publish(self) -> int:
        """Drain, flush and publish every shard; returns the version."""
        self.supervisor.command_all("publish")
        return self.store.version

    @contextmanager
    def membership_barrier(self):
        """Quiesce the workers for a membership epoch transition.

        The two-phase protocol of the module docstring: under the
        submission gate, phase one (``barrier``) drains and flushes
        every worker and parks them; the caller mutates the model
        inside the ``with`` block (``store.replace_model`` performs the
        phase-two commit); on exit, workers that never saw a commit are
        resumed.  Queries keep flowing throughout — readers never touch
        the gate, the queues, or the workers.
        """
        with self._gate:
            self._elastic = True
            self.supervisor.begin_epoch()
            try:
                yield
            finally:
                self.supervisor.end_epoch()

    def close(self) -> None:
        """Stop the workers and release every segment (idempotent)."""
        self.supervisor.shutdown()

    def __enter__(self) -> "ProcessShardedIngest":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -------------------------------------------------

    @property
    def buffered(self) -> int:
        """Samples accepted but not yet applied (queues + worker buffers)."""
        with self._counter_lock:
            submitted = list(self._submitted_samples)
        queued = sum(
            max(0, submitted[s] - self._segment(s).slot(CONSUMED))
            for s in range(self.shards)
        )
        return queued + sum(
            self._segment(s).slot(BUFFERED) for s in range(self.shards)
        )

    @property
    def staleness(self) -> int:
        """Applied-but-unpublished measurements across all shards."""
        return sum(
            self._segment(s).slot(SINCE_PUBLISH) for s in range(self.shards)
        )

    def stats(self) -> IngestStats:
        """Aggregated ingest counters (worker headers + gateway drops)."""
        total = IngestStats()
        for s in range(self.shards):
            header = self._segment(s).header
            total.applied += int(header[APPLIED])
            total.deduped += int(header[DEDUPED])
            total.clipped += int(header[CLIPPED])
            total.rejected_guard += int(header[REJECTED_GUARD])
            total.dropped_nan += int(header[DROPPED_NAN])
            total.batches += int(header[BATCHES])
            total.publishes += int(header[PUBLISHES])
            total.since_publish += int(header[SINCE_PUBLISH])
        with self._counter_lock:
            total.received = self._received
            total.dropped_invalid += self._dropped_invalid
        return total

    def queue_load(self) -> List[Tuple[int, int]]:
        """Lock-free per-shard ``(queue_depth, queue_capacity)`` pairs.

        The cheap overload signal the
        :class:`~repro.serving.faults.LoadShedder` samples on the
        request path — raw command-queue sizes, no shared-memory header
        reads, no counter locks.  Platforms without ``qsize`` (macOS)
        report depth 0, degrading to never-shed rather than erroring.
        """
        out: List[Tuple[int, int]] = []
        for s in range(self.shards):
            try:
                depth = self.supervisor.queues[s].qsize()
            except NotImplementedError:  # pragma: no cover - macOS
                depth = 0
            out.append((depth, self.queue_depth))
        return out

    def shard_info(self) -> List[Dict[str, object]]:
        """Per-process vitals: pps, queue depth, snapshot age, health."""
        now = time.monotonic()
        info: List[Dict[str, object]] = []
        with self._counter_lock:
            submitted = list(self._submitted_samples)
        for s in range(self.shards):
            segment = self._segment(s)
            header = segment.header
            applied = int(header[APPLIED])
            last = self._pps_state.get(s)
            pps = 0.0
            if last is not None and now > last[0]:
                pps = max(0.0, (applied - last[1]) / (now - last[0]))
            self._pps_state[s] = (now, applied)
            try:
                depth = self.supervisor.queues[s].qsize()
            except NotImplementedError:  # pragma: no cover - macOS
                depth = -1
            age_us = now * 1e6 - int(header[PUBLISHED_AT_US])
            info.append(
                {
                    "shard": s,
                    "owned_nodes": int(header[OWNED]),
                    "queue_depth": depth,
                    "queue_capacity": self.queue_depth,
                    "queue_samples": max(
                        0, submitted[s] - int(header[CONSUMED])
                    ),
                    "buffered": int(header[BUFFERED]),
                    "version": int(header[VERSION]),
                    "snapshot_age_s": round(max(0.0, age_us / 1e6), 6),
                    "applied": applied,
                    "rejected_guard": int(header[REJECTED_GUARD]),
                    "publishes": int(header[PUBLISHES]),
                    "pps": round(pps, 3),
                    "pid": int(header[PID]) or None,
                    "alive": self.supervisor.alive(s),
                    "restarts": self.supervisor.restarts[s],
                    "heartbeat": int(header[HEARTBEAT]),
                }
            )
        return info

    def guard_info(self) -> Dict[str, object]:
        """Aggregated guard state recomposed from the worker headers."""
        segments = [self._segment(s) for s in range(self.shards)]
        step_clips = [seg.slot(STEP_CLIP_E9) for seg in segments]
        live_clips = [c / 1e9 for c in step_clips if c >= 0]
        info: Dict[str, object] = {
            "mode": self.mode,
            "step_clip": (
                round(sum(live_clips) / len(live_clips), 9)
                if live_clips
                else self.spec.step_clip
            ),
            "deduped": sum(seg.slot(DEDUPED) for seg in segments),
            "clipped": sum(seg.slot(CLIPPED) for seg in segments),
            "rejected_total": sum(
                seg.slot(REJECTED_GUARD) for seg in segments
            ),
        }
        if self.spec.guards is not None:
            rejected = {
                reason: sum(seg.slot(slot) for seg in segments)
                for reason, slot in _REASON_SLOTS.items()
            }
            other = sum(seg.slot(REJ_OTHER) for seg in segments)
            if other:
                rejected["other"] = other
            info["admission"] = {
                "received": sum(seg.slot(GUARD_RECEIVED) for seg in segments),
                "admitted": sum(seg.slot(GUARD_ADMITTED) for seg in segments),
                "rejected_total": sum(rejected.values()),
                "rejected": rejected,
            }
        if self.spec.adaptive:
            sigmas = [seg.slot(SIGMA_E6) for seg in segments]
            live_sigmas = [v / 1e6 for v in sigmas if v >= 0]
            info["adaptive"] = {
                "updates": sum(
                    seg.slot(ADAPTIVE_UPDATES) for seg in segments
                ),
                "step_clip": (
                    round(sum(live_clips) / len(live_clips), 9)
                    if live_clips
                    else None
                ),
                "sigma": (
                    round(sum(live_sigmas) / len(live_sigmas), 6)
                    if live_sigmas
                    else None
                ),
            }
        return info

    def stats_payload(self) -> Dict[str, object]:
        """The ``ingest`` + ``guard`` + ``shards`` sections of ``/stats``."""
        self._drain_worker_errors()
        ingest = self.stats().as_dict()
        ingest["buffered"] = self.buffered
        self._unify_shard_keys(ingest)
        ingest["workers"] = "processes"
        ingest["dropped_backpressure"] = self.dropped_backpressure
        with self._counter_lock:
            ingest["dropped_membership"] = self._dropped_membership
        if self.worker_errors:
            ingest["worker_errors"] = list(self.worker_errors)
        return {
            "ingest": ingest,
            "guard": self.guard_info(),
            "shards": self.shard_info(),
            "topology": self.topology(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessShardedIngest(shards={self.shards}, n={self.store.n}, "
            f"mode={self.mode!r}, running={self.running})"
        )
