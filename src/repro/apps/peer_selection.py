"""Peer selection: optimality vs satisfaction (paper Section 6.4).

Setup: every node draws a *peer set* of ``m`` candidate peers, disjoint
from its neighbor (training) set.  It then selects one peer using a
strategy:

* ``"classification"`` — the peer with the largest raw prediction
  ``xhat_ij = u_i . v_j`` (no sign/threshold taken: the magnitude orders
  peers by confidence of being good);
* ``"regression"`` — the peer with the best *predicted quantity* (lowest
  predicted RTT / highest predicted ABW) from a quantity-based model;
* ``"random"`` — a uniform random peer (the paper's baseline).

Evaluation criteria:

* **stretch** ``x_selected / x_best`` (optimality; 1 is perfect), and
* **unsatisfied-node percentage** (satisfaction): fraction of nodes that
  picked a truly-bad peer although a good peer existed in their peer
  set; nodes with all-bad peer sets are excluded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.datasets.base import PerformanceDataset
from repro.evaluation.stretch import unsatisfied
from repro.measurement.metrics import Metric
from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "build_peer_sets",
    "select_peers",
    "PeerSelectionResult",
    "PeerSelectionExperiment",
]

STRATEGIES = ("classification", "regression", "random")


def build_peer_sets(
    n: int,
    peer_count: int,
    *,
    exclude: Optional[np.ndarray] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Random ``(n, peer_count)`` peer sets, disjoint from ``exclude``.

    Parameters
    ----------
    n:
        Number of nodes.
    peer_count:
        Candidate peers per node.
    exclude:
        Optional ``(n, k)`` array (the training neighbor sets); the
        paper forces peer sets to be disjoint from neighbor sets so
        selection is evaluated on *predicted*, never measured, pairs.
    rng:
        Seed or generator.
    """
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    generator = ensure_rng(rng)
    peers = np.empty((n, peer_count), dtype=int)
    base = np.arange(n)
    for i in range(n):
        forbidden = {i}
        if exclude is not None:
            forbidden.update(int(x) for x in exclude[i])
        candidates = np.setdiff1d(base, np.fromiter(forbidden, dtype=int))
        if candidates.size < peer_count:
            raise ValueError(
                f"node {i}: only {candidates.size} candidates for "
                f"peer_count={peer_count}"
            )
        peers[i] = generator.choice(candidates, size=peer_count, replace=False)
    return peers


def select_peers(
    strategy: str,
    peer_sets: np.ndarray,
    *,
    metric: Union[str, Metric],
    decision_matrix: Optional[np.ndarray] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Pick one peer per node according to ``strategy``.

    Parameters
    ----------
    strategy:
        ``"classification"``, ``"regression"`` or ``"random"``.
    peer_sets:
        ``(n, m)`` candidate table from :func:`build_peer_sets`.
    metric:
        Decides the direction for the regression strategy.
    decision_matrix:
        ``(n, n)`` predictions: class margins for ``"classification"``
        (larger = more likely good), predicted quantities for
        ``"regression"``.
    rng:
        Generator for the random strategy.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` selected peer ids.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected {STRATEGIES}")
    metric = Metric.parse(metric)
    peer_sets = np.asarray(peer_sets, dtype=int)
    n, m = peer_sets.shape

    if strategy == "random":
        generator = ensure_rng(rng)
        picks = generator.integers(0, m, size=n)
        return peer_sets[np.arange(n), picks]

    if decision_matrix is None:
        raise ValueError(f"strategy {strategy!r} requires a decision matrix")
    decision_matrix = np.asarray(decision_matrix, dtype=float)
    rows = np.repeat(np.arange(n), m).reshape(n, m)
    values = decision_matrix[rows, peer_sets]

    if strategy == "classification":
        # j_p = argmax_j xhat_ij over the peer set (paper's rule); NaN
        # predictions are ranked last.
        values = np.where(np.isfinite(values), values, -np.inf)
        choice = np.argmax(values, axis=1)
    else:  # regression: predicted best quantity
        if metric.higher_is_better:
            values = np.where(np.isfinite(values), values, -np.inf)
            choice = np.argmax(values, axis=1)
        else:
            values = np.where(np.isfinite(values), values, np.inf)
            choice = np.argmin(values, axis=1)
    return peer_sets[np.arange(n), choice]


@dataclass(frozen=True)
class PeerSelectionResult:
    """Aggregated outcome of a selection experiment.

    Attributes
    ----------
    strategy:
        The strategy evaluated.
    peer_count:
        Peer-set size ``m``.
    mean_stretch:
        Average ``x_selected / x_best`` over nodes with valid ground
        truth (>= 1 for RTT, <= 1 for ABW).
    unsatisfied_fraction:
        Fraction of could-be-satisfied nodes that picked a bad peer.
    evaluated_nodes:
        Number of nodes contributing to the stretch average.
    """

    strategy: str
    peer_count: int
    mean_stretch: float
    unsatisfied_fraction: float
    evaluated_nodes: int


class PeerSelectionExperiment:
    """Evaluate selection strategies against a dataset's ground truth.

    Parameters
    ----------
    dataset:
        Ground-truth quantities (stretch) and classes via ``tau``
        (satisfaction).
    tau:
        Classification threshold; default the dataset median.
    peer_sets:
        ``(n, m)`` candidates; build with :func:`build_peer_sets`.
    """

    def __init__(
        self,
        dataset: PerformanceDataset,
        peer_sets: np.ndarray,
        *,
        tau: Optional[float] = None,
    ) -> None:
        self.dataset = dataset
        self.peer_sets = np.asarray(peer_sets, dtype=int)
        if self.peer_sets.ndim != 2 or self.peer_sets.shape[0] != dataset.n:
            raise ValueError(
                f"peer_sets must be (n, m) with n={dataset.n}, "
                f"got {self.peer_sets.shape}"
            )
        self.tau = dataset.median() if tau is None else float(tau)

    def evaluate(self, strategy: str, selected: np.ndarray) -> PeerSelectionResult:
        """Score a selection vector against the ground truth."""
        selected = np.asarray(selected, dtype=int)
        n, m = self.peer_sets.shape
        if selected.shape != (n,):
            raise ValueError(f"selected must be ({n},), got {selected.shape}")

        quantities = self.dataset.quantities
        metric = self.dataset.metric
        rows = np.repeat(np.arange(n), m).reshape(n, m)
        peer_quantities = quantities[rows, self.peer_sets]

        selected_quantity = quantities[np.arange(n), selected]

        # --- stretch (optimality) ---------------------------------------
        with np.errstate(invalid="ignore"):
            if metric.higher_is_better:
                best = np.nanmax(peer_quantities, axis=1)
            else:
                best = np.nanmin(peer_quantities, axis=1)
        valid = (
            np.isfinite(selected_quantity)
            & np.isfinite(best)
            & (best > 0)
        )
        if not valid.any():
            raise ValueError("no node has valid ground truth for stretch")
        stretch = selected_quantity[valid] / best[valid]

        # --- satisfaction ------------------------------------------------
        peer_good = metric.is_good(peer_quantities, self.tau)
        peer_good &= np.isfinite(peer_quantities)
        any_good = peer_good.any(axis=1)
        selected_good = np.zeros(n, dtype=bool)
        observed_selection = np.isfinite(selected_quantity)
        selected_good[observed_selection] = metric.is_good(
            selected_quantity[observed_selection], self.tau
        )
        unsat = unsatisfied(selected_good, any_good)

        return PeerSelectionResult(
            strategy=strategy,
            peer_count=m,
            mean_stretch=float(np.mean(stretch)),
            unsatisfied_fraction=float(unsat),
            evaluated_nodes=int(valid.sum()),
        )

    def run(
        self,
        strategy: str,
        *,
        decision_matrix: Optional[np.ndarray] = None,
        rng: RngLike = None,
    ) -> PeerSelectionResult:
        """Select with ``strategy`` and evaluate in one call."""
        selected = select_peers(
            strategy,
            self.peer_sets,
            metric=self.dataset.metric,
            decision_matrix=decision_matrix,
            rng=rng,
        )
        return self.evaluate(strategy, selected)
