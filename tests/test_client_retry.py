"""Client retry-with-backoff against a flapping server.

A worker-group restart or gateway failover looks like a connection
reset/refused to callers; :class:`~repro.serving.client.ServingClient`
absorbs a bounded number of those with exponential backoff.  The
flapping server here slams the first ``k`` connections shut without a
response — exactly the restart window — then answers normally.
"""

from __future__ import annotations

import json
import socket
import threading

import numpy as np
import pytest

from repro.serving.client import GatewayError, ServingClient


class FlappingServer:
    """Closes the first ``flaps`` connections cold, then answers.

    ``status`` controls the eventual answer (200 JSON payload, or an
    error status with a JSON ``error`` body, to pin that HTTP errors
    are *not* retried).  ``unavailable`` answers that many connections
    (after the flaps) with ``503 + Retry-After`` before recovering —
    the load-shedding window a client must back off through.
    """

    def __init__(
        self,
        *,
        flaps: int,
        status: int = 200,
        unavailable: int = 0,
        retry_after: float = 0.01,
    ) -> None:
        self.flaps = flaps
        self.status = status
        self.unavailable = unavailable
        self.retry_after = retry_after
        self.connections = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        # set before the thread starts: a test that never connects may
        # close the socket before the serve loop's first statement runs
        self._sock.settimeout(0.1)
        self.port = self._sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self.connections += 1
            if self.connections <= self.flaps:
                # the restart window: slam the connection shut with no
                # response (RemoteDisconnected / ECONNRESET client-side)
                conn.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00",
                )
                conn.close()
                continue
            try:
                conn.recv(65536)
                if self.connections <= self.flaps + self.unavailable:
                    # the shedding window: a clean 503 asking for the
                    # retry via Retry-After (header + payload, like the
                    # gateway's two transports)
                    body = json.dumps(
                        {"error": "overloaded", "retry_after": self.retry_after}
                    ).encode()
                    conn.sendall(
                        f"HTTP/1.1 503 Service Unavailable\r\n"
                        f"Content-Type: application/json\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        f"Retry-After: {self.retry_after:g}\r\n"
                        f"Connection: close\r\n\r\n".encode() + body
                    )
                    continue
                if self.status == 200:
                    body = json.dumps({"version": 7}).encode()
                else:
                    body = json.dumps({"error": "nope"}).encode()
                reason = "OK" if self.status == 200 else "Bad Request"
                conn.sendall(
                    f"HTTP/1.1 {self.status} {reason}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n".encode() + body
                )
            finally:
                conn.close()

    def __enter__(self) -> "FlappingServer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._sock.close()
        self._thread.join(timeout=5.0)


def test_retries_through_flapping_server():
    with FlappingServer(flaps=2) as server:
        client = ServingClient(server.url, retries=3, retry_delay=0.01)
        assert client.version() == 7
        assert client.retries_used == 2
        assert server.connections == 3


def test_fail_fast_with_zero_retries():
    with FlappingServer(flaps=1) as server:
        client = ServingClient(server.url, retries=0)
        with pytest.raises(Exception) as excinfo:
            client.version()
        assert isinstance(excinfo.value, ConnectionError) or (
            isinstance(getattr(excinfo.value, "reason", None), ConnectionError)
        )
        assert client.retries_used == 0


def test_retries_exhausted_raises():
    with FlappingServer(flaps=100) as server:
        client = ServingClient(server.url, retries=2, retry_delay=0.01)
        with pytest.raises(Exception):
            client.version()
        assert client.retries_used == 2
        assert server.connections == 3  # 1 attempt + 2 retries


def test_connection_refused_retried_then_raised():
    # grab a free port and close it: connections are refused
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    client = ServingClient(
        f"http://127.0.0.1:{port}", retries=2, retry_delay=0.01
    )
    with pytest.raises(Exception):
        client.health()
    assert client.retries_used == 2


def test_http_errors_are_not_retried():
    with FlappingServer(flaps=0, status=400) as server:
        client = ServingClient(server.url, retries=3, retry_delay=0.01)
        with pytest.raises(GatewayError) as excinfo:
            client.version()
        assert excinfo.value.status == 400
        assert client.retries_used == 0
        assert server.connections == 1


def test_post_body_resubmitted_on_retry():
    with FlappingServer(flaps=1) as server:
        client = ServingClient(server.url, retries=2, retry_delay=0.01)
        # POST path goes through the same retry loop with its payload
        result = client._request("/refresh", {})
        assert result == {"version": 7}
        assert client.retries_used == 1


def test_sink_protocol_still_satisfied():
    # submit_many remains the LiveFeedDriver-compatible sink surface
    with FlappingServer(flaps=0) as server:
        client = ServingClient(server.url, retries=1)
        assert hasattr(client, "submit_many")
        assert np.asarray([1]).dtype.kind == "i"  # keep numpy imported


def test_retry_parameter_validation():
    with pytest.raises(ValueError, match="retries"):
        ServingClient("http://x", retries=-1)
    with pytest.raises(ValueError, match="retry_delay"):
        ServingClient("http://x", retry_delay=-0.1)


def test_503_retried_until_the_shedding_window_passes():
    with FlappingServer(flaps=0, unavailable=2) as server:
        client = ServingClient(server.url, retries=3, retry_delay=0.01)
        assert client.version() == 7
        assert client.retries_503 == 2
        assert client.retries_used == 2
        assert server.connections == 3


def test_503_honors_retry_after_over_exponential_backoff():
    import time

    # retry_delay=10 would sleep seconds if the jittered exponential
    # path ran; honoring the server's 0.05 s Retry-After returns fast
    with FlappingServer(
        flaps=0, unavailable=1, retry_after=0.05
    ) as server:
        client = ServingClient(server.url, retries=2, retry_delay=10.0)
        start = time.perf_counter()
        assert client.version() == 7
        elapsed = time.perf_counter() - start
        assert 0.05 <= elapsed < 2.0
        assert client.retries_503 == 1


def test_503_exhausted_surfaces_as_gateway_error():
    with FlappingServer(flaps=0, unavailable=100) as server:
        client = ServingClient(server.url, retries=2, retry_delay=0.01)
        with pytest.raises(GatewayError) as excinfo:
            client.version()
        assert excinfo.value.status == 503
        assert client.retries_503 == 2
        assert server.connections == 3


def test_503_backoff_sources_and_timeout_cap():
    client = ServingClient("http://x", timeout=0.2, retry_delay=0.5)

    class _Error:
        def __init__(self, headers):
            self.headers = headers

    # header wins, capped at the client's own timeout
    assert client._backoff_503(
        _Error({"Retry-After": "999"}), {}, 0
    ) == pytest.approx(0.2)
    assert client._backoff_503(
        _Error({"Retry-After": "0.05"}), {}, 0
    ) == pytest.approx(0.05)
    # payload retry_after is the fallback when the header is absent/bad
    assert client._backoff_503(
        _Error({"Retry-After": "soon"}), {"retry_after": 0.07}, 0
    ) == pytest.approx(0.07)
    # neither given: full jitter in [0, retry_delay * 2**attempt)
    for attempt in range(3):
        delay = client._backoff_503(_Error(None), {}, attempt)
        assert 0.0 <= delay <= 0.5 * 2**attempt


def test_connection_retry_uses_full_jitter(monkeypatch):
    import repro.serving.client as client_mod

    sleeps = []
    monkeypatch.setattr(
        client_mod.time, "sleep", lambda s: sleeps.append(s)
    )
    with FlappingServer(flaps=3) as server:
        client = ServingClient(server.url, retries=3, retry_delay=0.2)
        assert client.version() == 7
    assert len(sleeps) == 3
    for attempt, slept in enumerate(sleeps):
        assert 0.0 <= slept <= 0.2 * 2**attempt
