"""Tests for the discrete-event queue."""

import pytest

from repro.simnet.events import EventQueue


class TestScheduling:
    def test_fires_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda: fired.append("b"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.run()
        assert fired == ["a", "b"]

    def test_ties_fire_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for name in "abc":
            queue.schedule(1.0, lambda n=name: fired.append(n))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances(self):
        queue = EventQueue()
        times = []
        queue.schedule(1.5, lambda: times.append(queue.now))
        queue.run()
        assert times == [1.5]

    def test_schedule_during_event(self):
        queue = EventQueue()
        fired = []

        def first():
            fired.append("first")
            queue.schedule(1.0, lambda: fired.append("second"))

        queue.schedule(1.0, first)
        queue.run()
        assert fired == ["first", "second"]
        assert queue.now == 2.0

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        queue = EventQueue()
        queue.schedule_at(5.0, lambda: None)
        queue.run()
        assert queue.now == 5.0

    def test_schedule_at_past_rejected(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run()
        with pytest.raises(ValueError):
            queue.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        queue.run()
        assert fired == []

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1


class TestRunUntil:
    def test_stops_at_time(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(3.0, lambda: fired.append(3))
        queue.run_until(2.0)
        assert fired == [1]
        assert queue.now == 2.0

    def test_later_events_survive(self):
        queue = EventQueue()
        fired = []
        queue.schedule(3.0, lambda: fired.append(3))
        queue.run_until(2.0)
        queue.run()
        assert fired == [3]

    def test_max_events_bound(self):
        queue = EventQueue()
        for _ in range(10):
            queue.schedule(1.0, lambda: None)
        fired = queue.run_until(5.0, max_events=3)
        assert fired == 3

    def test_empty_queue(self):
        queue = EventQueue()
        assert queue.run_until(10.0) == 0
        assert queue.now == 10.0

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False

    def test_processed_counter(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run()
        assert queue.processed == 1
