"""Fig. 7 — peer selection: optimality vs satisfaction.

For each dataset, four strategies are compared across peer-set sizes
m in {10, 20, 30, 40, 50, 60}:

* **Random** — baseline;
* **Classification** — class-based DMFSGD, peer with largest ``xhat``;
* **Regression** — quantity-based DMFSGD (L2), predicted-best peer;
* **Classification with noise** — class-based trained on labels with
  10% "flip near tau" + 5% "good-to-bad" corruption (15% total).

Criteria: average stretch (top row of the paper's figure) and
unsatisfied-node percentage (bottom row).

Expected shapes: both predictors beat random on stretch, regression
being the most optimal; on *satisfaction* classification is on par with
regression (~10% unsatisfied on average) and the 15% label noise costs
it less than ~5 points.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.apps.peer_selection import PeerSelectionExperiment, build_peer_sets
from repro.experiments.common import (
    DEFAULT_SEED,
    get_dataset,
    train_classifier,
    train_regressor,
)
from repro.measurement.errors import GoodToBad, FlipNearThreshold, delta_for_error_level
from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table

__all__ = ["run", "format_result", "PEER_COUNTS", "STRATEGY_LABELS"]

#: Peer-set sizes of the x-axis.
PEER_COUNTS = (10, 20, 30, 40, 50, 60)

#: Row labels in the paper's legend order.
STRATEGY_LABELS = (
    "random",
    "classification",
    "regression",
    "classification+noise",
)


def _noisy_labels(name: str, seed: int) -> np.ndarray:
    """10% flip-near-tau + 5% good-to-bad = 15% total corruption."""
    dataset = get_dataset(name, seed=seed)
    tau = dataset.median()
    labels = dataset.class_matrix(tau)
    delta = delta_for_error_level(
        dataset.observed_values(), tau, 0.10, error_type=1
    )
    rng = ensure_rng(seed + 13)
    labels = FlipNearThreshold(tau, delta).apply(
        labels, dataset.quantities, rng=rng
    )
    labels = GoodToBad(0.05).apply(labels, dataset.quantities, rng=rng)
    return labels


def run(
    seed: int = DEFAULT_SEED,
    *,
    datasets: tuple = ("harvard", "meridian", "hps3"),
    peer_counts: tuple = PEER_COUNTS,
) -> Dict[str, object]:
    """Train the three predictors per dataset and sweep peer counts.

    Returns
    -------
    dict
        ``stretch`` and ``unsatisfied``: mappings
        ``(dataset, strategy, m) -> value``.
    """
    stretch: Dict[tuple, float] = {}
    unsat: Dict[tuple, float] = {}

    for name in datasets:
        clean = train_classifier(name, seed=seed)
        noisy = train_classifier(
            name, seed=seed, train_labels=_noisy_labels(name, seed)
        )
        dataset, predicted_quantities = train_regressor(name, seed=seed)
        tau = dataset.median()

        decision = {
            "classification": clean.decision_matrix,
            "classification+noise": noisy.decision_matrix,
            "regression": predicted_quantities,
            "random": None,
        }

        for m in peer_counts:
            peer_sets = build_peer_sets(
                dataset.n, m, rng=ensure_rng(seed + 1000 + m)
            )
            experiment = PeerSelectionExperiment(dataset, peer_sets, tau=tau)
            for strategy_label in STRATEGY_LABELS:
                base = (
                    "classification"
                    if strategy_label.startswith("classification")
                    else strategy_label
                )
                outcome = experiment.run(
                    base,
                    decision_matrix=decision[strategy_label],
                    rng=ensure_rng(seed + 2000 + m),
                )
                stretch[(name, strategy_label, m)] = outcome.mean_stretch
                unsat[(name, strategy_label, m)] = outcome.unsatisfied_fraction

    return {
        "stretch": stretch,
        "unsatisfied": unsat,
        "datasets": tuple(datasets),
        "peer_counts": tuple(peer_counts),
    }


def format_result(result: Dict[str, object]) -> str:
    """Two tables (stretch, unsatisfied%) per dataset."""
    sections: List[str] = []
    for name in result["datasets"]:
        for criterion, key in (("stretch", "stretch"), ("unsatisfied", "unsatisfied")):
            headers = ["m"] + list(STRATEGY_LABELS)
            rows = []
            for m in result["peer_counts"]:
                row: List[object] = [m]
                for strategy in STRATEGY_LABELS:
                    row.append(result[key][(name, strategy, m)])
                rows.append(row)
            sections.append(
                f"[{name}] {criterion}:\n"
                + format_table(rows, headers=headers, float_fmt=".3f")
            )
    return "\n\n".join(sections)
