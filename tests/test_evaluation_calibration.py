"""Tests for probability calibration metrics."""

import numpy as np
import pytest

from repro.evaluation.calibration import (
    brier_score,
    expected_calibration_error,
    predicted_probability,
    reliability_curve,
)


class TestPredictedProbability:
    def test_sigmoid_at_zero(self):
        assert predicted_probability(0.0) == pytest.approx(0.5)

    def test_monotone(self):
        margins = np.array([-3.0, -1.0, 0.0, 1.0, 3.0])
        probabilities = predicted_probability(margins)
        assert (np.diff(probabilities) > 0).all()

    def test_bounded(self):
        probabilities = predicted_probability(np.array([-100.0, 100.0]))
        assert 0.0 <= probabilities[0] < 0.01
        assert 0.99 < probabilities[1] <= 1.0

    def test_nan_passthrough(self):
        out = predicted_probability(np.array([np.nan, 0.0]))
        assert np.isnan(out[0]) and out[1] == 0.5


class TestBrierScore:
    def test_perfect_forecast(self):
        labels = np.array([1.0, -1.0])
        probabilities = np.array([1.0, 0.0])
        assert brier_score(labels, probabilities) == 0.0

    def test_worst_forecast(self):
        labels = np.array([1.0, -1.0])
        probabilities = np.array([0.0, 1.0])
        assert brier_score(labels, probabilities) == 1.0

    def test_uninformative_half(self):
        labels = np.array([1.0, -1.0, 1.0, -1.0])
        probabilities = np.full(4, 0.5)
        assert brier_score(labels, probabilities) == 0.25

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            brier_score(np.array([1.0]), np.array([1.5]))

    def test_nan_pairs_dropped(self):
        labels = np.array([1.0, np.nan])
        probabilities = np.array([1.0, 0.3])
        assert brier_score(labels, probabilities) == 0.0


class TestReliabilityCurve:
    def test_calibrated_forecaster(self, rng):
        probabilities = rng.uniform(0, 1, size=20_000)
        outcomes = (rng.random(20_000) < probabilities).astype(float)
        labels = np.where(outcomes == 1.0, 1.0, -1.0)
        mean_predicted, empirical, counts = reliability_curve(
            labels, probabilities, bins=10
        )
        assert counts.sum() == 20_000
        np.testing.assert_allclose(mean_predicted, empirical, atol=0.05)

    def test_empty_bins_skipped(self):
        labels = np.array([1.0, -1.0])
        probabilities = np.array([0.95, 0.05])
        mean_predicted, empirical, counts = reliability_curve(
            labels, probabilities, bins=10
        )
        assert len(counts) == 2

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            reliability_curve(np.array([1.0]), np.array([0.5]), bins=0)


class TestECE:
    def test_calibrated_is_small(self, rng):
        probabilities = rng.uniform(0, 1, size=20_000)
        outcomes = (rng.random(20_000) < probabilities).astype(float)
        labels = np.where(outcomes == 1.0, 1.0, -1.0)
        assert expected_calibration_error(labels, probabilities) < 0.03

    def test_anticalibrated_is_large(self, rng):
        probabilities = rng.uniform(0, 1, size=5_000)
        outcomes = (rng.random(5_000) < (1.0 - probabilities)).astype(float)
        labels = np.where(outcomes == 1.0, 1.0, -1.0)
        assert expected_calibration_error(labels, probabilities) > 0.3

    def test_trained_model_is_roughly_calibrated(self, rtt_labels):
        """Logistic DMFSGD margins give usable probabilities."""
        from repro.core import DMFSGDConfig, DMFSGDEngine, matrix_label_fn

        n = rtt_labels.shape[0]
        engine = DMFSGDEngine(
            n,
            matrix_label_fn(rtt_labels),
            DMFSGDConfig(neighbors=8),
            metric="rtt",
            rng=2,
        )
        result = engine.run(rounds=250)
        probabilities = predicted_probability(result.estimate_matrix())
        ece = expected_calibration_error(rtt_labels, probabilities)
        assert ece < 0.25
