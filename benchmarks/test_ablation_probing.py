"""Ablation bench — random vs active (uncertainty-driven) probing.

DESIGN.md documents a deliberately *negative* result: the
active-sampling idea from the MMMF prior work (probe the
smallest-margin neighbor) underperforms the paper's uniform random
probing at small budgets, because randomly initialized margins carry no
information and margin-chasing starves coverage.  Checked: random wins
at the small budget, and both strategies reach a usable AUC at the
large budget (active sampling recovers once estimates are meaningful).
"""

from repro.experiments import ablations


def test_ablation_probe_strategies(run_once, report):
    result = run_once(ablations.run_probe_strategies)
    report("Ablation — probe strategies", ablations.format_result(result))

    assert result["random_small_auc"] > result["uncertain_small_auc"], (
        "random probing should win at small budgets (uninformed margins)"
    )
    assert result["random_large_auc"] > 0.9
    assert result["uncertain_large_auc"] > 0.85, (
        "active sampling should still converge at large budgets"
    )
