"""Fig. 1 — singular values of performance matrices and class matrices.

The paper plots the normalized singular values of a 2255-node Meridian
RTT extraction and a 201-node HP-S3 ABW extraction, plus their binary
class matrices thresholded at the median.  All four spectra decay fast,
motivating low-rank matrix completion.

Expected shape: singular values collapse within ~10 components; the
class matrices decay somewhat slower than the raw matrices but remain
strongly low rank.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.evaluation.rank import effective_rank, normalized_singular_values
from repro.experiments.common import DEFAULT_SEED, get_dataset
from repro.utils.tables import format_table

__all__ = ["run", "format_result"]

#: Leading singular values shown in the paper's plot.
SPECTRUM_LENGTH = 20

#: Extraction sizes the paper uses (scaled to our sweep datasets).
EXTRACTIONS = {"meridian": 2255, "hps3": 201}


def run(seed: int = DEFAULT_SEED) -> Dict[str, object]:
    """Compute the four spectra of Fig. 1.

    Returns
    -------
    dict
        ``spectra``: mapping of curve name (``"RTT"``, ``"RTT class"``,
        ``"ABW"``, ``"ABW class"``) to the leading normalized singular
        values; ``effective_rank``: 95%-energy rank per curve.
    """
    spectra: Dict[str, np.ndarray] = {}
    ranks: Dict[str, int] = {}

    for name, label in (("meridian", "RTT"), ("hps3", "ABW")):
        dataset = get_dataset(name, seed=seed)
        extract = min(EXTRACTIONS[name], dataset.n)
        sample = dataset.subsample(extract, rng=seed)
        quantities = sample.quantities
        classes = sample.class_matrix()  # tau = median, as in the paper

        spectra[label] = normalized_singular_values(quantities, SPECTRUM_LENGTH)
        spectra[f"{label} class"] = normalized_singular_values(
            classes, SPECTRUM_LENGTH
        )
        ranks[label] = effective_rank(quantities)
        ranks[f"{label} class"] = effective_rank(classes)

    return {"spectra": spectra, "effective_rank": ranks}


def format_result(result: Dict[str, object]) -> str:
    """Render the spectra as the table backing Fig. 1."""
    spectra = result["spectra"]
    names = list(spectra)
    rows = []
    for index in range(SPECTRUM_LENGTH):
        row = [index + 1]
        for name in names:
            values = spectra[name]
            row.append(float(values[index]) if index < len(values) else "")
        rows.append(row)
    table = format_table(rows, headers=["#sv"] + names, float_fmt=".4f")
    ranks = result["effective_rank"]
    rank_line = "  ".join(f"{name}: {ranks[name]}" for name in names)
    return f"{table}\n95%-energy effective rank -> {rank_line}"
