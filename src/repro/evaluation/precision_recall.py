"""Precision-recall curves (paper Section 6.1, Fig. 5b).

Precision for the positive ("good") class is TP / (TP + FP); recall is
the true positive rate.  The curve is traced by sweeping the
discrimination threshold ``tau_c`` over the prediction values, like the
ROC curve.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.evaluation.roc import _clean

__all__ = ["precision_recall_curve", "average_precision"]


def precision_recall_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision-recall curve of a binary scorer.

    Parameters
    ----------
    y_true:
        True classes in {+1, -1}; NaN pairs are dropped.
    scores:
        Real-valued predictions (higher = more "good").

    Returns
    -------
    (precision, recall, thresholds):
        Points ordered by decreasing threshold, i.e. increasing recall;
        recall spans (0, 1] provided positives exist.
    """
    y_true, scores = _clean(y_true, scores)
    positives = float(np.sum(y_true == 1.0))
    if positives == 0:
        raise ValueError("precision-recall needs positive samples")

    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_true = y_true[order]

    distinct = np.nonzero(np.diff(sorted_scores))[0]
    cut = np.concatenate([distinct, [y_true.size - 1]])

    tps = np.cumsum(sorted_true == 1.0)[cut]
    predicted_positive = cut + 1.0

    precision = tps / predicted_positive
    recall = tps / positives
    thresholds = sorted_scores[cut]
    return precision, recall, thresholds


def average_precision(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the precision-recall curve (step interpolation).

    Computed as ``sum_k (R_k - R_{k-1}) * P_k`` over the curve points,
    the standard average-precision estimator.
    """
    precision, recall, _ = precision_recall_curve(y_true, scores)
    recall_steps = np.diff(np.concatenate([[0.0], recall]))
    return float(np.sum(recall_steps * precision))
