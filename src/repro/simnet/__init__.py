"""Discrete-event network simulation substrate.

DMFSGD is a *protocol*: nodes exchange probe and reply messages and
update local state on receipt (paper Algorithms 1 and 2).  This package
provides the machinery to execute such protocols faithfully:

* :mod:`repro.simnet.events` — virtual clock and event queue;
* :mod:`repro.simnet.messages` — typed messages with payload sizes (so
  experiments can account for protocol overhead);
* :mod:`repro.simnet.node` — the node interface (message and timer
  handlers);
* :mod:`repro.simnet.simulator` — the network: delivers messages with
  configurable latency and drop rate, owns the clock;
* :mod:`repro.simnet.neighbors` — random reference-set management;
* :mod:`repro.simnet.livefeed` — drivers replaying simulator traffic
  into the online serving ingest pipeline.
"""

from repro.simnet.events import EventQueue, ScheduledEvent
from repro.simnet.livefeed import (
    ChurnDriver,
    ClusterOutageDriver,
    LiveFeedDriver,
    replay_trace,
)
from repro.simnet.messages import Message
from repro.simnet.neighbors import NeighborSet, sample_neighbor_sets
from repro.simnet.node import SimNode
from repro.simnet.replay import TraceReplaySimulation
from repro.simnet.simulator import NetworkSimulator

__all__ = [
    "EventQueue",
    "ScheduledEvent",
    "Message",
    "SimNode",
    "NetworkSimulator",
    "NeighborSet",
    "sample_neighbor_sets",
    "TraceReplaySimulation",
    "ChurnDriver",
    "ClusterOutageDriver",
    "LiveFeedDriver",
    "replay_trace",
]
