"""Multiclass extension: more than two performance classes.

The paper's future-work section (Section 7) proposes extending the
binary framework to multiple ordered classes (e.g. "excellent" /
"acceptable" / "poor").  Performance classes are naturally *ordinal* —
they come from cutting a quantity axis at thresholds
``tau_1 < tau_2 < ... < tau_{C-1}`` — so this module uses the standard
ordinal-decomposition scheme (Frank & Hall): train ``C - 1`` binary
DMFSGD models, model ``m`` predicting "is the path's class better than
class m?", and read the predicted class off the number of positive
verdicts.  Each binary model is an unmodified
:class:`~repro.core.engine.DMFSGDEngine`, so the extension remains fully
decentralized: a node stores ``C - 1`` coordinate pairs.

This module is an extension beyond the paper's evaluation; its bench
(`benchmarks/test_ext_multiclass.py`) is marked accordingly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.config import DMFSGDConfig
from repro.core.engine import DMFSGDEngine, matrix_label_fn
from repro.measurement.metrics import Metric
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.validation import check_square_matrix

__all__ = ["quantize_classes", "MulticlassDMFSGD"]


def quantize_classes(
    quantities: np.ndarray,
    thresholds: Sequence[float],
    metric: Union[str, Metric],
) -> np.ndarray:
    """Cut quantities into ordinal classes ``0 .. C-1`` (higher = better).

    Parameters
    ----------
    quantities:
        Quantity matrix (NaN passes through).
    thresholds:
        Strictly increasing quantity cut points; ``C = len + 1`` classes
        result.
    metric:
        Orientation: for RTT, *smaller* quantities get *higher* class
        indices; for ABW, larger quantities do.
    """
    metric = Metric.parse(metric)
    thresholds = np.asarray(sorted(float(t) for t in thresholds))
    if thresholds.size == 0:
        raise ValueError("need at least one threshold")
    if np.unique(thresholds).size != thresholds.size:
        raise ValueError("thresholds must be distinct")
    quantities = np.asarray(quantities, dtype=float)
    # number of thresholds the quantity clears, oriented so that higher
    # class index always means better performance
    if metric.higher_is_better:
        ranks = np.searchsorted(thresholds, quantities, side="right")
    else:
        ranks = thresholds.size - np.searchsorted(
            thresholds, quantities, side="left"
        )
    classes = ranks.astype(float)
    classes[~np.isfinite(quantities)] = np.nan
    return classes


class MulticlassDMFSGD:
    """Ordinal multiclass prediction from ``C - 1`` binary DMFSGD models.

    Parameters
    ----------
    n:
        Number of nodes.
    class_matrix:
        ``(n, n)`` ordinal classes from :func:`quantize_classes`
        (NaN = unobserved).
    n_classes:
        Number of classes ``C``; inferred from the matrix when omitted.
    config:
        Shared binary-model hyper-parameters.
    metric:
        RTT/ABW — forwarded to each binary engine to pick the update
        family.
    rng:
        Seed; each binary model gets an independent child generator but
        they share one neighbor-set realization (a node probes the same
        neighbors for all boundary models — one probe yields all
        boundary labels at once, so measurement cost stays that of a
        single binary deployment).
    """

    def __init__(
        self,
        n: int,
        class_matrix: np.ndarray,
        *,
        n_classes: Optional[int] = None,
        config: Optional[DMFSGDConfig] = None,
        metric: Union[str, Metric] = Metric.RTT,
        rng: RngLike = None,
    ) -> None:
        class_matrix = check_square_matrix(
            np.asarray(class_matrix, dtype=float), "class_matrix"
        )
        if class_matrix.shape[0] != n:
            raise ValueError(
                f"class_matrix is {class_matrix.shape}, expected ({n}, {n})"
            )
        observed = class_matrix[np.isfinite(class_matrix)]
        if observed.size == 0:
            raise ValueError("class matrix has no observed entries")
        if np.any(observed != np.round(observed)) or observed.min() < 0:
            raise ValueError("classes must be non-negative integers")
        inferred = int(observed.max()) + 1
        self.n_classes = int(n_classes) if n_classes else inferred
        if self.n_classes < 2:
            raise ValueError(f"need >= 2 classes, got {self.n_classes}")
        if inferred > self.n_classes:
            raise ValueError(
                f"matrix contains class {inferred - 1} but n_classes="
                f"{self.n_classes}"
            )
        self.n = int(n)
        self.config = config or DMFSGDConfig()
        self.metric = Metric.parse(metric)
        self.class_matrix = class_matrix

        master = ensure_rng(rng)
        child_rngs = spawn_rngs(master, self.n_classes - 1)
        # one shared neighbor realization across boundary models
        from repro.simnet.neighbors import sample_neighbor_sets

        neighbor_sets = sample_neighbor_sets(
            self.n, self.config.neighbors, master
        )

        self.engines: List[DMFSGDEngine] = []
        for boundary in range(self.n_classes - 1):
            # binary question: is the class strictly better than `boundary`?
            labels = np.where(class_matrix > boundary, 1.0, -1.0)
            labels[~np.isfinite(class_matrix)] = np.nan
            self.engines.append(
                DMFSGDEngine(
                    self.n,
                    matrix_label_fn(labels),
                    self.config,
                    metric=self.metric,
                    rng=child_rngs[boundary],
                    neighbor_sets=neighbor_sets,
                )
            )

    def train(self, rounds: int) -> "MulticlassDMFSGD":
        """Train every boundary model for ``rounds`` probing rounds."""
        for engine in self.engines:
            engine.run(rounds)
        return self

    def decision_matrices(self) -> List[np.ndarray]:
        """Per-boundary real-valued margins."""
        return [e.coordinates.estimate_matrix() for e in self.engines]

    def predict_classes(self) -> np.ndarray:
        """Predicted ordinal class = number of positive boundary verdicts.

        The monotonicity of ordinal decomposition is enforced implicitly:
        counting positive verdicts is robust to individual boundary
        inversions.
        """
        votes = np.zeros((self.n, self.n))
        for margins in self.decision_matrices():
            votes += (margins > 0).astype(float)
        np.fill_diagonal(votes, np.nan)
        return votes

    def accuracy(self, mask: Optional[np.ndarray] = None) -> float:
        """Exact-class accuracy over observed (optionally masked) pairs."""
        predicted = self.predict_classes()
        truth = self.class_matrix
        valid = np.isfinite(truth) & np.isfinite(predicted)
        if mask is not None:
            valid &= np.asarray(mask, dtype=bool)
        if not valid.any():
            raise ValueError("no pairs to evaluate")
        return float(np.mean(predicted[valid] == truth[valid]))

    def off_by_at_most(self, distance: int, mask: Optional[np.ndarray] = None) -> float:
        """Fraction of pairs predicted within ``distance`` classes."""
        if distance < 0:
            raise ValueError(f"distance must be >= 0, got {distance}")
        predicted = self.predict_classes()
        truth = self.class_matrix
        valid = np.isfinite(truth) & np.isfinite(predicted)
        if mask is not None:
            valid &= np.asarray(mask, dtype=bool)
        if not valid.any():
            raise ValueError("no pairs to evaluate")
        return float(
            np.mean(np.abs(predicted[valid] - truth[valid]) <= distance)
        )
