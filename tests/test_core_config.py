"""Tests for repro.core.config."""

import pytest

from repro.core.config import DMFSGDConfig
from repro.core.losses import LogisticLoss


class TestDefaults:
    def test_paper_defaults(self):
        config = DMFSGDConfig()
        assert config.rank == 10
        assert config.learning_rate == 0.1
        assert config.regularization == 0.1
        assert config.loss == "logistic"

    def test_loss_fn_resolution(self):
        assert isinstance(DMFSGDConfig().loss_fn, LogisticLoss)

    def test_is_classification(self):
        assert DMFSGDConfig().is_classification
        assert not DMFSGDConfig(loss="l2").is_classification

    @pytest.mark.parametrize(
        "dataset,k", [("harvard", 10), ("meridian", 32), ("hps3", 10)]
    )
    def test_per_dataset_neighbors(self, dataset, k):
        assert DMFSGDConfig.paper_defaults(dataset).neighbors == k

    def test_paper_defaults_unknown_dataset(self):
        with pytest.raises(ValueError):
            DMFSGDConfig.paper_defaults("planetlab")

    def test_paper_defaults_none(self):
        assert DMFSGDConfig.paper_defaults().neighbors == 10


class TestValidation:
    def test_rejects_zero_rank(self):
        with pytest.raises(ValueError):
            DMFSGDConfig(rank=0)

    def test_rejects_negative_learning_rate(self):
        with pytest.raises(ValueError):
            DMFSGDConfig(learning_rate=-0.1)

    def test_rejects_negative_regularization(self):
        with pytest.raises(ValueError):
            DMFSGDConfig(regularization=-0.1)

    def test_accepts_zero_regularization(self):
        assert DMFSGDConfig(regularization=0.0).regularization == 0.0

    def test_rejects_zero_neighbors(self):
        with pytest.raises(ValueError):
            DMFSGDConfig(neighbors=0)

    def test_rejects_bad_init_range(self):
        with pytest.raises(ValueError):
            DMFSGDConfig(init_low=1.0, init_high=0.0)

    def test_rejects_unknown_loss(self):
        with pytest.raises(ValueError):
            DMFSGDConfig(loss="nope")


class TestWithUpdates:
    def test_returns_new_instance(self):
        config = DMFSGDConfig()
        updated = config.with_updates(rank=5)
        assert updated.rank == 5
        assert config.rank == 10

    def test_is_frozen(self):
        with pytest.raises(Exception):
            DMFSGDConfig().rank = 3

    def test_update_validates(self):
        with pytest.raises(ValueError):
            DMFSGDConfig().with_updates(learning_rate=0.0)
