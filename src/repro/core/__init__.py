"""Core DMFSGD machinery: the paper's primary contribution.

This package implements Sections 4 and 5 of the paper:

* :mod:`repro.core.losses` — L2 / hinge / logistic losses and their
  gradients (eqs. 14–19).
* :mod:`repro.core.coordinates` — the per-node factor vectors ``u_i`` and
  ``v_i`` and the global coordinate table used by simulations.
* :mod:`repro.core.updates` — the SGD update rules for the RTT variant
  (eqs. 9–10) and the ABW variant (eqs. 12–13).
* :mod:`repro.core.config` — hyper-parameter bundle with the paper's
  defaults (``r=10``, ``eta=0.1``, ``lambda=0.1``, logistic loss).
* :mod:`repro.core.engine` — vectorized round-based trainer for large
  sweeps.
* :mod:`repro.core.dmfsgd` — the faithful message-level protocol
  (Algorithms 1 and 2) running on :mod:`repro.simnet`.
* :mod:`repro.core.matrix_completion` — centralized batch matrix
  factorization used as a reference solver.
* :mod:`repro.core.history` — convergence tracking.
* :mod:`repro.core.multiclass` — one-vs-rest extension to more than two
  performance classes (the paper's future work, Section 7).
"""

from repro.core.config import DMFSGDConfig
from repro.core.coordinates import CoordinateTable, NodeCoordinates
from repro.core.dmfsgd import DMFSGDSimulation
from repro.core.engine import DMFSGDEngine, TrainResult, matrix_label_fn
from repro.core.history import TrainingHistory
from repro.core.losses import (
    HingeLoss,
    L2Loss,
    LogisticLoss,
    Loss,
    available_losses,
    get_loss,
)
from repro.core.matrix_completion import BatchMatrixFactorization, complete_matrix
from repro.core.multiclass import MulticlassDMFSGD, quantize_classes
from repro.core.schedules import constant, get_schedule, inverse_sqrt, inverse_time
from repro.core.updates import (
    abw_update_prober,
    abw_update_target,
    rtt_update,
)

__all__ = [
    "DMFSGDConfig",
    "CoordinateTable",
    "NodeCoordinates",
    "DMFSGDSimulation",
    "DMFSGDEngine",
    "TrainResult",
    "matrix_label_fn",
    "MulticlassDMFSGD",
    "quantize_classes",
    "constant",
    "inverse_sqrt",
    "inverse_time",
    "get_schedule",
    "TrainingHistory",
    "Loss",
    "L2Loss",
    "HingeLoss",
    "LogisticLoss",
    "get_loss",
    "available_losses",
    "BatchMatrixFactorization",
    "complete_matrix",
    "rtt_update",
    "abw_update_prober",
    "abw_update_target",
]
