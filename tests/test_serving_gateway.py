"""End-to-end tests: in-process HTTP gateway + client (repro.serving)."""

import json
from urllib.request import urlopen

import numpy as np
import pytest

from repro.core.config import DMFSGDConfig
from repro.core.engine import DMFSGDEngine, matrix_label_fn
from repro.serving import (
    GatewayError,
    IngestPipeline,
    OnlineEvaluator,
    PredictionService,
    ServingClient,
    ServingGateway,
)
from repro.serving.plane import SHARDS_ALIAS_TOMBSTONE
from repro.serving.store import CoordinateStore


@pytest.fixture(scope="module")
def stack(rtt_labels_module):
    """Engine pre-trained briefly, wrapped in store/service/ingest."""
    labels = rtt_labels_module
    n = labels.shape[0]
    config = DMFSGDConfig(neighbors=8)
    engine = DMFSGDEngine(n, matrix_label_fn(labels), config, rng=11)
    engine.run(rounds=120)
    store = CoordinateStore(engine.coordinates)
    service = PredictionService(store, cache_size=256)
    ingest = IngestPipeline(
        engine,
        store,
        batch_size=64,
        refresh_interval=500,
        evaluator=OnlineEvaluator("class", window=500),
    )
    return store, service, ingest


@pytest.fixture(scope="module")
def rtt_labels_module():
    from repro.datasets import load_meridian

    return load_meridian(n_hosts=40, rng=7).class_matrix()


@pytest.fixture(scope="module")
def gateway(stack):
    _, service, ingest = stack
    with ServingGateway(service, ingest, port=0) as gw:
        yield gw


@pytest.fixture(scope="module")
def client(gateway):
    return ServingClient(gateway.url)


class TestQueryEndpoints:
    def test_health(self, client, stack):
        store, _, _ = stack
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["nodes"] == store.n

    def test_predict_pair_matches_service(self, client, stack):
        store, _, _ = stack
        payload = client.predict(1, 2)
        assert payload["estimate"] == pytest.approx(
            store.snapshot().estimate(1, 2)
        )
        assert payload["label"] in (-1, 1)

    def test_predict_from(self, client, stack):
        store, _, _ = stack
        payload = client.predict_from(0, targets=[1, 2, 3])
        assert payload["targets"] == [1, 2, 3]
        assert payload["estimates"][0] == pytest.approx(
            store.snapshot().estimate(0, 1)
        )

    def test_predict_from_full_row_masks_self(self, client, stack):
        store, _, _ = stack
        payload = client.predict_from(5)
        assert len(payload["estimates"]) == store.n
        assert payload["estimates"][5] is None

    def test_stats_exposes_both_sides(self, client):
        payload = client.stats()
        assert "service" in payload and "ingest" in payload
        assert payload["service"]["pair_queries"] >= 1

    def test_stats_exposes_guard_and_online_eval(self, client):
        payload = client.stats()
        assert payload["guard"]["mode"] == "guarded"
        assert "deduped" in payload["guard"]
        assert "rejected_total" in payload["guard"]
        assert payload["online_eval"]["mode"] == "class"
        assert "auc" in payload["online_eval"]
        # split drop counters are individually visible
        for key in ("dropped_invalid", "dropped_nan", "rejected_guard"):
            assert key in payload["ingest"]

    def test_version_endpoint(self, client, stack):
        store, _, _ = stack
        assert client.version() == store.version


class TestBatchEndpoint:
    def test_matches_snapshot_estimates(self, client, stack):
        store, _, _ = stack
        pairs = [(1, 2), (5, 9), (2, 1)]
        payload = client.estimate_batch(pairs)
        snapshot = store.snapshot()
        assert payload["sources"] == [1, 5, 2]
        assert payload["targets"] == [2, 9, 1]
        for (src, dst), estimate in zip(pairs, payload["estimates"]):
            assert estimate == pytest.approx(snapshot.estimate(src, dst))
        assert all(label in (-1, 1) for label in payload["labels"])

    def test_self_pair_answers_null_not_400(self, client):
        payload = client.estimate_batch([(3, 3), (3, 4)])
        assert payload["estimates"][0] is None
        assert payload["labels"][0] is None
        assert payload["estimates"][1] is not None

    def test_empty_batch(self, client, stack):
        store, _, _ = stack
        payload = client.estimate_batch([])
        assert payload["estimates"] == []
        assert payload["version"] == store.version

    def test_out_of_range_is_400(self, client, stack):
        store, _, _ = stack
        with pytest.raises(GatewayError) as excinfo:
            client.estimate_batch([(0, store.n + 3)])
        assert excinfo.value.status == 400

    def test_malformed_pairs_are_400(self, client):
        for body in (
            {"pairs": "nope"},
            {"pairs": [[1]]},
            {"pairs": [[1, 2, 3]]},
            {"pairs": [[1.5, 2]]},
            {},
        ):
            with pytest.raises(GatewayError) as excinfo:
                client._request("/estimate/batch", body)
            assert excinfo.value.status == 400

    def test_works_on_read_only_gateway(self, stack):
        store, service, _ = stack
        with ServingGateway(service, None, port=0) as gw:
            client = ServingClient(gw.url)
            payload = client.estimate_batch([(0, 1)])
            assert payload["estimates"][0] == pytest.approx(
                store.snapshot().estimate(0, 1)
            )

    def test_batch_queries_counted(self, client):
        before = client.stats()["service"]["batch_queries"]
        client.estimate_batch([(0, 1), (1, 2)])
        stats = client.stats()["service"]
        assert stats["batch_queries"] == before + 1
        assert stats["batch_pairs"] >= 2


class TestErrorHandling:
    def test_missing_parameter_is_400(self, client, gateway):
        with pytest.raises(GatewayError) as excinfo:
            client._request("/predict?src=0")
        assert excinfo.value.status == 400

    def test_out_of_range_is_400(self, client, stack):
        store, _, _ = stack
        with pytest.raises(GatewayError) as excinfo:
            client.predict(0, store.n + 5)
        assert excinfo.value.status == 400

    def test_unknown_path_is_404(self, client):
        with pytest.raises(GatewayError) as excinfo:
            client._request("/nope")
        assert excinfo.value.status == 404

    def test_bad_ingest_body_is_400(self, client):
        with pytest.raises(GatewayError) as excinfo:
            client._request("/ingest", {"measurements": "nope"})
        assert excinfo.value.status == 400

    def test_non_numeric_measurement_is_400(self, client):
        # float()/np.asarray raise TypeError on JSON objects; the
        # gateway must answer 400 instead of dropping the connection.
        with pytest.raises(GatewayError) as excinfo:
            client._request("/ingest", {"measurements": [[1, 2, {}]]})
        assert excinfo.value.status == 400
        with pytest.raises(GatewayError) as excinfo:
            client._request("/ingest", {"measurements": [[1, 2, {}], [0, 1, 1.0]]})
        assert excinfo.value.status == 400

    def test_single_measurement_uses_scalar_fast_path(self, client):
        """One-measurement posts take IngestPipeline.submit; behavior
        (accepted counts, invalid-sample dropping) matches the batch
        path."""
        before = client.stats()["ingest"]["received"]
        assert client.ingest([(0, 1, 123.0)])["accepted"] == 1
        assert client.ingest([(4, 4, 1.0)])["accepted"] == 0  # self-pair
        payload = client._request(
            "/ingest", {"measurements": [[0, 1, None]]}
        )  # null value -> NaN -> dropped, not raised
        assert payload["accepted"] == 0
        assert client.stats()["ingest"]["received"] == before + 3

    def test_self_pair_is_400(self, client):
        with pytest.raises(GatewayError) as excinfo:
            client.predict(3, 3)
        assert excinfo.value.status == 400

    def test_non_json_body_is_400(self, gateway):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            gateway.url + "/ingest", data=b"not json"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urlopen(request, timeout=5)
        assert excinfo.value.code == 400


class TestReadOnlyGateway:
    def test_post_without_ingest_is_400(self, stack):
        _, service, _ = stack
        with ServingGateway(service, None, port=0) as gw:
            client = ServingClient(gw.url)
            with pytest.raises(GatewayError) as excinfo:
                client.refresh()
            assert excinfo.value.status == 400
            assert client.health()["status"] == "ok"


class TestOnlineLearningEndToEnd:
    def test_streamed_measurements_change_predictions(self, client, stack):
        """The acceptance-criteria scenario: query, stream >= 1k
        measurements, observe the served prediction change."""
        store, _, _ = stack
        rng = np.random.default_rng(99)
        n = store.n

        before = client.predict(3, 7)
        version_before = before["version"]

        # 1200 measurements: hammer pair (3, 7) with bad-class labels,
        # mixed with background traffic on random other pairs.
        measurements = []
        for k in range(1200):
            if k % 2 == 0:
                src, dst = (3, 7) if k % 4 == 0 else (7, 3)
                measurements.append((src, dst, -1.0))
            else:
                src = int(rng.integers(0, n))
                dst = int((src + 1 + rng.integers(0, n - 1)) % n)
                value = float(rng.choice([-1.0, 1.0]))
                measurements.append((src, dst, value))

        response = client.ingest(measurements)
        assert response["accepted"] == 1200
        client.refresh()  # drain the buffer and publish

        after = client.predict(3, 7)
        assert after["version"] > version_before  # refresh policy fired
        assert after["estimate"] != before["estimate"]
        assert after["estimate"] < before["estimate"]  # pushed toward bad

        stats = client.stats()
        ingest_stats = stats["ingest"]
        # guarded mode merges within-batch duplicates of the hammered
        # pair; every sample is accounted for either way
        assert ingest_stats["applied"] + ingest_stats["deduped"] >= 1200
        assert ingest_stats["publishes"] >= 1
        # hammering one pair with a constant class produced dedup work
        assert stats["guard"]["deduped"] > 0
        # ... and the hot pair's estimate never left the finite range
        assert after["estimate"] is not None
        assert stats["online_eval"]["samples"] > 0

    def test_cache_invalidated_by_ingest_publish(self, client):
        first = client.predict(2, 9)
        cached = client.predict(2, 9)
        assert cached["cached"] is True
        client.ingest([(2, 9, -1.0)] * 64)
        client.refresh()
        fresh = client.predict(2, 9)
        assert fresh["cached"] is False
        assert fresh["version"] > first["version"]


class TestGatewayLifecycle:
    def test_port_zero_picks_free_port(self, gateway):
        assert gateway.port > 0
        assert str(gateway.port) in gateway.url

    def test_double_start_rejected(self, gateway):
        with pytest.raises(RuntimeError):
            gateway.start()

    def test_raw_http_speaks_json(self, gateway):
        with urlopen(gateway.url + "/health", timeout=5) as response:
            assert response.headers["Content-Type"] == "application/json"
            payload = json.loads(response.read().decode())
        assert payload["status"] == "ok"


# ----------------------------------------------------------------------
# scale-out additions (PR 3): selectors backend, coalescing, shards
# ----------------------------------------------------------------------


def _small_stack(n=30, shards=None, seed=13):
    """A tiny engine/store/service/ingest stack for backend tests."""
    from repro.serving import ShardedCoordinateStore, ShardedIngest

    config = DMFSGDConfig(neighbors=8)
    engine = DMFSGDEngine(
        n, matrix_label_fn(np.sign(np.random.default_rng(seed).normal(size=(n, n)))),
        config, rng=seed,
    )
    engine.run(rounds=40)
    if shards:
        store = ShardedCoordinateStore(engine.coordinates, shards=shards)
        ingest = ShardedIngest(
            engine, store, batch_size=32, refresh_interval=100, workers=True
        )
    else:
        store = CoordinateStore(engine.coordinates)
        ingest = IngestPipeline(engine, store, batch_size=32, refresh_interval=100)
    service = PredictionService(store, cache_size=64)
    return store, service, ingest


class TestSelectorsBackend:
    @pytest.fixture(scope="class")
    def selectors_gateway(self):
        _, service, ingest = _small_stack()
        with ServingGateway(service, ingest, port=0, backend="selectors") as gw:
            yield gw

    @pytest.fixture(scope="class")
    def selectors_client(self, selectors_gateway):
        return ServingClient(selectors_gateway.url)

    def test_health_and_version(self, selectors_client):
        health = selectors_client.health()
        assert health["status"] == "ok"
        assert selectors_client.version() == health["version"]

    def test_predict_matches_service(self, selectors_gateway, selectors_client):
        payload = selectors_client.predict(3, 7)
        direct = selectors_gateway.service.predict_pair(3, 7)
        assert payload["estimate"] == pytest.approx(direct.estimate)
        assert payload["label"] == direct.label

    def test_batch_endpoint(self, selectors_client):
        result = selectors_client.estimate_batch([(1, 2), (3, 4), (5, 5)])
        assert len(result["estimates"]) == 3
        assert result["estimates"][2] is None  # self-pair -> null

    def test_ingest_and_refresh(self, selectors_client):
        before = selectors_client.version()
        response = selectors_client.ingest([(1, 2, 1.0)] * 40)
        assert response["accepted"] == 40
        assert selectors_client.refresh() > before

    def test_errors_are_json(self, selectors_client):
        with pytest.raises(GatewayError) as excinfo:
            selectors_client.predict(0, 10**9)
        assert excinfo.value.status == 400
        with pytest.raises(GatewayError) as excinfo:
            selectors_client._request("/nope")
        assert excinfo.value.status == 404

    def test_large_body_round_trip(self, selectors_client):
        # a many-KB POST exercises the chunked non-blocking read path
        pairs = [(i % 29, (i + 1) % 29) for i in range(4000)]
        result = selectors_client.estimate_batch(pairs)
        assert len(result["estimates"]) == 4000

    def test_invalid_backend_rejected(self):
        _, service, _ = _small_stack(n=12)
        with pytest.raises(ValueError, match="backend"):
            ServingGateway(service, backend="twisted")

class TestSelectorsCoalescing:
    """The selectors loop defers /predict into the coalescer and writes
    the response on batch completion (ROADMAP: combine both wins)."""

    @pytest.fixture(scope="class")
    def coalescing_gateway(self):
        _, service, ingest = _small_stack()
        gw = ServingGateway(
            service,
            ingest,
            port=0,
            backend="selectors",
            coalesce_window=0.002,
        )
        assert gw.coalescer is not None  # no longer warned away
        with gw:
            yield gw

    def test_predict_is_coalesced_end_to_end(self, coalescing_gateway):
        client = ServingClient(coalescing_gateway.url)
        payload = client.predict(3, 7)
        assert payload["coalesced"] is True
        direct = coalescing_gateway.service.store.snapshot()
        expected = direct.estimate_pairs(np.array([3]), np.array([7]))[0]
        assert payload["estimate"] == pytest.approx(expected)

    def test_concurrent_predicts_share_gathers(self, coalescing_gateway):
        import threading

        url = coalescing_gateway.url
        results, failures = [], []
        lock = threading.Lock()

        def worker(wid):
            client = ServingClient(url)
            local = np.random.default_rng(wid)
            try:
                for _ in range(10):
                    s = int(local.integers(0, 30))
                    t = int((s + 1 + local.integers(0, 29)) % 30)
                    out = client.predict(s, t)
                    with lock:
                        results.append(out)
            except Exception as exc:  # pragma: no cover - diagnostic
                with lock:
                    failures.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        assert len(results) == 40
        assert all(r["coalesced"] is True for r in results)
        stats = coalescing_gateway.coalescer.as_dict()
        assert stats["requests"] >= 40

    def test_bad_request_answers_alone(self, coalescing_gateway):
        client = ServingClient(coalescing_gateway.url)
        with pytest.raises(GatewayError) as excinfo:
            client.predict(3, 3)  # self-pair
        assert excinfo.value.status == 400
        with pytest.raises(GatewayError) as excinfo:
            client.predict(0, 10**9)  # out of range
        assert excinfo.value.status == 400
        # the shared batch path is unaffected by the rejections
        assert client.predict(1, 2)["coalesced"] is True

    def test_stats_carry_coalescer_section(self, coalescing_gateway):
        client = ServingClient(coalescing_gateway.url)
        client.predict(5, 6)
        stats = client.stats()
        assert stats["coalescer"]["requests"] >= 1

    def test_pipelined_bytes_do_not_redispatch(self, coalescing_gateway):
        """A deferred connection is quiesced: trailing bytes a client
        pipelines behind the deferred /predict must not re-dispatch the
        stale parse state (regression: duplicate coalescer tickets and
        a corrupt interleaved response stream)."""
        import socket

        before = coalescing_gateway.coalescer.as_dict()["requests"]
        with socket.create_connection(
            (coalescing_gateway.host, coalescing_gateway.port), timeout=5.0
        ) as sock:
            sock.sendall(
                b"GET /predict?src=1&dst=2 HTTP/1.1\r\n"
                b"Host: x\r\n\r\n"
                b"GET /predict?src=3&dst=4 HTTP/1.1\r\n"
                b"Host: x\r\n\r\n"
            )
            sock.settimeout(5.0)
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break  # server closes after one response
                raw += chunk
        # exactly one complete, well-formed response for request 1
        assert raw.count(b"HTTP/1.1 200") == 1
        head, _, body = raw.partition(b"\r\n\r\n")
        payload = json.loads(body)
        assert payload["source"] == 1 and payload["target"] == 2
        assert payload["coalesced"] is True
        after = coalescing_gateway.coalescer.as_dict()["requests"]
        assert after == before + 1  # the pipelined bytes never submitted


class TestShardedGateway:
    @pytest.fixture(scope="class")
    def sharded_gateway(self):
        _, service, ingest = _small_stack(shards=4)
        with ServingGateway(
            service, ingest, port=0, coalesce_window=0.002
        ) as gw:
            yield gw

    @pytest.fixture(scope="class")
    def sharded_client(self, sharded_gateway):
        return ServingClient(sharded_gateway.url)

    def test_predict_is_coalesced(self, sharded_client):
        payload = sharded_client.predict(2, 9)
        assert payload["coalesced"] is True
        assert payload["label"] in (-1, 1, None)

    def test_coalesced_self_pair_still_400(self, sharded_client):
        with pytest.raises(GatewayError) as excinfo:
            sharded_client.predict(4, 4)
        assert excinfo.value.status == 400

    def test_concurrent_predicts_share_batches(self, sharded_gateway, sharded_client):
        import threading

        errors = []

        def hammer():
            try:
                for _ in range(10):
                    sharded_client.predict(1, 5)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = sharded_gateway.coalescer.as_dict()
        assert stats["requests"] >= 40
        assert stats["batches"] >= 1

    def test_shards_endpoint(self, sharded_client):
        shards = sharded_client.shards()
        assert len(shards) == 4
        for entry in shards:
            assert {"shard", "queue_depth", "version", "snapshot_age_s"} <= set(entry)

    def test_stats_carries_shard_and_coalescer_sections(self, sharded_client):
        stats = sharded_client.stats()
        assert len(stats["shards"]) == 4
        assert "coalescer" in stats
        assert stats["ingest"]["shard_count"] == 4
        # the deprecated numeric alias is gone; a tombstone names the
        # replacement key for one release
        assert stats["ingest"]["shards"] == SHARDS_ALIAS_TOMBSTONE

    def test_ingest_routes_through_shards(self, sharded_client):
        response = sharded_client.ingest(
            [(i % 29, (i + 3) % 29, 1.0) for i in range(200)]
        )
        assert response["accepted"] == 200
        version = sharded_client.refresh()
        assert version == sum(
            entry["version"] for entry in sharded_client.shards()
        )

    def test_shards_endpoint_400_on_unsharded(self, client):
        with pytest.raises(GatewayError) as excinfo:
            client.shards()
        assert excinfo.value.status == 400
