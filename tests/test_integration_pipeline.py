"""End-to-end integration tests across modules.

These exercise the full Fig. 2 pipeline: dataset -> measurement module
(threshold / tools / noise) -> decentralized prediction -> evaluation ->
application (peer selection), on small inputs.
"""

import numpy as np
import pytest

from repro.apps.peer_selection import PeerSelectionExperiment, build_peer_sets
from repro.core.config import DMFSGDConfig
from repro.core.dmfsgd import DMFSGDSimulation
from repro.core.engine import DMFSGDEngine, matrix_label_fn
from repro.evaluation import accuracy_score, auc_score
from repro.measurement.errors import GoodToBad
from repro.measurement.pathload import PathLoad
from repro.measurement.ping import Ping


class TestStaticPipelineRtt:
    def test_dataset_to_selection(self, rtt_dataset):
        tau = rtt_dataset.median()
        labels = rtt_dataset.class_matrix(tau)
        config = DMFSGDConfig(neighbors=8)
        engine = DMFSGDEngine(
            rtt_dataset.n, matrix_label_fn(labels), config, metric="rtt", rng=0
        )
        neighbor_sets = engine.neighbor_sets
        result = engine.run(rounds=250)

        assert auc_score(labels, result.estimate_matrix()) > 0.85
        assert accuracy_score(labels, result.predicted_classes()) > 0.75

        peers = build_peer_sets(
            rtt_dataset.n, 6, exclude=neighbor_sets, rng=1
        )
        experiment = PeerSelectionExperiment(rtt_dataset, peers, tau=tau)
        predicted = experiment.run(
            "classification", decision_matrix=result.estimate_matrix()
        )
        random = experiment.run("random", rng=2)
        assert predicted.unsatisfied_fraction < random.unsatisfied_fraction


class TestToolDrivenProtocol:
    def test_ping_oracle_rtt(self, rtt_dataset):
        """Algorithm 1 fed by the simulated ping tool, jitter included."""
        tau = rtt_dataset.median()
        ping = Ping(rtt_dataset.quantities, jitter=0.05, rng=0)
        sim = DMFSGDSimulation(
            rtt_dataset.n,
            lambda i, j: ping.classify(i, j, tau),
            DMFSGDConfig(neighbors=8),
            metric="rtt",
            rng=0,
        )
        sim.run(duration=150.0)
        labels = rtt_dataset.class_matrix(tau)
        auc = auc_score(labels, sim.coordinate_table().estimate_matrix())
        assert auc > 0.8

    def test_pathload_oracle_abw(self, abw_dataset):
        """Algorithm 2 fed by the simulated pathload tool."""
        tau = abw_dataset.median()
        tool = PathLoad(
            abw_dataset.quantities, rate=tau, noise=0.05, rng=0
        )
        sim = DMFSGDSimulation(
            abw_dataset.n,
            lambda i, j: tool.probe(i, j),
            DMFSGDConfig(neighbors=8),
            metric="abw",
            rng=0,
        )
        sim.run(duration=200.0)
        labels = abw_dataset.class_matrix(tau)
        auc = auc_score(labels, sim.coordinate_table().estimate_matrix())
        assert auc > 0.75


class TestNoisyPipeline:
    def test_corruption_degrades_but_survives(self, rtt_dataset):
        tau = rtt_dataset.median()
        labels = rtt_dataset.class_matrix(tau)
        corrupted = GoodToBad(0.10).apply(labels, rng=0)
        config = DMFSGDConfig(neighbors=8)

        clean_engine = DMFSGDEngine(
            rtt_dataset.n, matrix_label_fn(labels), config, metric="rtt", rng=0
        )
        noisy_engine = DMFSGDEngine(
            rtt_dataset.n, matrix_label_fn(corrupted), config, metric="rtt", rng=0
        )
        clean_auc = auc_score(labels, clean_engine.run(250).estimate_matrix())
        noisy_auc = auc_score(labels, noisy_engine.run(250).estimate_matrix())
        assert noisy_auc <= clean_auc + 0.02
        assert noisy_auc > 0.75


class TestDynamicPipeline:
    def test_harvard_trace_end_to_end(self, harvard_bundle):
        from repro.measurement.classifier import ThresholdClassifier

        dataset = harvard_bundle.dataset
        tau = dataset.median()
        labels = dataset.class_matrix(tau)
        engine = DMFSGDEngine(
            dataset.n,
            matrix_label_fn(labels),
            DMFSGDConfig(neighbors=8),
            metric="rtt",
            rng=0,
        )
        result = engine.run_trace(
            harvard_bundle.trace,
            ThresholdClassifier("rtt", tau),
            batch_size=128,
        )
        assert auc_score(labels, result.estimate_matrix()) > 0.8


class TestEngineProtocolParity:
    def test_same_accuracy_regime(self, rtt_labels):
        """Design decision 1: both training paths land in the same regime."""
        n = rtt_labels.shape[0]
        config = DMFSGDConfig(neighbors=8)

        engine = DMFSGDEngine(
            n, matrix_label_fn(rtt_labels), config, metric="rtt", rng=1
        )
        engine_auc = auc_score(rtt_labels, engine.run(200).estimate_matrix())

        from repro.core.dmfsgd import oracle_from_matrix

        sim = DMFSGDSimulation(
            n, oracle_from_matrix(rtt_labels), config, metric="rtt", rng=1
        )
        sim.run(duration=200.0)
        protocol_auc = auc_score(
            rtt_labels, sim.coordinate_table().estimate_matrix()
        )
        assert abs(engine_auc - protocol_auc) < 0.1
