"""``repro top`` — a live terminal view over any running gateway.

Polls ``GET /stats`` (which PR 10 made a thin view over the metrics
registry, so everything here is the same data ``/metrics`` exports)
and redraws a compact operator screen: ingest counters and rates,
per-shard queue/version rows, latency-histogram quantiles from the
``obs`` section, and the slowest recent spans when tracing is armed.

Stdlib only, like the rest of the serving stack: ``urllib`` for the
poll, ANSI clear codes for the redraw.  ``--once`` renders a single
frame without clearing — that is also what the tests drive.
"""

from __future__ import annotations

import json
import time
import urllib.request
from typing import Dict, List, Optional

from repro.utils.tables import format_table

__all__ = ["fetch_stats", "render_frame", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def fetch_stats(url: str, timeout: float = 5.0) -> dict:
    """One ``GET /stats`` poll against ``url`` (the gateway base URL)."""
    with urllib.request.urlopen(
        url.rstrip("/") + "/stats", timeout=timeout
    ) as response:
        return json.loads(response.read().decode("utf-8"))


def _fmt(value, digits: int = 0) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:,.{digits or 3}f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _ingest_lines(stats: dict, previous: Optional[dict], dt: float) -> List[str]:
    ingest = stats.get("ingest")
    if not ingest:
        return ["(read-only gateway: no ingest section)"]
    applied = ingest.get("applied", 0)
    rate = ""
    if previous is not None and dt > 0:
        prev_applied = previous.get("ingest", {}).get("applied", 0)
        rate = f"   apply rate {max(0, applied - prev_applied) / dt:,.0f}/s"
    lines = [
        "ingest   received {received}   applied {applied}   buffered "
        "{buffered}   rejected {rejected}   dropped {dropped}{rate}".format(
            received=_fmt(ingest.get("received", 0)),
            applied=_fmt(applied),
            buffered=_fmt(ingest.get("buffered", 0)),
            rejected=_fmt(ingest.get("rejected_guard", 0)),
            dropped=_fmt(ingest.get("dropped", 0)),
            rate=rate,
        )
    ]
    if "shard_count" in ingest:
        lines.append(
            f"topology shard_count {ingest['shard_count']}   "
            f"publishes {_fmt(ingest.get('publishes', 0))}   "
            f"since_publish {_fmt(ingest.get('since_publish', 0))}"
        )
    return lines


def _shard_table(stats: dict) -> Optional[str]:
    rows = stats.get("shards")
    if not rows:
        return None
    headers = ["shard", "queued", "buffered", "version", "age s", "applied"]
    has_group = any("group" in row for row in rows)
    if has_group:
        headers.insert(0, "group")
    table_rows = []
    for row in rows:
        cells = [
            str(row.get("shard", "?")),
            _fmt(row.get("queue_samples", 0)),
            _fmt(row.get("buffered", 0)),
            _fmt(row.get("version", 0)),
            _fmt(float(row.get("snapshot_age_s", 0.0)), 2),
            _fmt(row.get("applied", 0)),
        ]
        if has_group:
            cells.insert(0, str(row.get("group", "-")))
        table_rows.append(cells)
    return format_table(table_rows, headers=headers)


def _latency_table(stats: dict) -> Optional[str]:
    obs: Dict[str, dict] = stats.get("obs") or {}
    rows = []
    for name in sorted(obs):
        entry = obs[name]
        if not entry.get("count"):
            continue
        rows.append(
            [
                name,
                _fmt(entry["count"]),
                f"{entry.get('p50', 0) * 1e3:.3f}",
                f"{entry.get('p95', 0) * 1e3:.3f}",
                f"{entry.get('p99', 0) * 1e3:.3f}",
                f"{entry.get('p999', 0) * 1e3:.3f}",
            ]
        )
    if not rows:
        return None
    return format_table(
        rows,
        headers=["latency", "count", "p50 ms", "p95 ms", "p99 ms", "p999 ms"],
    )


def _trace_table(stats: dict) -> Optional[str]:
    traces = stats.get("traces")
    if not traces:
        return None
    spans = traces.get("spans", [])
    rows = []
    for span in spans[:8]:
        rows.append(
            [
                str(span.get("span_id", "?")),
                str(span.get("route", "")),
                _fmt(span.get("samples", 0)),
                f"{span.get('duration_s', 0) * 1e3:.3f}",
                "yes" if span.get("complete") else "no",
            ]
        )
    if not rows:
        return None
    table = format_table(
        rows,
        headers=["span", "route", "samples", "total ms", "complete"],
    )
    return (
        f"traces  started {traces.get('started', 0)}  completed "
        f"{traces.get('completed', 0)}  slow {len(traces.get('slow', []))}"
        f"\n{table}"
    )


def render_frame(
    stats: dict, previous: Optional[dict] = None, dt: float = 0.0
) -> str:
    """One full screenful from a ``/stats`` payload."""
    service = stats.get("service", {})
    sections: List[str] = [
        "repro top — {url}version {version}   cache hits {hits}".format(
            url="",
            version=_fmt(service.get("version", stats.get("version", "?"))),
            hits=_fmt(service.get("cache_hits", 0)),
        )
    ]
    sections.extend(_ingest_lines(stats, previous, dt))
    for section in (
        _shard_table(stats),
        _latency_table(stats),
        _trace_table(stats),
    ):
        if section:
            sections.append(section)
    overload = stats.get("overload")
    if overload:
        sections.append(
            f"overload deadline_exceeded {overload.get('deadline_exceeded', 0)}"
            + (
                f"   shed ingest/batch "
                f"{overload['shedder'].get('shed_ingest', 0)}/"
                f"{overload['shedder'].get('shed_batch', 0)}"
                if overload.get("shedder")
                else ""
            )
        )
    return "\n\n".join(sections)


def run_top(
    url: str,
    *,
    interval: float = 2.0,
    once: bool = False,
    frames: Optional[int] = None,
) -> int:
    """Poll-and-redraw loop; returns a process exit code."""
    previous: Optional[dict] = None
    prev_at = time.monotonic()
    shown = 0
    while True:
        try:
            stats = fetch_stats(url)
        except OSError as exc:
            print(f"repro top: cannot reach {url}: {exc}")
            return 1
        now = time.monotonic()
        frame = render_frame(stats, previous, now - prev_at)
        if once:
            print(frame)
            return 0
        print(f"{_CLEAR}{frame}", flush=True)
        previous, prev_at = stats, now
        shown += 1
        if frames is not None and shown >= frames:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
