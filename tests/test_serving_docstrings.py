"""Documentation smoke test for the public serving API.

The serving layer is the repo's concurrency-heavy surface: every public
class documents its thread-safety and locking expectations, and every
public method says what it does.  This test mechanically enforces the
floor — module docstrings everywhere, class docstrings on everything
exported, method docstrings on every public method those classes
define — so an undocumented addition fails CI instead of rotting.
"""

import importlib
import inspect

import pytest

import repro.serving as serving

SERVING_MODULES = [
    "repro.serving",
    "repro.serving.app",
    "repro.serving.client",
    "repro.serving.gateway",
    "repro.serving.guard",
    "repro.serving.ingest",
    "repro.serving.membership",
    "repro.serving.procs",
    "repro.serving.service",
    "repro.serving.shard",
    "repro.serving.store",
]

#: dunder members a class may define without documenting (their
#: contract is the language's, not ours)
EXEMPT = {
    "__init__",  # documented via the class docstring's Parameters
    "__repr__",
    "__enter__",
    "__exit__",
    "__iter__",
    "__setattr__",
}


def _has_doc(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


@pytest.mark.parametrize("module_name", SERVING_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert _has_doc(module), f"{module_name} is missing a module docstring"


def _public_members():
    for name in serving.__all__:
        yield name, getattr(serving, name)


@pytest.mark.parametrize("name,member", list(_public_members()))
def test_public_member_has_docstring(name, member):
    assert _has_doc(member), f"repro.serving.{name} is missing a docstring"


@pytest.mark.parametrize(
    "name,member",
    [(n, m) for n, m in _public_members() if inspect.isclass(m)],
)
def test_public_methods_have_docstrings(name, member):
    missing = []
    for attr, value in vars(member).items():
        if attr.startswith("_") and attr not in EXEMPT:
            continue
        if attr in EXEMPT:
            continue
        if isinstance(value, (staticmethod, classmethod)):
            value = value.__func__
        if isinstance(value, property):
            if not _has_doc(value.fget):
                missing.append(f"{name}.{attr} (property)")
            continue
        if inspect.isfunction(value) and not _has_doc(value):
            missing.append(f"{name}.{attr}")
    assert not missing, f"undocumented public methods: {missing}"


def test_thread_safety_documented_on_concurrent_classes():
    """The classes shared between threads must say how they lock."""
    concurrent = [
        serving.CoordinateStore,
        serving.ShardedCoordinateStore,
        serving.ShardedIngest,
        serving.IngestPipeline,
        serving.PredictionService,
        serving.RequestCoalescer,
        serving.MembershipManager,
        serving.AdmissionGuard,
        serving.OnlineEvaluator,
        serving.BackgroundCheckpointer,
    ]
    words = ("thread", "lock", "rcu", "atomic", "concurren")
    undocumented = []
    for cls in concurrent:
        blob = " ".join(
            filter(
                None,
                [inspect.getdoc(cls), inspect.getdoc(inspect.getmodule(cls))],
            )
        ).lower()
        if not any(word in blob for word in words):
            undocumented.append(cls.__name__)
    assert not undocumented, (
        f"no thread-safety/locking notes found for: {undocumented}"
    )
