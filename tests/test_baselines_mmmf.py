"""Tests for the centralized MMMF-style baseline."""

import numpy as np
import pytest

from repro.baselines.mmmf import MMMFBaseline
from repro.evaluation import auc_score


class TestFit:
    def test_fits_observed_labels(self, rtt_labels):
        baseline = MMMFBaseline(rank=8, rng=0).fit(rtt_labels)
        auc = auc_score(rtt_labels, baseline.decision_matrix())
        assert auc > 0.9

    def test_generalizes_to_hidden(self, rtt_labels, rng):
        observed = rtt_labels.copy()
        hide = rng.random(observed.shape) < 0.5
        observed[hide] = np.nan
        baseline = MMMFBaseline(rank=8, rng=0).fit(observed)
        hidden_mask = hide & np.isfinite(rtt_labels)
        truth = np.where(hidden_mask, rtt_labels, np.nan)
        auc = auc_score(truth, baseline.decision_matrix())
        assert auc > 0.8

    def test_predicted_classes_binary(self, rtt_labels):
        baseline = MMMFBaseline(rank=4, max_iter=50, rng=0).fit(rtt_labels)
        classes = baseline.predicted_classes()
        observed = classes[np.isfinite(classes)]
        assert set(np.unique(observed)) <= {1.0, -1.0}

    def test_decision_diagonal_nan(self, rtt_labels):
        baseline = MMMFBaseline(rank=4, max_iter=20, rng=0).fit(rtt_labels)
        assert np.isnan(np.diag(baseline.decision_matrix())).all()

    def test_unfit_raises(self):
        with pytest.raises(RuntimeError):
            MMMFBaseline().decision_matrix()

    def test_fit_returns_self(self, rtt_labels):
        baseline = MMMFBaseline(rank=4, max_iter=10, rng=0)
        assert baseline.fit(rtt_labels) is baseline
