"""Tests for repro.core.losses: values, gradients, registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.losses import (
    HingeLoss,
    L2Loss,
    LogisticLoss,
    available_losses,
    get_loss,
)

FINITE = st.floats(-20.0, 20.0, allow_nan=False)
LABEL = st.sampled_from([1.0, -1.0])


def numeric_dvalue(loss, x, xhat, eps=1e-6):
    return (loss.value(x, xhat + eps) - loss.value(x, xhat - eps)) / (2 * eps)


class TestRegistry:
    def test_available(self):
        assert available_losses() == ["hinge", "l2", "logistic"]

    @pytest.mark.parametrize("name", ["l2", "hinge", "logistic"])
    def test_get_by_name(self, name):
        assert get_loss(name).name == name

    @pytest.mark.parametrize(
        "alias,canonical", [("square", "l2"), ("mse", "l2"), ("log", "logistic")]
    )
    def test_aliases(self, alias, canonical):
        assert get_loss(alias).name == canonical

    def test_case_insensitive(self):
        assert get_loss("Logistic").name == "logistic"

    def test_instance_passthrough(self):
        loss = HingeLoss()
        assert get_loss(loss) is loss

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown loss"):
            get_loss("nope")

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            get_loss(3.14)

    def test_classification_flags(self):
        assert LogisticLoss().is_classification
        assert HingeLoss().is_classification
        assert not L2Loss().is_classification


class TestL2Loss:
    def test_zero_at_match(self):
        assert L2Loss().value(3.0, 3.0) == 0.0

    def test_quadratic(self):
        assert L2Loss().value(1.0, 4.0) == 9.0

    def test_derivative_drops_factor_two(self):
        # paper convention: dl/dxhat = -(x - xhat), not -2(x - xhat)
        assert L2Loss().dvalue_dxhat(1.0, 4.0) == 3.0

    def test_grad_u_matches_eq18(self):
        u = np.array([1.0, 2.0])
        v = np.array([0.5, -1.0])
        x = 2.0
        expected = -(x - u @ v) * v
        np.testing.assert_allclose(L2Loss().grad_u(x, u, v), expected)

    def test_grad_v_matches_eq19(self):
        u = np.array([1.0, 2.0])
        v = np.array([0.5, -1.0])
        x = 2.0
        expected = -(x - u @ v) * u
        np.testing.assert_allclose(L2Loss().grad_v(x, u, v), expected)


class TestHingeLoss:
    def test_zero_when_margin_met(self):
        assert HingeLoss().value(1.0, 1.5) == 0.0
        assert HingeLoss().value(-1.0, -1.0) == 0.0

    def test_linear_when_violated(self):
        assert HingeLoss().value(1.0, 0.0) == 1.0
        assert HingeLoss().value(1.0, -1.0) == 2.0

    def test_subgradient_zero_when_correct(self):
        # margin >= 1 -> zero gradient (eqs. 14-15 precondition)
        assert HingeLoss().dvalue_dxhat(1.0, 2.0) == 0.0
        assert HingeLoss().dvalue_dxhat(-1.0, -2.0) == 0.0

    def test_subgradient_minus_x_when_violated(self):
        assert HingeLoss().dvalue_dxhat(1.0, 0.0) == -1.0
        assert HingeLoss().dvalue_dxhat(-1.0, 0.0) == 1.0

    def test_grad_matches_eq14(self):
        u = np.array([0.1, 0.2])
        v = np.array([0.3, 0.1])
        # margin violated: gradient is -x*v
        np.testing.assert_allclose(HingeLoss().grad_u(1.0, u, v), -v)

    @given(x=LABEL, xhat=FINITE)
    @settings(max_examples=50)
    def test_nonnegative(self, x, xhat):
        assert HingeLoss().value(x, xhat) >= 0.0


class TestLogisticLoss:
    def test_value_at_zero_margin(self):
        np.testing.assert_allclose(LogisticLoss().value(1.0, 0.0), np.log(2.0))

    def test_value_decreases_with_margin(self):
        loss = LogisticLoss()
        assert loss.value(1.0, 2.0) < loss.value(1.0, 1.0) < loss.value(1.0, 0.0)

    def test_stable_for_large_negative_margin(self):
        value = LogisticLoss().value(1.0, -1000.0)
        assert np.isfinite(value) and value == pytest.approx(1000.0)

    def test_stable_for_large_positive_margin(self):
        value = LogisticLoss().value(1.0, 1000.0)
        assert value == pytest.approx(0.0, abs=1e-12)

    def test_gradient_matches_eq16(self):
        u = np.array([0.5, 0.5])
        v = np.array([1.0, -2.0])
        x = -1.0
        xhat = u @ v
        expected = -x * v / (1.0 + np.exp(x * xhat))
        np.testing.assert_allclose(LogisticLoss().grad_u(x, u, v), expected)

    @given(x=LABEL, xhat=FINITE)
    @settings(max_examples=50)
    def test_derivative_matches_numeric(self, x, xhat):
        loss = LogisticLoss()
        analytic = loss.dvalue_dxhat(x, xhat)
        numeric = numeric_dvalue(loss, x, xhat)
        assert analytic == pytest.approx(numeric, abs=1e-4)

    @given(x=LABEL, xhat=FINITE)
    @settings(max_examples=50)
    def test_gradient_sign_pushes_margin_up(self, x, xhat):
        # moving against the gradient must not decrease the margin
        d = LogisticLoss().dvalue_dxhat(x, xhat)
        assert x * (-d) >= 0.0


class TestVectorization:
    @pytest.mark.parametrize("loss_name", ["l2", "hinge", "logistic"])
    def test_batched_grad_matches_single(self, loss_name, rng):
        loss = get_loss(loss_name)
        U = rng.normal(size=(6, 4))
        V = rng.normal(size=(6, 4))
        x = rng.choice([1.0, -1.0], size=6)
        batched = loss.grad_u(x, U, V)
        for i in range(6):
            single = loss.grad_u(x[i], U[i], V[i])
            np.testing.assert_allclose(batched[i], single)

    @pytest.mark.parametrize("loss_name", ["l2", "hinge", "logistic"])
    def test_value_broadcasts(self, loss_name):
        loss = get_loss(loss_name)
        values = loss.value(np.array([1.0, -1.0]), np.array([0.5, 0.5]))
        assert values.shape == (2,)

    def test_total_skips_nan(self):
        loss = get_loss("logistic")
        x = np.array([1.0, np.nan, -1.0])
        xhat = np.array([1.0, 5.0, -1.0])
        full = loss.total(x, xhat)
        assert full == pytest.approx(2 * float(loss.value(1.0, 1.0)))

    def test_total_empty_is_zero(self):
        assert get_loss("l2").total(np.array([np.nan]), np.array([1.0])) == 0.0
