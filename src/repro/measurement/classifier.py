"""Threshold classification of performance quantities (Section 3.2).

A path is "good" (+1) when its metric quantity is on the good side of the
classification threshold ``tau`` (below for RTT, above for ABW) and "bad"
(-1) otherwise.  ``tau`` is application-defined in practice (the paper
quotes Google TV's 2.5 Mbps / 10 Mbps); experiments typically set it to a
percentile of the dataset — Table 1 of the paper reports those
percentile thresholds and the class balance they induce.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.measurement.metrics import Metric
from repro.utils.validation import check_probability

__all__ = [
    "threshold_classify",
    "threshold_for_good_fraction",
    "ThresholdClassifier",
]


def threshold_classify(
    quantities: np.ndarray,
    tau: float,
    metric: Union[str, Metric],
) -> np.ndarray:
    """Map quantities to {+1, -1} class labels under threshold ``tau``.

    NaN quantities (missing measurements) map to NaN labels, preserving
    the observation mask of partially observed matrices.

    Parameters
    ----------
    quantities:
        Scalar or array of metric quantities.
    tau:
        Classification threshold in the metric's unit.
    metric:
        ``"rtt"``/``"abw"`` or a :class:`Metric`; decides which side of
        ``tau`` is good.
    """
    metric = Metric.parse(metric)
    quantities = np.asarray(quantities, dtype=float)
    labels = np.where(metric.is_good(quantities, tau), 1.0, -1.0)
    labels = np.where(np.isfinite(quantities), labels, np.nan)
    if labels.ndim == 0:
        return labels[()]
    return labels


def threshold_for_good_fraction(
    quantities: np.ndarray,
    good_fraction: float,
    metric: Union[str, Metric],
) -> float:
    """The ``tau`` that labels a target fraction of paths "good".

    This inverts Table 1 of the paper: given e.g. ``good_fraction=0.25``
    it returns the threshold under which 25% of the observed paths are
    good.  For RTT that is the 25th percentile of the quantities; for ABW
    (higher is better) it is the 75th.
    """
    metric = Metric.parse(metric)
    check_probability(good_fraction, "good_fraction")
    values = np.asarray(quantities, dtype=float)
    values = values[np.isfinite(values)]
    if values.size == 0:
        raise ValueError("no finite quantities to compute a threshold from")
    if metric.higher_is_better:
        percentile = 100.0 * (1.0 - good_fraction)
    else:
        percentile = 100.0 * good_fraction
    return float(np.percentile(values, percentile))


class ThresholdClassifier:
    """Stateful convenience wrapper around :func:`threshold_classify`.

    Bundles the metric and the threshold so measurement tools and
    experiments can pass a single object around.
    """

    def __init__(self, metric: Union[str, Metric], tau: float) -> None:
        self.metric = Metric.parse(metric)
        self.tau = float(tau)
        if not np.isfinite(self.tau):
            raise ValueError(f"tau must be finite, got {tau}")

    def __call__(self, quantities: np.ndarray) -> np.ndarray:
        """Classify quantities into {+1, -1} (NaN passes through)."""
        return threshold_classify(quantities, self.tau, self.metric)

    def good_fraction(self, quantities: np.ndarray) -> float:
        """Fraction of observed paths labeled good under this threshold."""
        values = np.asarray(quantities, dtype=float)
        mask = np.isfinite(values)
        if not mask.any():
            raise ValueError("no finite quantities")
        return float(np.mean(self.metric.is_good(values[mask], self.tau)))

    @classmethod
    def at_percentile(
        cls,
        quantities: np.ndarray,
        good_fraction: float,
        metric: Union[str, Metric],
    ) -> "ThresholdClassifier":
        """Build a classifier whose ``tau`` yields the given good fraction."""
        tau = threshold_for_good_fraction(quantities, good_fraction, metric)
        return cls(metric, tau)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThresholdClassifier({self.metric.value!r}, tau={self.tau:g})"
