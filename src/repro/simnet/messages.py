"""Typed protocol messages.

Messages carry a source, a destination, a kind tag and an arbitrary
payload dict.  ``size_bytes`` estimates the wire size so experiments can
report protocol overhead (the paper's measurement-cost argument): a
coordinate vector of rank ``r`` costs ``8 r`` bytes, a class label 1
byte, plus a nominal header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

__all__ = ["Message", "HEADER_BYTES"]

#: Nominal UDP/IP header cost per message.
HEADER_BYTES = 28


@dataclass
class Message:
    """A protocol message in flight.

    Attributes
    ----------
    src, dst:
        Node ids.
    kind:
        Protocol-defined tag (e.g. ``"rtt_probe"``, ``"abw_reply"``).
    payload:
        Arbitrary keyword data; numpy arrays are accounted for by their
        ``nbytes`` in :meth:`size_bytes`.
    sent_at:
        Virtual send time, stamped by the simulator.
    """

    src: int
    dst: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    sent_at: float = 0.0

    def size_bytes(self) -> int:
        """Estimated wire size of the message."""
        size = HEADER_BYTES + len(self.kind)
        for value in self.payload.values():
            if isinstance(value, np.ndarray):
                size += value.nbytes
            elif isinstance(value, (float, int, np.floating, np.integer)):
                size += 8
            elif isinstance(value, str):
                size += len(value)
            elif value is None:
                pass
            else:  # containers: rough per-item accounting
                try:
                    size += 8 * len(value)
                except TypeError:
                    size += 8
        return size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Message({self.kind} {self.src}->{self.dst})"
