"""Performance metric semantics (paper Section 3.1).

The paper studies two metrics whose *measurement methodology* differs in
ways the decentralized algorithms must respect:

* **RTT** — symmetric (``x_ij ~= x_ji``), cheap, probed *and inferred* by
  the sender (ping); lower is better.
* **ABW** — asymmetric, expensive, probed by the sender but *inferred at
  the target* (self-induced congestion); higher is better.

:class:`Metric` encodes those semantics so the rest of the library never
hard-codes per-metric conditionals beyond this enum.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["Metric"]


class Metric(enum.Enum):
    """End-to-end path performance metric."""

    RTT = "rtt"
    ABW = "abw"

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------

    @property
    def symmetric(self) -> bool:
        """Whether ``x_ij`` can be treated as equal to ``x_ji``."""
        return self is Metric.RTT

    @property
    def higher_is_better(self) -> bool:
        """Direction of "good": False for RTT (delay), True for ABW."""
        return self is Metric.ABW

    @property
    def inferred_at_target(self) -> bool:
        """Where the measurement outcome materializes.

        RTT is inferred by the sender (it times the echo); ABW is
        inferred at the target (it observes whether the probe train
        suffered congestion) and must be shipped back — this drives the
        difference between Algorithms 1 and 2.
        """
        return self is Metric.ABW

    @property
    def unit(self) -> str:
        """Human-readable quantity unit."""
        return "ms" if self is Metric.RTT else "Mbps"

    # ------------------------------------------------------------------
    # helpers used by classification and peer selection
    # ------------------------------------------------------------------

    def is_good(self, quantity: np.ndarray, tau: float) -> np.ndarray:
        """Boolean "good" verdict(s) for quantities under threshold ``tau``.

        Good means RTT strictly below ``tau`` or ABW strictly above
        ``tau``; values exactly at the threshold count as "bad", which
        only matters for degenerate discrete inputs.
        """
        quantity = np.asarray(quantity, dtype=float)
        if self.higher_is_better:
            return quantity > tau
        return quantity < tau

    def best(self, quantities: np.ndarray) -> int:
        """Index of the best-performing entry (ignoring NaN)."""
        quantities = np.asarray(quantities, dtype=float)
        if not np.isfinite(quantities).any():
            raise ValueError("no finite quantities to choose from")
        if self.higher_is_better:
            return int(np.nanargmax(quantities))
        return int(np.nanargmin(quantities))

    def stretch(self, selected: float, best: float) -> float:
        """Peer-selection stretch ``x_selected / x_best`` (Section 6.4).

        By construction the stretch is >= 1 for RTT and <= 1 for ABW;
        closer to 1 is better for both.
        """
        if best == 0:
            raise ValueError("best quantity must be nonzero to compute stretch")
        return float(selected) / float(best)

    @classmethod
    def parse(cls, value: "str | Metric") -> "Metric":
        """Coerce a string (case-insensitive) or Metric into a Metric."""
        if isinstance(value, Metric):
            return value
        try:
            return cls(value.strip().lower())
        except (AttributeError, ValueError):
            raise ValueError(
                f"unknown metric {value!r}; expected 'rtt' or 'abw'"
            ) from None
