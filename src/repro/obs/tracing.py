"""Lightweight request tracing across the gateway → worker pipeline.

A *span* follows one ingest request through five stages::

    accept ──► admit ──► queue ──► apply ──► publish
    (gateway   (routed +  (worker   (SGD      (snapshot
     parsed)   validated)  dequeued) applied)  published)

Span ids are minted at the gateway, ride the ingest queues inside the
chunk metadata tuple, and — in process mode — cross the shared-memory
boundary: workers record their stage stamps into a small trace ring in
their seqlock'd factor segment, and the gateway harvests those entries
back into the tracer at scrape time.  All stamps are
``time.monotonic()`` microseconds, which on Linux is the system-wide
``CLOCK_MONOTONIC`` — comparable across processes on one host.

Tracing follows the exact arming pattern of
:mod:`repro.serving.faults`: the module-global :data:`tracer` is
``None`` until :func:`install` arms it, and every hook in the serving
stack is a single ``tracer is None`` branch — the off-by-default cost
the observability bench prices.

Spans that exceed ``slow_threshold_s`` end-to-end are copied into a
separate slow-capture buffer so one burst of fast traffic cannot evict
the request an operator actually needs to see.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Dict, List, Optional, Tuple

__all__ = [
    "STAGES",
    "Span",
    "Tracer",
    "clear_context",
    "current_context",
    "install",
    "now_us",
    "set_context",
    "tracer",
    "uninstall",
]

#: the five stage stamps, in pipeline order
STAGES = ("accept_us", "admit_us", "queue_us", "apply_us", "publish_us")

#: the installed tracer, or ``None`` when tracing is off (the default)
tracer: Optional["Tracer"] = None

_install_lock = threading.Lock()

_context = threading.local()


def now_us() -> int:
    """Monotonic microseconds, comparable across processes on one host."""
    return int(time.monotonic() * 1e6)


def set_context(span_id: int, accept_us: int) -> None:
    """Bind the current thread's in-flight span (gateway request scope)."""
    _context.value = (span_id, accept_us)


def clear_context() -> None:
    _context.value = None


def current_context() -> Optional[Tuple[int, int]]:
    return getattr(_context, "value", None)


class Span:
    """One request's stage stamps (microseconds) plus its sample count."""

    __slots__ = ("span_id", "route", "samples") + STAGES

    def __init__(self, span_id: int, route: str = "", samples: int = 0):
        self.span_id = span_id
        self.route = route
        self.samples = samples
        self.accept_us = 0
        self.admit_us = 0
        self.queue_us = 0
        self.apply_us = 0
        self.publish_us = 0

    @property
    def last_us(self) -> int:
        return max(
            self.accept_us,
            self.admit_us,
            self.queue_us,
            self.apply_us,
            self.publish_us,
        )

    @property
    def complete(self) -> bool:
        return self.publish_us > 0

    @property
    def duration_s(self) -> float:
        start = self.accept_us or self.admit_us
        if not start:
            return 0.0
        return max(0, self.last_us - start) / 1e6

    def stages_present(self) -> int:
        return sum(1 for stage in STAGES if getattr(self, stage) > 0)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "span_id": self.span_id,
            "route": self.route,
            "samples": self.samples,
            "duration_s": round(self.duration_s, 6),
            "complete": self.complete,
        }
        for stage in STAGES:
            payload[stage] = getattr(self, stage)
        return payload


class Tracer:
    """Bounded span ring + slow-capture buffer.

    ``capacity`` bounds the recent-span ring (oldest evicted);
    ``slow_capacity`` bounds the separate buffer keeping any span whose
    end-to-end duration exceeded ``slow_threshold_s`` — typically a
    fraction of the gateway's request deadline.
    """

    def __init__(
        self,
        capacity: int = 512,
        slow_threshold_s: float = 0.1,
        slow_capacity: int = 64,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.slow_threshold_s = float(slow_threshold_s)
        self._lock = threading.Lock()
        self._spans: "OrderedDict[int, Span]" = OrderedDict()
        self._slow: deque = deque(maxlen=int(slow_capacity))
        self._next_id = 1
        self.started = 0
        self.completed = 0
        self.harvested = 0

    # -- gateway side --------------------------------------------------

    def begin(
        self,
        route: str = "",
        samples: int = 0,
        accept_us: Optional[int] = None,
    ) -> int:
        """Mint a span id and record its accept stamp."""
        stamp = now_us() if accept_us is None else int(accept_us)
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(span_id, route=route, samples=samples)
            span.accept_us = stamp
            self._spans[span_id] = span
            while len(self._spans) > self.capacity:
                self._spans.popitem(last=False)
            self.started += 1
        return span_id

    # -- pipeline side -------------------------------------------------

    def stamp(self, span_id: int, *, samples: Optional[int] = None, **stages) -> None:
        """Record stage stamps (microseconds) onto an in-flight span."""
        with self._lock:
            span = self._spans.get(span_id)
            if span is None:
                return
            was_complete = span.complete
            for stage, value in stages.items():
                if stage not in STAGES:
                    raise ValueError(f"unknown trace stage {stage!r}")
                if value:
                    setattr(span, stage, int(value))
            if samples:
                span.samples += int(samples)
            if span.complete and not was_complete:
                self._note_completed(span)

    def merge(
        self,
        span_id: int,
        *,
        accept_us: int = 0,
        admit_us: int = 0,
        queue_us: int = 0,
        apply_us: int = 0,
        publish_us: int = 0,
        samples: int = 0,
    ) -> None:
        """Fold a harvested shared-memory ring entry into the tracer.

        Harvests re-read the whole ring every scrape, so an entry whose
        span already completed is a duplicate and is skipped.
        """
        with self._lock:
            span = self._spans.get(span_id)
            if span is None:
                span = Span(span_id, route="/ingest")
                self._spans[span_id] = span
                while len(self._spans) > self.capacity:
                    self._spans.popitem(last=False)
            if span.complete:
                return
            span.accept_us = span.accept_us or int(accept_us)
            span.admit_us = span.admit_us or int(admit_us)
            span.queue_us = span.queue_us or int(queue_us)
            span.apply_us = span.apply_us or int(apply_us)
            span.publish_us = span.publish_us or int(publish_us)
            if samples:
                span.samples = max(span.samples, int(samples))
            self.harvested += 1
            if span.complete:
                self._note_completed(span)

    def _note_completed(self, span: Span) -> None:
        self.completed += 1
        if span.duration_s >= self.slow_threshold_s:
            self._slow.append(span.as_dict())

    # -- readout -------------------------------------------------------

    def get(self, span_id: int) -> Optional[Span]:
        with self._lock:
            return self._spans.get(span_id)

    def snapshot(self, n: int = 10) -> Dict[str, object]:
        """The ``traces`` section of ``/stats``: N slowest recent spans."""
        with self._lock:
            spans = list(self._spans.values())
            slow = list(self._slow)
            started, completed = self.started, self.completed
            harvested = self.harvested
        spans.sort(key=lambda s: s.duration_s, reverse=True)
        return {
            "enabled": True,
            "started": started,
            "completed": completed,
            "harvested": harvested,
            "slow_threshold_s": self.slow_threshold_s,
            "spans": [span.as_dict() for span in spans[:n]],
            "slow": slow,
        }


def install(
    instance: Optional[Tracer] = None, **kwargs
) -> Tracer:
    """Arm the module-global tracer (mirrors ``faults.install``)."""
    global tracer
    with _install_lock:
        if tracer is not None:
            raise RuntimeError(
                "a tracer is already installed; uninstall() it first"
            )
        tracer = instance if instance is not None else Tracer(**kwargs)
        return tracer


def uninstall() -> None:
    """Disarm tracing; in-flight spans are dropped with it."""
    global tracer
    with _install_lock:
        tracer = None
