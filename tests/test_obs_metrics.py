"""Unit tests for the metrics core (``repro.obs.metrics``).

Format conformance of the Prometheus text exposition — label
escaping, cumulative bucket monotonicity, TYPE/HELP lines — plus the
registry contract (get-or-create idempotence, kind/label mismatch
errors, duplicate-series merging) and quantile sanity.
"""

from __future__ import annotations

import math
import re

import pytest

from repro.obs import (
    BUCKET_BOUNDS,
    BUCKET_COUNT,
    MetricsRegistry,
    bucket_index,
    escape_label_value,
    histogram_quantile,
)

pytestmark = pytest.mark.obs_smoke


class TestLabelEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_escaping_round_trips_in_render(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "t", labels=("route",))
        counter.inc(route='we"ird\n\\path')
        page = registry.render()
        assert 't_total{route="we\\"ird\\n\\\\path"} 1' in page

    def test_plain_values_untouched(self):
        assert escape_label_value("/ingest") == "/ingest"


class TestBucketLadder:
    def test_bounds_double_from_one_microsecond(self):
        assert len(BUCKET_BOUNDS) == BUCKET_COUNT
        assert BUCKET_BOUNDS[0] == pytest.approx(1e-6)
        for lo, hi in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
            assert hi == pytest.approx(2 * lo)

    def test_bucket_index_edges(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(1e-6) == 0
        assert bucket_index(1.01e-6) == 1
        # beyond the top bound: overflow (only the +Inf bucket)
        assert bucket_index(BUCKET_BOUNDS[-1] * 2) >= BUCKET_COUNT


class TestHistogramRender:
    def test_cumulative_buckets_are_monotone_and_end_at_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "t")
        for value in (1e-6, 5e-5, 5e-5, 1e-3, 0.2, 99.0):
            hist.observe(value)
        page = registry.render()
        bucket_re = re.compile(
            r'lat_seconds_bucket\{le="([^"]+)"\} (\d+)'
        )
        counts = []
        for bound, count in bucket_re.findall(page):
            counts.append(int(count))
        assert counts, "no bucket samples rendered"
        assert counts == sorted(counts), "cumulative buckets must be monotone"
        assert 'le="+Inf"' in page
        # +Inf bucket equals _count (here: 6, one observation overflowed)
        assert counts[-1] == 6
        assert "lat_seconds_count 6" in page
        assert "lat_seconds_sum" in page

    def test_type_and_help_lines(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "things done").inc()
        registry.gauge("b", "a level").set(3)
        registry.histogram("c_seconds", "a latency").observe(0.01)
        page = registry.render()
        assert "# HELP a_total things done" in page
        assert "# TYPE a_total counter" in page
        assert "# TYPE b gauge" in page
        assert "# TYPE c_seconds histogram" in page
        assert page.endswith("\n")

    def test_escaped_help_newline(self):
        registry = MetricsRegistry()
        registry.counter("d_total", "line one\nline two").inc()
        page = registry.render()
        assert "# HELP d_total line one\\nline two" in page


class TestRegistryContract:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "t")
        b = registry.counter("x_total", "t")
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "t")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "t")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "t", labels=("route",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "t", labels=("status",))

    def test_counter_accumulates_across_threads(self):
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("y_total", "t")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert "y_total 4000" in registry.render()

    def test_duplicate_collector_series_are_merged(self):
        registry = MetricsRegistry()

        def collector():
            return [
                ("z_total", "counter", "t", [({}, 2.0)]),
                (
                    "w_seconds",
                    "histogram",
                    "t",
                    [({}, ((1,) + (0,) * (BUCKET_COUNT - 1), 1e-6, 1))],
                ),
            ]

        registry.register_collector(collector)
        registry.register_collector(collector)
        page = registry.render()
        assert "z_total 4" in page
        assert "w_seconds_count 2" in page
        # exactly one series per name: no duplicate exposition lines
        lines = [l for l in page.splitlines() if l.startswith("z_total")]
        assert len(lines) == 1


class TestQuantiles:
    def test_quantile_sanity(self):
        registry = MetricsRegistry()
        hist = registry.histogram("q_seconds", "t")
        for _ in range(99):
            hist.observe(1e-4)
        hist.observe(0.5)
        summary = registry.summary()["q_seconds"]
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(1e-4, rel=1.0)
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["p999"] >= summary["p99"]
        assert summary["p999"] <= 1.0  # interpolated within its bucket

    def test_empty_histogram_quantile_is_zero(self):
        assert histogram_quantile([0.0] * BUCKET_COUNT, 0, 0.99) == 0.0

    def test_overflow_lands_in_top_bound(self):
        counts = [0.0] * BUCKET_COUNT
        # one observation beyond every finite bucket
        value = histogram_quantile(counts, 1, 0.99)
        assert value == pytest.approx(BUCKET_BOUNDS[-1])
        assert math.isfinite(value)
