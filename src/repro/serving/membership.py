"""Elastic membership: live node join/leave for the sharded serving stack.

DMFSGD's deployment story (conf_conext_LiaoDGL11, Section 6) is a
*churning* system — nodes continuously join and leave while coordinates
stay accurate.  The offline churn study
(:func:`repro.experiments.ext_robustness.run_churn`) flaps nodes by
stopping a simulation, wiping coordinates and re-running; this module is
the online counterpart: the serving stack grows and shrinks its factor
matrices **without stopping ingest or queries**.

:class:`MembershipManager` applies membership changes as *epoch
transitions* over the sharded stack:

1. **quiesce** — :meth:`~repro.serving.shard.ShardedIngest.membership_barrier`
   takes the submission gate, drains every per-shard queue, flushes the
   pipelines' batch buffers and holds the shared engine lock, so every
   admitted measurement is applied against the old universe and no SGD
   apply can race the resize;
2. **rebuild** — the factor matrices are copied at the new size
   (joins warm-start the new row, see below; leaves tombstone the slot
   and compaction trims trailing tombstones) and handed to
   :meth:`~repro.core.engine.DMFSGDEngine.resize_model`;
3. **swap** — :meth:`~repro.serving.shard.ShardedCoordinateStore.replace_model`
   installs the whole new per-shard snapshot tuple in **one atomic
   reference store**, bumping every shard version so the global version
   stays strictly monotone (which is what invalidates the prediction
   cache).  Readers — the :class:`~repro.serving.service.PredictionService`,
   the :class:`~repro.serving.shard.RequestCoalescer`, anyone holding a
   snapshot — keep serving the *old* epoch until they pick up the new
   tuple; there is never a torn mix of differently-sized slices.

Join warm starts (the ``run_churn`` cold-rejoin lesson — a wiped node
costs accuracy until it re-converges — applied online):

* ``"neighbor_mean"`` (default) — the new node's ``(u, v)`` rows start
  at the mean of a sampled set of *active* nodes' rows, so its
  estimates are finite and centrally plausible from the first query;
* ``"random"`` — uniform in the engine's init range, the paper's cold
  start (and exactly what ``bring_up(fresh_coordinates=True)`` does in
  the offline churn experiment).

Leaves are **tombstone-then-compact**: a departed node is first marked
in the store's tombstone set — ingest stops feeding it (and, crucially,
stops *reading* its rows inside SGD updates of live probers) while its
last-known coordinates remain servable — and trailing tombstones are
then trimmed off the model, shrinking the matrices.  Interior
tombstones keep their slot (node ids are stable; no renumbering) and
are preferentially reused by the next join.  Tombstones survive
checkpoints, so a leave round-trips through save/load.

Thread-safety: all public methods are safe to call from any thread;
one internal lock serializes membership operations against each other,
and the ingest barrier serializes them against SGD applies.  Queries
never block on either.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.engine import DMFSGDEngine
from repro.serving.shard import ShardedCoordinateStore, ShardedIngest
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["MembershipManager", "WARM_STARTS"]

#: supported join warm-start strategies
WARM_STARTS = ("neighbor_mean", "random")


class MembershipManager:
    """Online join/leave over a sharded serving stack.

    Parameters
    ----------
    engine:
        The shared trainer; resized in lockstep with the store.
    store:
        The :class:`~repro.serving.shard.ShardedCoordinateStore` whose
        snapshot tuple is swapped per epoch (also the keeper of the
        tombstone set, so leaves survive checkpoints).
    ingest:
        The :class:`~repro.serving.shard.ShardedIngest` providing the
        epoch barrier (gate + drain + flush + engine lock).
    coalescer:
        Optional :class:`~repro.serving.shard.RequestCoalescer`; its
        cached model size is refreshed after each transition so
        submit-time range checks track the new universe immediately.
    warm_start:
        Default join strategy, one of :data:`WARM_STARTS`.
    warm_neighbors:
        How many active nodes the ``"neighbor_mean"`` warm start
        averages over.
    rng:
        Seed/generator for warm-start sampling and random init.

    Thread-safety: every public method may be called concurrently; an
    internal lock serializes membership transitions, and reads
    (:meth:`as_dict`, the properties) take the same lock only for the
    short counter copy.
    """

    def __init__(
        self,
        engine: DMFSGDEngine,
        store: ShardedCoordinateStore,
        ingest: ShardedIngest,
        *,
        coalescer=None,
        warm_start: str = "neighbor_mean",
        warm_neighbors: int = 10,
        rng: RngLike = None,
    ) -> None:
        if warm_start not in WARM_STARTS:
            raise ValueError(
                f"warm_start must be one of {WARM_STARTS}, got {warm_start!r}"
            )
        if warm_neighbors < 1:
            raise ValueError(
                f"warm_neighbors must be >= 1, got {warm_neighbors}"
            )
        if store.n != engine.n:
            raise ValueError(
                f"store has {store.n} nodes, engine has {engine.n}"
            )
        self.engine = engine
        self.store = store
        self.ingest = ingest
        self.coalescer = coalescer
        self.warm_start = warm_start
        self.warm_neighbors = int(warm_neighbors)
        self._rng = ensure_rng(rng)
        self._lock = threading.Lock()  # serializes membership transitions
        self._pending = 0  # ops requested but not yet completed
        self._pending_lock = threading.Lock()
        self.epoch = 1
        self.joins = 0
        self.leaves = 0
        self.compactions = 0
        self.last_transition_s: Optional[float] = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> int:
        """Current model size (tombstoned slots included)."""
        return self.store.n

    @property
    def active_nodes(self) -> int:
        """Nodes currently participating (model size minus tombstones)."""
        return self.store.n - len(self.store.tombstones)

    @property
    def pending_ops(self) -> int:
        """Membership operations requested but not yet completed."""
        with self._pending_lock:
            return self._pending

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready membership state (``GET /membership`` and the
        ``membership`` section of ``/stats``)."""
        with self._lock:
            # store reads happen under the same lock transitions hold,
            # so nodes/tombstones/epoch always describe one epoch
            tombstones = list(self.store.tombstones)
            payload: Dict[str, object] = {
                "epoch": self.epoch,
                "nodes": self.store.n,
                "active_nodes": self.store.n - len(tombstones),
                "tombstones": tombstones,
                "joins": self.joins,
                "leaves": self.leaves,
                "compactions": self.compactions,
                "last_transition_s": self.last_transition_s,
                "warm_start": self.warm_start,
            }
        payload["pending_ops"] = self.pending_ops
        return payload

    # ------------------------------------------------------------------
    # warm starts
    # ------------------------------------------------------------------

    def _warm_rows(
        self,
        U: np.ndarray,
        V: np.ndarray,
        tombstones: Tuple[int, ...],
        strategy: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(u, v)`` initialization of a joining node."""
        if strategy == "random":
            config = self.engine.config
            shape = (U.shape[1],)
            return (
                self._rng.uniform(config.init_low, config.init_high, shape),
                self._rng.uniform(config.init_low, config.init_high, shape),
            )
        active = np.setdiff1d(
            np.arange(U.shape[0]), np.asarray(tombstones, dtype=int)
        )
        if active.size == 0:  # degenerate: fall back to random init
            return self._warm_rows(U, V, tombstones, "random")
        take = min(self.warm_neighbors, active.size)
        picks = self._rng.choice(active, size=take, replace=False)
        return U[picks].mean(axis=0), V[picks].mean(axis=0)

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------

    def _swap(
        self,
        U: np.ndarray,
        V: np.ndarray,
        tombstones: List[int],
        started: float,
    ) -> None:
        """Install the new universe (engine + store + coalescer).

        Called with the manager lock held, *inside* the ingest barrier
        (engine lock held, queues drained) — see the module docstring
        for the transition protocol.
        """
        self.engine.resize_model(U, V)
        self.store.replace_model((U, V), tombstones=tombstones)
        if self.coalescer is not None:
            self.coalescer.refresh_model_size()
        self.epoch += 1
        self.last_transition_s = time.perf_counter() - started

    def _trim(
        self, U: np.ndarray, V: np.ndarray, tombstones: List[int]
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Drop trailing tombstoned slots (compaction), in place-ish.

        Never shrinks below ``max(2, shards)`` — the store needs a row
        per shard and the model needs two nodes to mean anything.
        """
        floor = max(2, self.store.shards)
        n = U.shape[0]
        trimmed = 0
        while n - 1 in tombstones and n > floor:
            tombstones.remove(n - 1)
            n -= 1
            trimmed += 1
        return U[:n], V[:n], trimmed

    def join(
        self, node: Optional[int] = None, *, warm_start: Optional[str] = None
    ) -> Dict[str, object]:
        """Add a node to the served universe (live epoch transition).

        Parameters
        ----------
        node:
            Explicit node id to (re)join.  Must be a currently
            tombstoned slot (a rejoin) or exactly the next fresh id
            (``nodes``).  When omitted, the lowest tombstoned slot is
            reused, else a fresh id is appended — so ids of live nodes
            are never renumbered.
        warm_start:
            Override the manager's default strategy for this join.

        Returns the JSON-ready outcome: the joined ``node``, the new
        ``epoch``/``nodes``/``active_nodes`` and the transition time.
        """
        strategy = warm_start if warm_start is not None else self.warm_start
        if strategy not in WARM_STARTS:
            raise ValueError(
                f"warm_start must be one of {WARM_STARTS}, got {strategy!r}"
            )
        with self._pending_lock:
            self._pending += 1
        try:
            with self._lock:
                started = time.perf_counter()
                with self.ingest.membership_barrier():
                    tombstones = list(self.store.tombstones)
                    n = self.engine.n
                    if node is None:
                        node = tombstones[0] if tombstones else n
                    node = int(node)
                    if node < 0 or node > n:
                        raise ValueError(
                            f"node must be in [0, {n}] (a tombstoned slot "
                            f"or the next fresh id), got {node}"
                        )
                    if node < n and node not in tombstones:
                        raise ValueError(
                            f"node {node} is already an active member"
                        )
                    old = self.engine.coordinates
                    # warm rows are drawn while the joiner still counts
                    # as departed: a rejoin must not average its own
                    # stale pre-departure coordinates back in
                    u_row, v_row = self._warm_rows(
                        old.U, old.V, tuple(tombstones), strategy
                    )
                    if node == n:
                        U = np.vstack([old.U, np.empty((1, old.rank))])
                        V = np.vstack([old.V, np.empty((1, old.rank))])
                    else:
                        U, V = old.U.copy(), old.V.copy()
                        tombstones.remove(node)
                    U[node], V[node] = u_row, v_row
                    self._swap(U, V, tombstones, started)
                self.joins += 1
                return self._outcome(node=node)
        finally:
            with self._pending_lock:
                self._pending -= 1

    def leave(
        self, node: int, *, compact: bool = True
    ) -> Dict[str, object]:
        """Remove a node (tombstone, then optionally compact).

        The node's slot is tombstoned — ingest stops feeding it, its
        last-known coordinates remain servable, live node ids are never
        renumbered — and, with ``compact=True`` (default), trailing
        tombstoned slots are trimmed off the model in the same epoch
        transition.  Refuses to drop the active population below 2.
        """
        node = int(node)
        with self._pending_lock:
            self._pending += 1
        try:
            with self._lock:
                started = time.perf_counter()
                with self.ingest.membership_barrier():
                    tombstones = list(self.store.tombstones)
                    n = self.engine.n
                    if node < 0 or node >= n:
                        raise ValueError(
                            f"node must be in [0, {n}), got {node}"
                        )
                    if node in tombstones:
                        raise ValueError(f"node {node} already departed")
                    if n - len(tombstones) <= 2:
                        raise ValueError(
                            "cannot leave: the model needs at least 2 "
                            "active nodes"
                        )
                    tombstones.append(node)
                    tombstones.sort()
                    old = self.engine.coordinates
                    U, V = old.U.copy(), old.V.copy()
                    trimmed = 0
                    if compact:
                        U, V, trimmed = self._trim(U, V, tombstones)
                    self._swap(U, V, tombstones, started)
                self.leaves += 1
                if trimmed:
                    self.compactions += 1
                return self._outcome(node=node, compacted=trimmed)
        finally:
            with self._pending_lock:
                self._pending -= 1

    def compact(self) -> Dict[str, object]:
        """Trim trailing tombstoned slots in one epoch transition.

        Useful after ``leave(..., compact=False)`` sequences, or after
        restoring a checkpoint whose tail is tombstoned.  Interior
        tombstones are untouched (ids are stable); returns the number
        of slots ``compacted`` (0 is a no-op — no epoch bump).
        """
        with self._pending_lock:
            self._pending += 1
        try:
            with self._lock:
                started = time.perf_counter()
                with self.ingest.membership_barrier():
                    tombstones = list(self.store.tombstones)
                    old = self.engine.coordinates
                    U, V, trimmed = self._trim(
                        old.U.copy(), old.V.copy(), tombstones
                    )
                    if trimmed:
                        self._swap(U, V, tombstones, started)
                if trimmed:
                    self.compactions += 1
                return self._outcome(compacted=trimmed)
        finally:
            with self._pending_lock:
                self._pending -= 1

    def _outcome(self, **extra: object) -> Dict[str, object]:
        """The JSON-ready result of a completed transition."""
        payload: Dict[str, object] = {
            "epoch": self.epoch,
            "nodes": self.store.n,
            "active_nodes": self.active_nodes,
            "transition_s": self.last_transition_s,
        }
        payload.update(extra)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MembershipManager(epoch={self.epoch}, nodes={self.nodes}, "
            f"active={self.active_nodes})"
        )
