"""Tests for the Vivaldi baseline."""

import numpy as np
import pytest

from repro.baselines.vivaldi import Vivaldi, VivaldiConfig
from repro.evaluation import auc_score
from repro.simnet.neighbors import sample_neighbor_sets


class TestConfig:
    def test_defaults(self):
        config = VivaldiConfig()
        assert config.dimensions == 2 and config.use_height

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            VivaldiConfig(dimensions=0)
        with pytest.raises(ValueError):
            VivaldiConfig(ce=0.0)


class TestObserve:
    def test_initial_prediction_zero(self):
        system = Vivaldi(5, rng=0)
        assert system.predict(0, 1) == 0.0

    def test_observation_moves_prediction_toward_rtt(self):
        system = Vivaldi(2, rng=0)
        for _ in range(60):
            system.observe(0, 1, 100.0)
            system.observe(1, 0, 100.0)
        assert system.predict(0, 1) == pytest.approx(100.0, rel=0.3)

    def test_error_estimate_shrinks(self):
        system = Vivaldi(2, rng=0)
        initial = system.errors[0]
        for _ in range(40):
            system.observe(0, 1, 50.0)
            system.observe(1, 0, 50.0)
        assert system.errors[0] < initial

    def test_nan_measurement_ignored(self):
        system = Vivaldi(2, rng=0)
        system.observe(0, 1, float("nan"))
        assert system.updates == 0

    def test_nonpositive_rtt_ignored(self):
        system = Vivaldi(2, rng=0)
        system.observe(0, 1, 0.0)
        assert system.updates == 0

    def test_self_measurement_rejected(self):
        with pytest.raises(ValueError):
            Vivaldi(2, rng=0).observe(1, 1, 10.0)

    def test_heights_nonnegative(self):
        system = Vivaldi(3, rng=0)
        for _ in range(50):
            system.observe(0, 1, 10.0)
            system.observe(0, 2, 500.0)
        assert (system.heights >= 0).all()


class TestPredictMatrix:
    def test_symmetric(self):
        system = Vivaldi(4, rng=0)
        system.observe(0, 1, 50.0)
        matrix = system.predict_matrix()
        off = ~np.eye(4, dtype=bool)
        np.testing.assert_allclose(matrix[off], matrix.T[off])

    def test_diagonal_nan(self):
        matrix = Vivaldi(3, rng=0).predict_matrix()
        assert np.isnan(np.diag(matrix)).all()

    def test_matches_pairwise_predict(self):
        system = Vivaldi(4, rng=0)
        system.observe(0, 1, 50.0)
        matrix = system.predict_matrix()
        assert matrix[0, 1] == pytest.approx(system.predict(0, 1))


class TestTrain:
    def test_learns_rtt_classes(self, rtt_dataset):
        """Vivaldi + thresholding gives a usable (if weaker) classifier."""
        neighbor_sets = sample_neighbor_sets(rtt_dataset.n, 8, rng=0)
        system = Vivaldi(rtt_dataset.n, rng=0)
        system.train(rtt_dataset.quantities, neighbor_sets, rounds=300, rng=0)
        labels = rtt_dataset.class_matrix()
        auc = auc_score(labels, -system.predict_matrix())
        assert auc > 0.7

    def test_rejects_zero_rounds(self, rtt_dataset):
        system = Vivaldi(rtt_dataset.n, rng=0)
        neighbor_sets = sample_neighbor_sets(rtt_dataset.n, 4, rng=0)
        with pytest.raises(ValueError):
            system.train(rtt_dataset.quantities, neighbor_sets, rounds=0)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            Vivaldi(1)
