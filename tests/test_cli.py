"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, _experiment_registry, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"
        assert args.seed == 20111206

    def test_train_options(self):
        args = build_parser().parse_args(
            ["train", "--dataset", "hps3", "--rank", "5", "--eta", "0.01"]
        )
        assert args.dataset == "hps3"
        assert args.rank == 5
        assert args.eta == 0.01

    def test_train_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dataset", "planetlab"])

    def test_version_exits(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_version_matches_package(self, capsys):
        import repro

        with pytest.raises(SystemExit):
            main(["--version"])
        assert repro.__version__ in capsys.readouterr().out

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.dataset == "meridian"
        assert args.port == 8787
        assert args.refresh_every == 1000
        assert args.checkpoint is None

    def test_serve_options(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--dataset",
                "hps3",
                "--nodes",
                "64",
                "--rounds",
                "0",
                "--port",
                "0",
                "--refresh-every",
                "128",
            ]
        )
        assert args.dataset == "hps3"
        assert args.nodes == 64
        assert args.rounds == 0
        assert args.port == 0
        assert args.refresh_every == 128

    def test_serve_scaleout_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.shards == 1
        assert args.queue_depth == 64
        assert args.coalesce_window is None
        assert args.backend == "threading"

    def test_serve_scaleout_options(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--shards",
                "4",
                "--queue-depth",
                "16",
                "--coalesce-window",
                "1.5",
                "--backend",
                "selectors",
            ]
        )
        assert args.shards == 4
        assert args.queue_depth == 16
        assert args.coalesce_window == 1.5  # milliseconds
        assert args.backend == "selectors"

    def test_serve_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "twisted"])


class TestRegistry:
    def test_all_ids_resolvable(self):
        registry = _experiment_registry()
        for name in EXPERIMENTS:
            run, fmt = registry[name]
            assert callable(run) and callable(fmt)

    def test_registry_matches_public_list(self):
        assert set(_experiment_registry()) == set(EXPERIMENTS)


class TestCommands:
    def test_datasets_command(self, capsys):
        code = main(["datasets", "--nodes", "40", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("harvard", "meridian", "hps3"):
            assert name in out

    def test_train_command(self, capsys):
        code = main(
            [
                "train",
                "--dataset",
                "meridian",
                "--nodes",
                "50",
                "--rounds",
                "100",
                "--neighbors",
                "8",
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "AUC" in out and "Accuracy" in out

    def test_train_with_good_fraction(self, capsys):
        code = main(
            [
                "train",
                "--dataset",
                "meridian",
                "--nodes",
                "50",
                "--rounds",
                "60",
                "--neighbors",
                "8",
                "--good-fraction",
                "0.25",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        assert "tau" in capsys.readouterr().out

    def test_experiment_list(self, capsys):
        code = main(["experiment", "list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig1" in out and "table2" in out

    def test_experiment_unknown(self, capsys):
        code = main(["experiment", "fig99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_unknown_lists_available_ids(self, capsys):
        code = main(["experiment", "fig99"])
        err = capsys.readouterr().err
        assert code == 2
        for name in EXPERIMENTS:
            assert name in err

    def test_experiment_runs_table1(self, capsys):
        code = main(["experiment", "table1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "harvard" in out

    def test_report_writes_file(self, capsys, tmp_path):
        output = tmp_path / "report.md"
        code = main(["report", "--only", "table1", "--output", str(output)])
        assert code == 0
        text = output.read_text()
        assert "# DMFSGD reproduction report" in text
        assert "## table1" in text

    def test_report_rejects_unknown_id(self, capsys, tmp_path):
        output = tmp_path / "report.md"
        code = main(["report", "--only", "fig99", "--output", str(output)])
        assert code == 2
        assert not output.exists()
