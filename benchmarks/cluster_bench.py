"""Cluster-plane failover benchmark (shared measurement module).

Used by ``benchmarks/test_cluster_failover.py`` (tier-1, writes
``BENCH_cluster.json``) and by ``benchmarks/compare.py --check`` (the CI
regression gate).  Two measurements:

* **failover availability** — a 2-group process-mode cluster under
  sustained routed ingest and mirror-read load takes a SIGKILL of one
  whole worker group (every pid, nothing cooperative).  The monitor
  must detect the death, fence the group (ingest rejected with the
  distinct ``rejected_group_down`` reason), keep answering reads from
  the last mirror, and restart-with-reattach.  Reported:
  ``query_availability_during_outage`` — fraction of mirror reads that
  returned finite estimates across the whole window, kill included.
  The acceptance floor is 99.9% and it is machine-independent: mirror
  reads are in-process snapshot gathers and must never see the outage;

* **route overhead** — the same traffic submitted through the
  :class:`RoutingGateway` (validate, split by partition book, forward)
  vs submitted pre-split straight into each group's admission path, on
  a thread-mode cluster (no IPC noise).  ``route_overhead_x`` is the
  end-to-end slowdown the routing tier adds; ``compare.py --check``
  gates it under :data:`ROUTE_OVERHEAD_CEILING`.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import DMFSGDConfig  # noqa: E402
from repro.serving.cluster import build_cluster  # noqa: E402

SEED = 20111206
NODES = 240
RANK = 10
GROUPS = 2
GROUP_SHARDS = 2
ROUTE_SAMPLES = 20_000
ROUTE_BATCH = 512
QUERY_BATCH = 256
FEED_BATCH = 256
HEARTBEAT_S = 0.05
STALENESS_BUDGET_S = 0.25
OUTAGE_RUN_S = 3.0
KILL_AFTER_ANSWERS = 100
SUMMARY_PATH = REPO_ROOT / "BENCH_cluster.json"

#: acceptance floor: mirror reads answered during the kill/restart
#: window.  Machine-independent — reads are in-process gathers against
#: the last mirror snapshot and must not observe the outage at all.
CLUSTER_MIN_AVAILABILITY = 0.999

#: ceiling on the routed-vs-direct ingest slowdown (the routing tier's
#: validate + owner-split + forward tax, end to end)
ROUTE_OVERHEAD_CEILING = 4.0


def _factors(rng) -> tuple:
    U = rng.uniform(0.1, 1.0, size=(NODES, RANK))
    V = rng.uniform(0.1, 1.0, size=(NODES, RANK))
    return U, V


def _traffic(rng, samples):
    sources = rng.integers(0, NODES, size=samples)
    targets = (sources + 1 + rng.integers(0, NODES - 1, size=samples)) % NODES
    values = rng.choice([-1.0, 1.0], size=samples)
    return sources, targets, values


def bench_route_overhead() -> dict:
    """Routed vs direct ingest throughput on a thread-mode cluster."""
    rng = np.random.default_rng(SEED)
    config = DMFSGDConfig(neighbors=8)
    supervisor = build_cluster(
        _factors(rng),
        groups=GROUPS,
        shards=GROUP_SHARDS,
        workers="threads",
        config=config,
        batch_size=ROUTE_BATCH,
        refresh_interval=10 * ROUTE_BATCH,
        monitor=False,
        seed=SEED,
    ).start()
    try:
        router = supervisor.router
        sources, targets, values = _traffic(rng, ROUTE_SAMPLES)

        # warm-up both paths (thread spin-up, first-touch)
        router.submit_many(
            sources[:ROUTE_BATCH], targets[:ROUTE_BATCH], values[:ROUTE_BATCH]
        )
        router.flush()

        start = time.perf_counter()
        for lo in range(0, ROUTE_SAMPLES, ROUTE_BATCH):
            router.submit_many(
                sources[lo : lo + ROUTE_BATCH],
                targets[lo : lo + ROUTE_BATCH],
                values[lo : lo + ROUTE_BATCH],
            )
        router.flush()
        routed_mps = ROUTE_SAMPLES / (time.perf_counter() - start)

        # direct path: pre-split by owner outside the timer's per-batch
        # loop shape — each batch is split and fed straight into the
        # owning group's admission path, skipping the routing tier
        owners = sources % GROUPS
        start = time.perf_counter()
        for lo in range(0, ROUTE_SAMPLES, ROUTE_BATCH):
            src = sources[lo : lo + ROUTE_BATCH]
            dst = targets[lo : lo + ROUTE_BATCH]
            val = values[lo : lo + ROUTE_BATCH]
            own = owners[lo : lo + ROUTE_BATCH]
            for g, group in enumerate(supervisor.groups):
                mask = own == g
                if mask.any():
                    group.submit_many(src[mask], dst[mask], val[mask])
        for group in supervisor.groups:
            group.flush()
        direct_mps = ROUTE_SAMPLES / (time.perf_counter() - start)

        return {
            "route_direct_mps": direct_mps,
            "route_routed_mps": routed_mps,
            "route_overhead_x": direct_mps / routed_mps,
        }
    finally:
        supervisor.close()


def bench_failover() -> dict:
    """SIGKILL one worker group under load; measure read availability."""
    rng = np.random.default_rng(SEED + 1)
    config = DMFSGDConfig(neighbors=8)
    supervisor = build_cluster(
        _factors(rng),
        groups=GROUPS,
        shards=GROUP_SHARDS,
        workers="processes",
        config=config,
        batch_size=FEED_BATCH,
        refresh_interval=10 * FEED_BATCH,
        queue_depth=64,
        staleness_budget=STALENESS_BUDGET_S,
        heartbeat_interval=HEARTBEAT_S,
        auto_restart=True,
        monitor=True,
        seed=SEED,
    ).start()
    try:
        router = supervisor.router
        mirror = supervisor.mirror

        # prime: a little routed traffic so versions move before the kill
        src, dst, val = _traffic(rng, 4 * FEED_BATCH)
        router.submit_many(src, dst, val)
        router.flush()
        version_before_kill = supervisor.version

        qs = rng.integers(0, NODES, size=QUERY_BATCH)
        qt = (qs + 1 + rng.integers(0, NODES - 1, size=QUERY_BATCH)) % NODES

        stop = threading.Event()
        ok = [0]
        failed = [0]

        def querier() -> None:
            while not stop.is_set():
                try:
                    batch = mirror.snapshot().estimate_pairs(qs, qt)
                    if np.all(np.isfinite(batch)):
                        ok[0] += 1
                    else:
                        failed[0] += 1
                except Exception:
                    failed[0] += 1

        def feeder() -> None:
            feed_rng = np.random.default_rng(SEED + 2)
            while not stop.is_set():
                fs, ft, fv = _traffic(feed_rng, FEED_BATCH)
                try:
                    router.submit_many(fs, ft, fv)
                except Exception:
                    pass
                time.sleep(0.002)

        threads = [
            threading.Thread(target=querier, daemon=True),
            threading.Thread(target=feeder, daemon=True),
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()

        # let the read path warm up before pulling the trigger
        deadline = started + OUTAGE_RUN_S
        while ok[0] < KILL_AFTER_ANSWERS and time.perf_counter() < deadline:
            time.sleep(0.005)

        victim = supervisor.groups[1]
        kill_at = time.perf_counter()
        for pid in victim.pids():
            if pid:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass

        # the monitor thread must notice (deaths) and revive (alive)
        detection_s = recovery_s = float("nan")
        wait_until = kill_at + 10.0
        while time.perf_counter() < wait_until:
            if supervisor.deaths[1] >= 1:
                detection_s = time.perf_counter() - kill_at
                break
            time.sleep(0.005)
        while time.perf_counter() < wait_until:
            if supervisor.alive(1):
                recovery_s = time.perf_counter() - kill_at
                break
            time.sleep(0.005)

        # keep load running past recovery so the window prices both sides
        while time.perf_counter() < deadline:
            time.sleep(0.01)
        elapsed = time.perf_counter() - started
        stop.set()
        for t in threads:
            t.join(timeout=5.0)

        version_after = supervisor.version
        answered, dropped = ok[0], failed[0]
        total = answered + dropped
        return {
            "query_availability_during_outage": (
                answered / total if total else 0.0
            ),
            "queries_answered_during_outage": answered,
            "queries_failed_during_outage": dropped,
            "queries_during_outage_pps": answered * QUERY_BATCH / elapsed,
            "death_detection_ms": detection_s * 1000.0,
            "group_recovery_ms": recovery_s * 1000.0,
            "deaths_detected": list(supervisor.deaths),
            "group_restarts": list(supervisor.group_restarts),
            "rejected_group_down": int(sum(router.rejected_group_down)),
            "forwarded": int(sum(router.forwarded)),
            "version_before_kill": int(version_before_kill),
            "version_after_recovery": int(version_after),
            "version_monotone": bool(version_after >= version_before_kill),
            "supervisor_errors": len(supervisor.errors),
        }
    finally:
        supervisor.close()


def run() -> dict:
    cores = os.cpu_count() or 1
    result = {
        "nodes": NODES,
        "rank": RANK,
        "groups": GROUPS,
        "group_shards": GROUP_SHARDS,
        "seed": SEED,
        "cores": cores,
        "cpu_count": cores,
        # both cluster gates (availability floor, route-overhead
        # ceiling) are enforced on any machine — nothing to skip
        "notices": [],
        "staleness_budget_s": STALENESS_BUDGET_S,
        "heartbeat_interval_s": HEARTBEAT_S,
    }
    result.update(bench_route_overhead())
    result.update(bench_failover())
    return result


def format_rows(result: dict) -> list:
    return [
        ["cores", str(result["cores"])],
        [
            "query availability through kill/restart",
            f"{result['query_availability_during_outage']:.4%}",
        ],
        [
            "mirror reads during outage",
            f"{result['queries_during_outage_pps']:,.0f} pps",
        ],
        ["death detection", f"{result['death_detection_ms']:.0f} ms"],
        ["group recovery", f"{result['group_recovery_ms']:.0f} ms"],
        [
            "ingest rejected while down",
            f"{result['rejected_group_down']:,d} samples",
        ],
        ["route overhead (routed vs direct)", f"{result['route_overhead_x']:.2f}x"],
        [
            "version monotone across restart",
            "yes" if result["version_monotone"] else "NO",
        ],
    ]


def main() -> int:  # pragma: no cover - manual invocation
    import json

    from repro.utils.tables import format_table

    result = run()
    print(format_table(format_rows(result), headers=["cluster", "value"]))
    SUMMARY_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {SUMMARY_PATH}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
