"""Measurement-cost accounting (the paper's Section 1/3 argument).

The paper's case for *class-based* prediction rests on two cost
reductions that this module quantifies:

1. **class probes are cheaper than quantity probes** — a pathload-style
   class probe sends one UDP train at the single rate ``tau``, while a
   quantity estimate must binary-search the rate (pathload) or send
   long chirp trains (pathChirp);
2. **"probe a few, predict many"** — DMFSGD measures ``n * k`` pairs
   instead of the ``n * (n-1)`` full mesh.

Costs are modeled in probe packets and bytes from the tool parameters
of the underlying papers: ping (few ICMP echos), pathload (UDP trains
of ~100 packets, ~12 rate iterations for a quantity), pathChirp
(exponentially spaced trains).  Absolute byte counts are nominal; the
*ratios* are what the benches assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["ProbeCost", "TOOL_COSTS", "acquisition_cost", "cost_table"]

#: Nominal packet size in bytes for probe traffic (UDP payload + headers).
PACKET_BYTES = 1000

#: ICMP echo request+reply size.
ICMP_BYTES = 64


@dataclass(frozen=True)
class ProbeCost:
    """Cost of acquiring one path's measurement with one tool.

    Attributes
    ----------
    packets:
        Probe packets sent end-to-end for one measurement.
    bytes:
        Total bytes on the wire for one measurement.
    yields_quantity:
        True when the measurement produces the metric *value*; False
        when it produces only a class verdict.
    """

    packets: int
    bytes: int
    yields_quantity: bool


def _pathload_class() -> ProbeCost:
    # one constant-rate train at tau: ~100 packets
    packets = 100
    return ProbeCost(packets, packets * PACKET_BYTES, False)


def _pathload_quantity() -> ProbeCost:
    # binary search over rates: ~12 iterations x 100-packet trains
    packets = 12 * 100
    return ProbeCost(packets, packets * PACKET_BYTES, True)


def _pathchirp_class() -> ProbeCost:
    # few, short chirps thresholded by tau: 2 trains x 30 packets
    packets = 2 * 30
    return ProbeCost(packets, packets * PACKET_BYTES, False)


def _pathchirp_quantity() -> ProbeCost:
    # accurate estimate needs many chirps: 16 trains x 30 packets
    packets = 16 * 30
    return ProbeCost(packets, packets * PACKET_BYTES, True)


def _ping_class() -> ProbeCost:
    # thresholding needs the RTT anyway; ping is cheap either way
    packets = 3 * 2  # 3 echos, request+reply
    return ProbeCost(packets, packets * ICMP_BYTES, False)


def _ping_quantity() -> ProbeCost:
    packets = 3 * 2
    return ProbeCost(packets, packets * ICMP_BYTES, True)


#: Per-(tool, kind) costs; kind is "class" or "quantity".
TOOL_COSTS: Dict[str, Dict[str, ProbeCost]] = {
    "ping": {"class": _ping_class(), "quantity": _ping_quantity()},
    "pathload": {"class": _pathload_class(), "quantity": _pathload_quantity()},
    "pathchirp": {
        "class": _pathchirp_class(),
        "quantity": _pathchirp_quantity(),
    },
}


def acquisition_cost(
    n: int,
    k: int,
    tool: str,
    kind: str,
    *,
    full_mesh: bool = False,
    rounds: int = 1,
) -> ProbeCost:
    """Total cost of measuring a deployment's paths.

    Parameters
    ----------
    n:
        Number of nodes.
    k:
        Neighbors per node (ignored for ``full_mesh``).
    tool:
        ``"ping"``, ``"pathload"`` or ``"pathchirp"``.
    kind:
        ``"class"`` or ``"quantity"``.
    full_mesh:
        Measure all ``n * (n-1)`` ordered pairs instead of ``n * k``.
    rounds:
        Repeated measurement rounds (dynamics tracking).
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if not full_mesh and not 0 < k <= n - 1:
        raise ValueError(f"k must be in [1, n-1], got {k}")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    try:
        per_path = TOOL_COSTS[tool][kind]
    except KeyError:
        raise ValueError(
            f"unknown tool/kind {tool!r}/{kind!r}; tools: "
            f"{sorted(TOOL_COSTS)}, kinds: class/quantity"
        ) from None
    paths = n * (n - 1) if full_mesh else n * k
    total = paths * rounds
    return ProbeCost(
        packets=per_path.packets * total,
        bytes=per_path.bytes * total,
        yields_quantity=per_path.yields_quantity,
    )


def cost_table(n: int, k: int, *, rounds: int = 1) -> Dict[str, float]:
    """The cost-reduction headline numbers for an ``n``-node system.

    Returns byte totals for the four ABW acquisition strategies the
    paper contrasts, plus the two reduction ratios:

    * ``class_vs_quantity`` — pathload class probing vs quantity
      estimation over the same DMFSGD schedule;
    * ``dmfsgd_vs_full_mesh`` — DMFSGD class probing vs full-mesh
      class probing.
    """
    dmfsgd_class = acquisition_cost(n, k, "pathload", "class", rounds=rounds)
    dmfsgd_quantity = acquisition_cost(
        n, k, "pathload", "quantity", rounds=rounds
    )
    mesh_class = acquisition_cost(
        n, k, "pathload", "class", full_mesh=True, rounds=rounds
    )
    mesh_quantity = acquisition_cost(
        n, k, "pathload", "quantity", full_mesh=True, rounds=rounds
    )
    return {
        "dmfsgd_class_bytes": float(dmfsgd_class.bytes),
        "dmfsgd_quantity_bytes": float(dmfsgd_quantity.bytes),
        "full_mesh_class_bytes": float(mesh_class.bytes),
        "full_mesh_quantity_bytes": float(mesh_quantity.bytes),
        "class_vs_quantity": dmfsgd_quantity.bytes / dmfsgd_class.bytes,
        "dmfsgd_vs_full_mesh": mesh_class.bytes / dmfsgd_class.bytes,
    }
