"""Admission control for the serving ingest path.

A production ingest endpoint cannot trust its traffic: one application
hammering a single pair multiplies the within-batch SGD step by its
duplicate count (the engine's asynchrony model reads batch-start
coordinates, so every duplicate contributes a full step) and can
diverge that pair's estimate; a broken measurement tool can feed gross
outliers; and a silent model drift is invisible without an online
metric.  This module is the guard layer that sits between
:meth:`~repro.serving.ingest.IngestPipeline.submit` and the engine:

* :class:`TokenBucketRateLimiter` — per-source token buckets, so no
  single source can dominate the update stream;
* :class:`RobustSigmaFilter` — streaming sigma-rule outlier rejection
  on the measured values (Welford running moments);
* :class:`NoiseBandFilter` — turns the paper's Section 6.3 error
  models (:mod:`repro.measurement.errors`) into *admission* filters:
  the band of quantities a model declares unreliable is rejected at
  the door instead of corrupting the factors;
* :class:`AdmissionGuard` — composes limiter + filters and keeps the
  per-reason rejection breakdown served by ``GET /stats``;
* :class:`OnlineEvaluator` — sliding-window prequential ("test, then
  train") evaluation: AUC via :mod:`repro.evaluation.roc` for class
  mode, relative-error quantiles for the L2/quantity mode, so drift
  is observable from ``/stats``;
* :class:`BackgroundCheckpointer` — periodic background
  :meth:`~repro.serving.store.CoordinateStore.save` so a crash loses
  at most one interval of updates.

The batch-level half of the guard — per-pair dedup/averaging and the
per-pair step clip — lives in
:meth:`~repro.core.engine.DMFSGDEngine.apply_measurements` and is
selected by the pipeline's ``mode="guarded"``; this module covers the
per-sample admission decisions.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.serving.autopilot import PeriodicController

from repro.measurement.errors import (
    FlipNearThreshold,
    LabelNoiseModel,
    UnderestimationBias,
)

__all__ = [
    "TokenBucketRateLimiter",
    "PairTokenBucketRateLimiter",
    "RobustSigmaFilter",
    "NoiseBandFilter",
    "AdmissionGuard",
    "AdaptiveGuardTuner",
    "OnlineEvaluator",
    "BackgroundCheckpointer",
]


class TokenBucketRateLimiter:
    """Per-source token buckets bounding each source's update share.

    Every source owns a bucket of capacity ``burst`` refilled at
    ``rate`` tokens per second; a measurement is admitted iff its
    source has a token left.  Within one batch the *earliest* samples
    of a source win — later duplicates are the ones shed, matching the
    arrival order an HTTP gateway sees.

    Bucket state is dense — two flat float arrays indexed by source id,
    grown geometrically on demand — so :meth:`allow` is pure NumPy: one
    ``np.unique`` groups the batch, one fused refill updates every
    touched bucket, and an arrival-order rank comparison picks the
    earliest winners, with no Python loop over sources.  (The previous
    dict-of-buckets implementation looped per distinct source and
    dominated the guarded ingest profile.)

    Parameters
    ----------
    rate:
        Sustained tokens (measurements) per second per source.
    burst:
        Bucket capacity: how many measurements a silent source may
        submit at once.
    clock:
        Monotonic-seconds callable, injectable for tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float = 32.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        # dense bucket state; sources at/above _size are untouched (full)
        self._tokens = np.empty(0, dtype=float)
        self._last = np.empty(0, dtype=float)

    @property
    def tracked_sources(self) -> int:
        """How many source ids have dense bucket slots allocated."""
        return int(self._tokens.size)

    def _ensure(self, max_source: int) -> None:
        """Grow the dense arrays to cover source ids up to ``max_source``."""
        needed = max_source + 1
        if needed <= self._tokens.size:
            return
        size = max(needed, 2 * self._tokens.size, 64)
        tokens = np.full(size, self.burst, dtype=float)
        last = np.zeros(size, dtype=float)
        tokens[: self._tokens.size] = self._tokens
        last[: self._last.size] = self._last
        self._tokens, self._last = tokens, last

    def allow_one(self, source: int) -> bool:
        """Admit (and charge) a single measurement from ``source``."""
        source = int(source)
        if source < 0:
            raise ValueError(f"source ids must be >= 0, got {source}")
        self._ensure(source)
        now = self._clock()
        tokens = min(
            self.burst,
            self._tokens[source] + (now - self._last[source]) * self.rate,
        )
        self._last[source] = now
        if tokens >= 1.0:
            self._tokens[source] = tokens - 1.0
            return True
        self._tokens[source] = tokens
        return False

    def allow(self, sources: np.ndarray) -> np.ndarray:
        """Boolean admission mask for a batch of source indices.

        Fully vectorized: refill + charge every touched bucket in one
        pass, then keep each source's earliest ``floor(tokens)``
        samples in arrival order.
        """
        sources = np.asarray(sources, dtype=np.int64)
        keep = np.zeros(sources.size, dtype=bool)
        if sources.size == 0:
            return keep
        if sources.min() < 0:
            raise ValueError("source ids must be >= 0")
        self._ensure(int(sources.max()))
        now = self._clock()
        uniq, inverse, counts = np.unique(
            sources, return_inverse=True, return_counts=True
        )
        tokens = np.minimum(
            self.burst,
            self._tokens[uniq] + (now - self._last[uniq]) * self.rate,
        )
        take = np.minimum(counts, np.floor(tokens).astype(np.int64))
        self._tokens[uniq] = tokens - take
        self._last[uniq] = now
        # arrival-order rank of each sample within its source group:
        # stable argsort by group clusters each source's samples in
        # arrival order, so rank = position - group start.
        order = np.argsort(inverse, kind="stable")
        starts = np.zeros(uniq.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        ranks = np.empty(sources.size, dtype=np.int64)
        ranks[order] = np.arange(sources.size) - np.repeat(starts, counts)
        np.less(ranks, take[inverse], out=keep)
        return keep


class PairTokenBucketRateLimiter(TokenBucketRateLimiter):
    """Token buckets keyed by the ``(source, target)`` *pair*.

    The per-source limiter bounds how much any one prober can shape the
    model, but a botnet-style distributed hammering — many sources all
    measuring the same pair — sails through it and still multiplies one
    pair's update pressure.  This limiter closes that hole: each pair
    hashes into a fixed-size table of dense token buckets, reusing the
    vectorized refill/charge/rank kernel of the per-source path
    unchanged (the hash index simply plays the role of the source id).

    Hashing is Fibonacci multiplicative mixing on the packed
    ``(source, target)`` key, so the buckets spread uniformly over the
    table; two pairs sharing a slot share a bucket — acceptable
    (slightly conservative) aliasing that keeps the state bounded at
    ``table_size`` buckets no matter how many node pairs exist.

    Parameters
    ----------
    rate, burst, clock:
        As in :class:`TokenBucketRateLimiter`, but per pair-slot.
    table_size:
        Number of hash buckets (power of two recommended).
    """

    #: 64-bit golden-ratio multiplier (Fibonacci hashing)
    _MIX = np.uint64(0x9E3779B97F4A7C15)

    def __init__(
        self,
        rate: float,
        burst: float = 8.0,
        *,
        table_size: int = 1 << 16,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if table_size < 1:
            raise ValueError(f"table_size must be >= 1, got {table_size}")
        super().__init__(rate, burst, clock=clock)
        self.table_size = int(table_size)

    def _slots(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Hash aligned pair arrays into dense bucket indices."""
        h = sources.astype(np.uint64) * self._MIX
        h ^= targets.astype(np.uint64) * np.uint64(0xC2B2AE3D27D4EB4F)
        h ^= h >> np.uint64(29)
        h *= self._MIX
        h ^= h >> np.uint64(32)
        return (h % np.uint64(self.table_size)).astype(np.int64)

    def allow_pairs(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Boolean admission mask for aligned ``(source, target)`` arrays."""
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise ValueError(
                f"sources and targets must match, got {sources.shape} "
                f"vs {targets.shape}"
            )
        if sources.size and (sources.min() < 0 or targets.min() < 0):
            raise ValueError("node ids must be >= 0")
        return self.allow(self._slots(sources, targets))

    def allow_pair_one(self, source: int, target: int) -> bool:
        """Scalar fast path of :meth:`allow_pairs`."""
        if source < 0 or target < 0:
            raise ValueError("node ids must be >= 0")
        slot = self._slots(
            np.asarray([source], dtype=np.int64),
            np.asarray([target], dtype=np.int64),
        )
        return self.allow_one(int(slot[0]))


class RobustSigmaFilter:
    """Streaming sigma-rule outlier rejection on measured values.

    Estimates what normal traffic looks like from a sliding window of
    the *admitted* values using the median and the MAD (median absolute
    deviation, scaled by 1.4826 to be a standard-deviation equivalent
    for Gaussian data), and rejects a value further than ``sigma``
    scale units from the median.  Median/MAD — unlike running mean and
    variance — survive the contamination this filter exists to stop:
    a gross spike slipping in during warm-up shifts the estimates by
    at most one rank, instead of poisoning a lifetime variance and
    silently disabling the filter.  Until ``min_samples`` values have
    been seen the filter admits everything — there is no distribution
    to defend yet; a window with zero spread (MAD 0) likewise admits
    everything, since only admitted values re-enter the window and a
    degenerate window must be able to adapt.
    """

    name = "outlier"

    def __init__(
        self, sigma: float = 4.0, min_samples: int = 30, window: int = 1000
    ) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples}")
        if window < min_samples:
            raise ValueError(
                f"window must be >= min_samples, got {window} < {min_samples}"
            )
        self.sigma = float(sigma)
        self.min_samples = int(min_samples)
        # ring buffer of the last `window` admitted values: appends are
        # one vectorized write instead of a per-value deque.extend loop
        self._ring = np.empty(int(window), dtype=float)
        self._fill = 0
        self._head = 0
        self._count = 0
        self._cached: Optional["tuple[float, float]"] = None
        self._since_refresh = 0

    @property
    def count(self) -> int:
        """Total values absorbed into the window over the lifetime."""
        return self._count

    @property
    def window_values(self) -> np.ndarray:
        """The admitted values currently in the window (a copy)."""
        return self._ring[: self._fill].copy()

    #: absorptions between median/MAD recomputations (the threshold
    #: drifts slowly; recomputing per scalar submit would be O(window))
    _REFRESH_EVERY = 32

    def _threshold(self) -> "tuple[float, float]":
        """Current (median, rejection radius); radius 0 disables."""
        if self._fill < self.min_samples:
            return 0.0, 0.0
        if self._cached is None or self._since_refresh >= self._REFRESH_EVERY:
            values = self._ring[: self._fill]
            median = float(np.median(values))
            scale = 1.4826 * float(np.median(np.abs(values - median)))
            self._cached = (median, self.sigma * scale)
            self._since_refresh = 0
        return self._cached

    def _absorb(self, values: np.ndarray) -> None:
        size = self._ring.size
        count = int(values.size)
        if count >= size:
            # the batch alone overfills the window: keep its tail
            self._ring[:] = values[count - size :]
            self._head = 0
            self._fill = size
        else:
            first = min(count, size - self._head)
            self._ring[self._head : self._head + first] = values[:first]
            if count > first:  # wrap around
                self._ring[: count - first] = values[first:]
            self._head = (self._head + count) % size
            self._fill = min(size, self._fill + count)
        self._count += count
        self._since_refresh += count

    def keep(self, values: np.ndarray) -> np.ndarray:
        """Boolean admission mask; admitted values enter the window."""
        values = np.asarray(values, dtype=float)
        median, radius = self._threshold()
        if radius > 0:
            mask = np.abs(values - median) <= radius
        else:
            mask = np.ones(values.shape, dtype=bool)
        self._absorb(values[mask])
        return mask

    def keep_one(self, value: float) -> bool:
        """Scalar fast path of :meth:`keep` (no array round-trip)."""
        value = float(value)
        median, radius = self._threshold()
        if radius > 0 and abs(value - median) > radius:
            return False
        self._ring[self._head] = value
        self._head = (self._head + 1) % self._ring.size
        self._fill = min(self._ring.size, self._fill + 1)
        self._count += 1
        self._since_refresh += 1
        return True


class NoiseBandFilter:
    """Reject measurements inside a noise model's ambiguity band.

    The paper's Section 6.3 error models describe *where* measured
    labels go wrong: :class:`~repro.measurement.errors.FlipNearThreshold`
    says quantities within ``[tau - delta, tau + delta]`` may carry
    flipped labels (tool inaccuracy near the threshold), and
    :class:`~repro.measurement.errors.UnderestimationBias` says
    quantities in ``[tau, tau + delta]`` are systematically mislabeled
    bad.  Online, the same knowledge makes a *rejection filter*: a
    quantity inside the model's band is not trustworthy evidence, so
    the guard sheds it instead of training on it.

    Only the band-parameterized models (types 1 and 2) are supported;
    the random-flip models (types 3 and 4) carry no quantity band.
    """

    name = "noise_band"

    def __init__(self, model: LabelNoiseModel) -> None:
        if isinstance(model, FlipNearThreshold):
            self.low = model.tau - model.delta
            self.high = model.tau + model.delta
        elif isinstance(model, UnderestimationBias):
            self.low = model.tau
            self.high = model.tau + model.delta
        else:
            raise ValueError(
                f"{type(model).__name__} has no quantity band; only error "
                "types 1 (FlipNearThreshold) and 2 (UnderestimationBias) "
                "define one"
            )
        self.model = model

    def keep(self, values: np.ndarray) -> np.ndarray:
        """Boolean admission mask: True outside the ambiguity band."""
        values = np.asarray(values, dtype=float)
        return ~((values >= self.low) & (values <= self.high))

    def keep_one(self, value: float) -> bool:
        """Scalar fast path of :meth:`keep`."""
        return not (self.low <= float(value) <= self.high)


class AdmissionGuard:
    """Composition of rate limiting and value filters with counters.

    The guard is stateful but lock-free: :class:`IngestPipeline` calls
    it under its own lock, so no second lock is needed.

    Parameters
    ----------
    rate_limiter:
        Optional :class:`TokenBucketRateLimiter` (per *source*).
    pair_limiter:
        Optional :class:`PairTokenBucketRateLimiter` (per ``(source,
        target)`` pair — catches distributed hammering of one pair that
        the per-source buckets cannot see).  Rejections are counted
        under the ``"pair_rate"`` reason.
    filters:
        Value filters applied in order; each needs ``keep(values)``,
        ``keep_one(value)`` and a ``name`` used in the per-reason
        rejection breakdown.
    """

    def __init__(
        self,
        *,
        rate_limiter: Optional[TokenBucketRateLimiter] = None,
        pair_limiter: Optional[PairTokenBucketRateLimiter] = None,
        filters: Sequence[object] = (),
    ) -> None:
        self.rate_limiter = rate_limiter
        self.pair_limiter = pair_limiter
        self.filters = list(filters)
        names = [getattr(f, "name", type(f).__name__) for f in self.filters]
        if len(set(names)) != len(names):
            raise ValueError(f"filter names must be unique, got {names}")
        self.received = 0
        self.admitted = 0
        self.rejected: Dict[str, int] = {"rate_limit": 0, "pair_rate": 0}
        for name in names:
            self.rejected[name] = 0

    @property
    def rejected_total(self) -> int:
        """Measurements rejected across all reasons."""
        return sum(self.rejected.values())

    @property
    def rejected_pair_rate(self) -> int:
        """Measurements shed by the per-pair token buckets."""
        return self.rejected["pair_rate"]

    def admit(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        values: np.ndarray,
    ) -> np.ndarray:
        """Boolean admission mask over an aligned measurement batch."""
        values = np.asarray(values, dtype=float)
        self.received += int(values.size)
        keep = np.ones(values.size, dtype=bool)
        if self.rate_limiter is not None:
            allowed = self.rate_limiter.allow(sources)
            self.rejected["rate_limit"] += int(np.sum(keep & ~allowed))
            keep &= allowed
        if self.pair_limiter is not None:
            # only samples still in play reach (and charge) the pair
            # buckets, mirroring how the value filters train
            admitted_idx = np.flatnonzero(keep)
            if admitted_idx.size:
                allowed = self.pair_limiter.allow_pairs(
                    np.asarray(sources)[admitted_idx],
                    np.asarray(targets)[admitted_idx],
                )
                rejected_here = int(allowed.size - allowed.sum())
                if rejected_here:
                    self.rejected["pair_rate"] += rejected_here
                    keep[admitted_idx[~allowed]] = False
        for flt in self.filters:
            name = getattr(flt, "name", type(flt).__name__)
            # only still-admitted values reach (and train) each filter
            passed = np.asarray(flt.keep(values[keep]), dtype=bool)
            rejected_here = int(passed.size - passed.sum())
            if rejected_here:
                self.rejected[name] += rejected_here
                admitted_idx = np.flatnonzero(keep)
                keep[admitted_idx[~passed]] = False
        self.admitted += int(keep.sum())
        return keep

    def admit_one(self, source: int, target: int, value: float) -> bool:
        """Scalar fast path of :meth:`admit` (the gateway's hot path)."""
        self.received += 1
        if self.rate_limiter is not None and not self.rate_limiter.allow_one(
            source
        ):
            self.rejected["rate_limit"] += 1
            return False
        if self.pair_limiter is not None and not self.pair_limiter.allow_pair_one(
            source, target
        ):
            self.rejected["pair_rate"] += 1
            return False
        for flt in self.filters:
            if not flt.keep_one(value):
                self.rejected[getattr(flt, "name", type(flt).__name__)] += 1
                return False
        self.admitted += 1
        return True

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready counters with the per-reason breakdown."""
        return {
            "received": self.received,
            "admitted": self.admitted,
            "rejected_total": self.rejected_total,
            "rejected": dict(self.rejected),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdmissionGuard(rate_limiter={self.rate_limiter is not None}, "
            f"filters={len(self.filters)}, rejected={self.rejected_total})"
        )


class OnlineEvaluator:
    """Sliding-window prequential evaluation of the served model.

    Before a batch is applied, the pipeline asks the *current* model
    to predict each admitted pair and records (prediction, measured
    training value) — test, then train, so every sample scores a model
    that has never seen it.  The window makes drift observable from
    ``GET /stats``:

    * ``mode="class"`` — training values are {+1, -1} labels; the
      window metric is the AUC of the real-valued estimates against
      them (:func:`repro.evaluation.roc.auc_score`), ``None`` until
      both classes are present;
    * ``mode="l2"`` — training values are raw quantities; the window
      metric is the p50/p90/p99 of the relative error
      ``|estimate - value| / max(|value|, eps)``.

    Thread-safety: :meth:`observe` runs on ingest threads and
    :meth:`evaluate` on gateway ``/stats`` threads; an internal lock
    keeps the paired sliding windows consistent between them.
    """

    def __init__(self, mode: str = "class", *, window: int = 2000) -> None:
        if mode not in ("class", "l2"):
            raise ValueError(f"mode must be 'class' or 'l2', got {mode!r}")
        if window <= 1:
            raise ValueError(f"window must be > 1, got {window}")
        self.mode = mode
        self.window = int(window)
        self._estimates: deque = deque(maxlen=self.window)
        self._truth: deque = deque(maxlen=self.window)
        self.observed = 0
        # observe() runs on ingest threads, evaluate() on gateway /stats
        # threads; the lock keeps the paired deques consistent.
        self._lock = threading.Lock()

    def observe(self, estimates: np.ndarray, values: np.ndarray) -> None:
        """Record pre-update predictions against measured values."""
        estimates = np.asarray(estimates, dtype=float).ravel()
        values = np.asarray(values, dtype=float).ravel()
        if estimates.shape != values.shape:
            raise ValueError(
                f"estimates and values must match, got {estimates.shape} "
                f"vs {values.shape}"
            )
        finite = np.isfinite(estimates) & np.isfinite(values)
        with self._lock:
            self._estimates.extend(estimates[finite].tolist())
            self._truth.extend(values[finite].tolist())
            self.observed += int(finite.sum())

    def window_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """The paired ``(estimates, truth)`` window as array copies.

        Consumed by :class:`AdaptiveGuardTuner`, which derives guard
        thresholds from the window's dispersion.
        """
        with self._lock:
            return np.array(self._estimates), np.array(self._truth)

    def evaluate(self) -> Dict[str, object]:
        """JSON-ready window metrics (the ``online_eval`` stats section)."""
        with self._lock:
            truth = np.array(self._truth)
            estimates = np.array(self._estimates)
            observed = self.observed
        payload: Dict[str, object] = {
            "mode": self.mode,
            "window": self.window,
            "samples": int(truth.size),
            "observed": observed,
        }
        if truth.size == 0:
            # stable schema either way: every metric key present, null
            if self.mode == "class":
                payload["auc"] = None
            else:
                payload["rel_err_p50"] = None
                payload["rel_err_p90"] = None
                payload["rel_err_p99"] = None
            return payload
        if self.mode == "class":
            labels = np.where(truth > 0, 1.0, -1.0)
            if (labels == 1.0).any() and (labels == -1.0).any():
                from repro.evaluation.roc import auc_score

                payload["auc"] = float(auc_score(labels, estimates))
            else:
                payload["auc"] = None  # one-class window: AUC undefined
        else:
            rel = np.abs(estimates - truth) / np.maximum(np.abs(truth), 1e-12)
            payload["rel_err_p50"] = float(np.quantile(rel, 0.50))
            payload["rel_err_p90"] = float(np.quantile(rel, 0.90))
            payload["rel_err_p99"] = float(np.quantile(rel, 0.99))
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineEvaluator(mode={self.mode!r}, window={self.window}, "
            f"samples={len(self._truth)})"
        )


def _scaled_mad(values: np.ndarray) -> float:
    """Median absolute deviation scaled to a stddev equivalent."""
    if values.size == 0:
        return 0.0
    median = float(np.median(values))
    return 1.4826 * float(np.median(np.abs(values - median)))


class AdaptiveGuardTuner(PeriodicController):
    """Derives guard thresholds from the online evaluator's window.

    The static guard parameters (``step_clip``, the sigma filter's
    multiplier) encode an operator's one-time guess about the traffic;
    this tuner replaces the guess with the *measured* stream.  Every
    ``interval`` observed samples it reads the evaluator's sliding
    ``(estimate, truth)`` window and re-derives:

    * ``step_clip = clip_k * MAD(residuals)`` — the per-pair SGD step
      bound tracks the robust spread of the prediction residuals
      (1.4826-scaled MAD, a stddev equivalent).  Residuals widen when
      the stream shifts regime, so the clip loosens exactly when the
      model legitimately needs big corrective steps, and tightens back
      as it re-converges;
    * the :class:`RobustSigmaFilter` multiplier ``sigma`` — scaled by
      the ratio of residual spread to value spread.  While the model
      tracks the stream (residuals small against the value
      dispersion), outliers are likely noise and the filter stays near
      its floor; under a regime shift the ratio jumps and the filter
      relaxes toward its ceiling, so the admission layer does not
      starve the model of the very samples describing the new regime.

    The tuner is called by its owning
    :class:`~repro.serving.ingest.IngestPipeline` under the pipeline
    lock (one tuner per pipeline), so it needs no locking of its own.

    Parameters
    ----------
    evaluator:
        The :class:`OnlineEvaluator` whose window is the signal.
    clip_k:
        Step-clip multiplier on the residual MAD.
    base_sigma:
        Sigma multiplier corresponding to a unit residual/value ratio.
    sigma_floor, sigma_ceil:
        Clamp range of the derived sigma multiplier.
    min_samples:
        Window samples required before thresholds are derived.
    interval:
        Observed samples between re-derivations.
    """

    def __init__(
        self,
        evaluator: OnlineEvaluator,
        *,
        clip_k: float = 4.0,
        base_sigma: float = 4.0,
        sigma_floor: float = 2.0,
        sigma_ceil: float = 16.0,
        min_samples: int = 100,
        interval: int = 256,
    ) -> None:
        if clip_k <= 0:
            raise ValueError(f"clip_k must be positive, got {clip_k}")
        if not 0 < sigma_floor <= sigma_ceil:
            raise ValueError(
                f"need 0 < sigma_floor <= sigma_ceil, got "
                f"[{sigma_floor}, {sigma_ceil}]"
            )
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples}")
        # the PeriodicController mark is the evaluator's observed-sample
        # count, so the tuner re-derives every `interval` observations
        super().__init__(interval=int(interval), min_samples=int(min_samples))
        self.evaluator = evaluator
        self.clip_k = float(clip_k)
        self.base_sigma = float(base_sigma)
        self.sigma_floor = float(sigma_floor)
        self.sigma_ceil = float(sigma_ceil)
        self.step_clip: Optional[float] = None
        self.sigma: Optional[float] = None

    def thresholds(self) -> "tuple[Optional[float], Optional[float]]":
        """Derive ``(step_clip, sigma)`` from the current window.

        Returns ``(None, None)`` while the window is too small or
        degenerate (zero residual spread) to defend a threshold.
        """
        estimates, truth = self.evaluator.window_arrays()
        if truth.size < self.min_samples:
            return None, None
        mad_residual = _scaled_mad(estimates - truth)
        if mad_residual <= 0:
            return None, None
        step_clip = self.clip_k * mad_residual
        mad_value = _scaled_mad(truth)
        ratio = mad_residual / max(mad_value, 1e-12)
        sigma = float(
            np.clip(
                self.base_sigma * (0.5 + ratio),
                self.sigma_floor,
                self.sigma_ceil,
            )
        )
        return step_clip, sigma

    def maybe_update(self, pipeline) -> bool:
        """Re-derive and install thresholds if an interval elapsed.

        Called by the pipeline after each evaluated batch (under the
        pipeline lock); installs ``step_clip`` on the pipeline and
        ``sigma`` on every :class:`RobustSigmaFilter` of its guard.
        Returns whether thresholds were (re)installed.
        """
        if not self._due(self.evaluator.observed):
            return False
        step_clip, sigma = self.thresholds()
        if step_clip is None:
            return False
        self.step_clip = pipeline.step_clip = step_clip
        self.sigma = sigma
        guard = pipeline.guard
        if guard is not None:
            for flt in guard.filters:
                if isinstance(flt, RobustSigmaFilter):
                    flt.sigma = sigma
                    flt._cached = None  # recompute radius on next batch
        self._record_update()
        return True

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready tuner state (the ``adaptive`` guard stats)."""
        return {
            "updates": self.updates,
            "step_clip": self.step_clip,
            "sigma": self.sigma,
            "clip_k": self.clip_k,
            "interval": self.interval,
            "min_samples": self.min_samples,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveGuardTuner(updates={self.updates}, "
            f"step_clip={self.step_clip}, sigma={self.sigma})"
        )


class BackgroundCheckpointer:
    """Periodic background checkpointing of a :class:`CoordinateStore`.

    A daemon thread saves the store every ``interval`` seconds — but
    only when the published version advanced, so an idle service does
    not rewrite an identical file.  ``start()``/``stop()`` (or the
    context manager) bound the thread's lifetime;
    :meth:`checkpoint_now` forces a synchronous save.

    Parameters
    ----------
    store:
        The store to checkpoint (its ``save``/``load`` round-trips the
        factors and version).
    path:
        Destination ``.npz`` path, overwritten on every save.
    interval:
        Seconds between background save attempts.
    """

    def __init__(self, store, path, *, interval: float = 60.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.store = store
        self.path = path
        self.interval = float(interval)
        self.written = 0
        self.failures = 0
        self.last_error: Optional[str] = None
        self.last_version = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def checkpoint_now(self, *, force: bool = False) -> bool:
        """Save immediately; skipped (False) when the version is stale.

        A failed save (bad path, full disk) never raises and never
        kills the background thread: it is counted in :attr:`failures`
        with the message kept in :attr:`last_error`, both visible in
        ``/stats`` so a silently-dead checkpoint cannot go unnoticed.
        """
        version = self.store.version
        if not force and version == self.last_version:
            return False
        try:
            self.store.save(self.path)
        except OSError as exc:
            self.failures += 1
            self.last_error = str(exc)
            return False
        self.written += 1
        self.last_version = version
        self.last_error = None
        return True

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.checkpoint_now()

    def start(self) -> "BackgroundCheckpointer":
        """Start the background thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("checkpointer already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-checkpointer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, final_checkpoint: bool = True) -> None:
        """Stop the thread; writes a last checkpoint by default."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_checkpoint:
            self.checkpoint_now()

    def __enter__(self) -> "BackgroundCheckpointer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready state (the ``checkpoint`` stats section)."""
        import os

        return {
            "path": os.fspath(self.path),
            "interval": self.interval,
            "written": self.written,
            "failures": self.failures,
            "last_error": self.last_error,
            "last_version": self.last_version,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BackgroundCheckpointer(path={self.path!r}, "
            f"interval={self.interval}, written={self.written})"
        )
