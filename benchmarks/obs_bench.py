"""Telemetry overhead benchmark (shared measurement module).

Used by ``benchmarks/test_obs_smoke.py`` (tier-1, writes
``BENCH_obs.json``) and by ``benchmarks/compare.py --check`` (the CI
regression gate).  Prices the observability plane on the ingest hot
path — the same duplicate-heavy stream as ``BENCH_scaleout.json``
through a 2-shard :class:`~repro.serving.shard.ShardedIngest` — in
three configurations:

* **uninstrumented** — no registry bound: chunks carry no metadata and
  every telemetry hook is one ``is None`` branch;
* **instrumented** — a :class:`~repro.obs.metrics.MetricsRegistry`
  bound (queue-wait + apply latency histograms recorded per chunk),
  tracing still off.  The acceptance gate: this must stay within
  ``OBS_OVERHEAD_CEILING`` (5%) of the uninstrumented run;
* **traced** — registry bound *and* the module-global tracer armed,
  one span minted per submitted batch (the gateway's behaviour),
  recorded for the books.

Methodology: both ingests run **inline** (workers closed, so submits
apply on the caller thread — the identical routing + instrumented
apply code path minus thread-scheduler noise), and each trial
interleaves the two configurations *batch by batch*, accumulating
separate time sums.  Machine noise — frequency steps, neighbour
interference — lands on both accumulators almost equally, so the
per-trial ratio is stable where whole-pass pairing is not; the gate
takes the median ratio over ``TRIALS``.  A same-run comparison on one
machine, so the gate is absolute — no core-count calibration.

The instrumented run's quantile summary (what ``/stats`` serves as
``obs``) is committed too; ``--check`` requires the p99 keys to be
present so the scrape surface cannot silently lose its latency
families.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import DMFSGDConfig  # noqa: E402
from repro.core.engine import DMFSGDEngine, null_label_fn  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402
from repro.obs import tracing  # noqa: E402
from repro.serving.shard import (  # noqa: E402
    ShardedCoordinateStore,
    ShardedIngest,
)

SEED = 20111206
NODES = 500
RANK = 10
SAMPLES = 120_000
BATCH = 1024
HOT_FRACTION = 0.3
SHARDS = 2
TRIALS = 5
SUMMARY_PATH = REPO_ROOT / "BENCH_obs.json"

#: the acceptance ceiling: instrumented ingest vs uninstrumented,
#: median of TRIALS batch-interleaved paired ratios (absolute gate)
OBS_OVERHEAD_CEILING = 1.05

#: histogram families whose p99 keys --check requires in the summary
QUANTILE_FAMILIES = (
    "repro_ingest_queue_wait_seconds",
    "repro_ingest_apply_seconds",
)


def _stream(rng):
    """The ingest-guard bench's duplicate-heavy admission stream."""
    sources = rng.integers(0, NODES, size=SAMPLES)
    targets = (sources + 1 + rng.integers(0, NODES - 1, size=SAMPLES)) % NODES
    hot = rng.random(SAMPLES) < HOT_FRACTION
    sources[hot], targets[hot] = 3, 7
    values = rng.choice([-1.0, 1.0], size=SAMPLES)
    return sources, targets, values


def _engine(seed=1):
    config = DMFSGDConfig(neighbors=8)
    return DMFSGDEngine(NODES, null_label_fn, config, rng=seed)


def _inline_ingest(registry=None) -> ShardedIngest:
    """A closed (worker-less) sharded ingest: submits apply inline."""
    engine = _engine()
    store = ShardedCoordinateStore(engine.coordinates, shards=SHARDS)
    ingest = ShardedIngest(
        engine,
        store,
        batch_size=BATCH,
        refresh_interval=10 * BATCH,
        step_clip=0.1,
        queue_depth=256,
    )
    ingest.close()
    if registry is not None:
        ingest.bind_obs(registry)
    return ingest


def bench_pair(sources, targets, values, registry) -> "tuple[float, float]":
    """One interleaved trial: (plain_seconds, instrumented_seconds)."""
    plain = _inline_ingest()
    instr = _inline_ingest(registry)
    t_plain = t_instr = 0.0
    for lo in range(0, SAMPLES, BATCH):
        s = sources[lo : lo + BATCH]
        t = targets[lo : lo + BATCH]
        v = values[lo : lo + BATCH]
        start = time.perf_counter()
        plain.submit_many(s, t, v)
        t_plain += time.perf_counter() - start
        start = time.perf_counter()
        instr.submit_many(s, t, v)
        t_instr += time.perf_counter() - start
    plain.flush()
    instr.flush()
    return t_plain, t_instr


def bench_traced(sources, targets, values, registry) -> dict:
    """The traced configuration: one span per batch, for the books."""
    tracer = tracing.install()
    try:
        ingest = _inline_ingest(registry)
        start = time.perf_counter()
        for lo in range(0, SAMPLES, BATCH):
            accept_us = tracing.now_us()
            span_id = tracer.begin(
                route="/ingest",
                samples=min(BATCH, SAMPLES - lo),
                accept_us=accept_us,
            )
            tracing.set_context(span_id, accept_us)
            try:
                ingest.submit_many(
                    sources[lo : lo + BATCH],
                    targets[lo : lo + BATCH],
                    values[lo : lo + BATCH],
                )
            finally:
                tracing.clear_context()
        ingest.publish()  # complete the tail spans' publish stamps
        elapsed = time.perf_counter() - start
        return {
            "traced_mps": SAMPLES / elapsed,
            "trace_spans_started": tracer.started,
            "trace_spans_completed": tracer.completed,
        }
    finally:
        tracing.uninstall()


def run() -> dict:
    rng = np.random.default_rng(SEED)
    sources, targets, values = _stream(rng)
    registry = MetricsRegistry()

    plain_s = []
    instr_s = []
    for _ in range(TRIALS):
        t_plain, t_instr = bench_pair(sources, targets, values, registry)
        plain_s.append(t_plain)
        instr_s.append(t_instr)
    ratios = sorted(i / p for p, i in zip(plain_s, instr_s))
    overhead = ratios[len(ratios) // 2]

    traced = bench_traced(sources, targets, values, registry)

    quantiles = registry.summary()
    best_plain = SAMPLES / min(plain_s)
    best_instr = SAMPLES / min(instr_s)
    return {
        "cpu_count": os.cpu_count() or 1,
        "notices": [],
        "nodes": NODES,
        "rank": RANK,
        "samples": SAMPLES,
        "hot_fraction": HOT_FRACTION,
        "seed": SEED,
        "shards": SHARDS,
        "trials": TRIALS,
        "uninstrumented_mps": best_plain,
        "instrumented_mps": best_instr,
        "overhead_ratio": overhead,
        "overhead_ratios": ratios,
        **traced,
        "traced_overhead_ratio": (
            best_plain / traced["traced_mps"]
            if traced["traced_mps"]
            else float("inf")
        ),
        "quantiles": quantiles,
    }


def format_rows(result: dict) -> list:
    rows = [
        [
            "ingest, uninstrumented",
            f"{result['uninstrumented_mps']:,.0f} mps",
        ],
        [
            "ingest, instrumented",
            f"{result['instrumented_mps']:,.0f} mps",
        ],
        [
            "instrumentation overhead (median)",
            f"{result['overhead_ratio']:.3f}x",
        ],
        ["ingest, traced", f"{result['traced_mps']:,.0f} mps"],
        [
            "trace spans completed",
            f"{result['trace_spans_completed']}"
            f"/{result['trace_spans_started']}",
        ],
    ]
    for family in QUANTILE_FAMILIES:
        entry = result["quantiles"].get(family, {})
        if "p99" in entry:
            rows.append(
                [f"{family} p99", f"{entry['p99'] * 1e3:.3f} ms"]
            )
    return rows


def main() -> int:  # pragma: no cover - manual invocation
    import json

    from repro.utils.tables import format_table

    result = run()
    print(format_table(format_rows(result), headers=["obs", "value"]))
    SUMMARY_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {SUMMARY_PATH}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
