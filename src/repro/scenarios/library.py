"""The named scenario matrix.

Six internet-scale workload shapes, each built from the simnet drivers
as primitives and replayed tick-deterministically by
:mod:`repro.scenarios.runner` (paper Section 6 evaluates against
exactly these axes: replayed latency matrices, streamed measurements,
skewed hot traffic, drifting distributions, malicious reporters and
churn):

========== =============================================================
name       workload
========== =============================================================
diurnal    sinusoidal load curve with the hot pair rotating every few
           ticks (:class:`~repro.simnet.livefeed.HotPairDriver`)
flash_crowd calm -> burst -> settle with scheduled ``set_shards``
           split/merge events under load; the realtime autopilot
           split/merge gate (:mod:`repro.scenarios.flashcrowd`) rides
           along on the thread plane
drift      geo-correlated latency drift: region-block factors re-drawn
           on a schedule and applied to the feeder's quantity matrix
poison     Byzantine feeders (:class:`~repro.simnet.livefeed.ByzantineDriver`)
           the static/adaptive AdmissionGuard must shed
churn_storm partition-then-heal: a burst of leaves, then joins, pricing
           the two-phase membership epoch on both planes
replay     a Meridian/P2PSim-shaped matrix and a Harvard-shaped stream
           replayed through the datasets trace loaders
========== =============================================================

Every scenario here must keep availability >= 99.9%, read zero torn
snapshots and never observe a version rewind — the standing invariants
``compare.py --check`` gates per scenario and per worker mode.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.engine import (
    BurstLoad,
    ConstantLoad,
    EventSpec,
    Phase,
    Scenario,
    SineLoad,
)

__all__ = ["SCENARIOS", "get_scenario", "scenario_names"]


def _diurnal() -> Scenario:
    period = 32
    return Scenario(
        name="diurnal",
        description=(
            "sinusoidal offered load with the hot pair rotating — the "
            "day/night cycle of measurement traffic with a moving hot spot"
        ),
        phases=(
            Phase(
                name="dawn",
                ticks=12,
                load=SineLoad(base=140, amplitude=60, period=period),
                traffic="hot_pair",
                traffic_params={"background": 0.6},
                events=(
                    EventSpec(
                        action="rotate_hot_pair",
                        every=6,
                        offset=3,
                        draw_nodes=2,
                    ),
                ),
            ),
            Phase(
                name="peak",
                ticks=32,
                load=SineLoad(
                    base=260, amplitude=140, period=period, phase_shift=12
                ),
                traffic="hot_pair",
                traffic_params={"background": 0.5},
                events=(
                    EventSpec(
                        action="rotate_hot_pair",
                        every=8,
                        offset=4,
                        draw_nodes=2,
                    ),
                ),
            ),
            Phase(
                name="dusk",
                ticks=16,
                load=SineLoad(
                    base=140, amplitude=60, period=period, phase_shift=44
                ),
                traffic="hot_pair",
                traffic_params={"background": 0.7},
            ),
        ),
    )


def _flash_crowd() -> Scenario:
    return Scenario(
        name="flash_crowd",
        description=(
            "calm -> flash burst -> settle, with scheduled split/merge "
            "topology transitions priced under load (the realtime "
            "autopilot gate rides along on the thread plane)"
        ),
        shards=1,
        supports_cluster=False,
        phases=(
            Phase(
                name="calm",
                ticks=10,
                load=ConstantLoad(80),
                traffic="uniform",
            ),
            Phase(
                name="flash",
                ticks=20,
                load=BurstLoad(quiet=100, burst=640, start=2, stop=18),
                traffic="hot_pair",
                traffic_params={"background": 0.3},
                events=(
                    EventSpec(
                        action="set_shards", at=(4,), params={"target": 2}
                    ),
                    EventSpec(
                        action="set_shards", at=(10,), params={"target": 4}
                    ),
                ),
            ),
            Phase(
                name="settle",
                ticks=14,
                load=ConstantLoad(60),
                traffic="uniform",
                events=(
                    EventSpec(
                        action="set_shards", at=(4,), params={"target": 2}
                    ),
                    EventSpec(
                        action="set_shards", at=(10,), params={"target": 1}
                    ),
                ),
            ),
        ),
    )


def _drift() -> Scenario:
    return Scenario(
        name="drift",
        description=(
            "geo-correlated latency drift: the feeder's ground-truth "
            "matrix shifts by region-block factors on a seeded schedule"
        ),
        phases=(
            Phase(
                name="baseline",
                ticks=12,
                load=ConstantLoad(180),
                traffic="drift",
                traffic_params={"jitter": 0.08},
            ),
            Phase(
                name="drifting",
                ticks=28,
                load=ConstantLoad(220),
                traffic="drift",
                traffic_params={"jitter": 0.08},
                events=(
                    EventSpec(action="drift_step", every=4, draws=1),
                ),
            ),
            Phase(
                name="settled",
                ticks=8,
                load=ConstantLoad(160),
                traffic="drift",
                traffic_params={"jitter": 0.08},
            ),
        ),
    )


def _poison() -> Scenario:
    return Scenario(
        name="poison",
        description=(
            "Byzantine feeders: a fixed liar set reports scaled values "
            "and garbage the admission guard must shed (rejected_guard "
            "vs dropped_invalid, within declared bounds)"
        ),
        guard="static",
        phases=(
            Phase(
                name="honest",
                ticks=12,
                load=ConstantLoad(200),
                traffic="poison",
                traffic_params={"liar_fraction": 0.0},
            ),
            Phase(
                name="attack",
                ticks=24,
                load=ConstantLoad(260),
                traffic="poison",
                traffic_params={
                    "liar_fraction": 0.10,
                    "scale": 40.0,
                    "garbage_rate": 0.25,
                },
            ),
            Phase(
                name="recovery",
                ticks=12,
                load=ConstantLoad(200),
                traffic="poison",
                traffic_params={"liar_fraction": 0.0},
            ),
        ),
    )


def _churn_storm() -> Scenario:
    return Scenario(
        name="churn_storm",
        description=(
            "partition-then-heal: a burst of leaves then joins through "
            "the membership manager, pricing the two-phase epoch on "
            "both worker planes"
        ),
        membership=True,
        supports_cluster=False,
        phases=(
            Phase(
                name="calm",
                ticks=6,
                load=ConstantLoad(120),
                traffic="uniform",
            ),
            Phase(
                name="partition",
                ticks=16,
                load=ConstantLoad(150),
                traffic="uniform",
                events=(
                    EventSpec(
                        action="leave",
                        count=8,
                        draw_nodes=1,
                        node_low=32,
                    ),
                ),
            ),
            Phase(
                name="heal",
                ticks=16,
                load=ConstantLoad(150),
                traffic="uniform",
                events=(
                    EventSpec(action="join", count=8),
                ),
            ),
            Phase(
                name="steady",
                ticks=6,
                load=ConstantLoad(120),
                traffic="uniform",
            ),
        ),
    )


def _replay() -> Scenario:
    return Scenario(
        name="replay",
        description=(
            "public-dataset replay: a Meridian/P2PSim-shaped static "
            "matrix streamed as a trace, then a Harvard-shaped "
            "timestamped stream, through the datasets trace loaders"
        ),
        phases=(
            Phase(
                name="meridian",
                ticks=20,
                load=ConstantLoad(280),
                traffic="trace",
                traffic_params={"source": "meridian"},
            ),
            Phase(
                name="harvard",
                ticks=20,
                load=ConstantLoad(280),
                traffic="trace",
                traffic_params={"source": "harvard"},
            ),
        ),
    )


def _build_all() -> Dict[str, Scenario]:
    scenarios = [
        _diurnal(),
        _flash_crowd(),
        _drift(),
        _poison(),
        _churn_storm(),
        _replay(),
    ]
    return {scenario.name: scenario for scenario in scenarios}


#: every named scenario, keyed by name
SCENARIOS: Dict[str, Scenario] = _build_all()


def scenario_names() -> List[str]:
    """The registered scenario names, in registration order."""
    return list(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a named scenario (clear error with the known names)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; "
            f"known scenarios: {', '.join(SCENARIOS)}"
        ) from None
