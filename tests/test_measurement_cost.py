"""Tests for measurement-cost accounting."""

import pytest

from repro.measurement.cost import (
    TOOL_COSTS,
    acquisition_cost,
    cost_table,
)


class TestToolCosts:
    def test_all_tools_have_both_kinds(self):
        for tool, kinds in TOOL_COSTS.items():
            assert set(kinds) == {"class", "quantity"}

    @pytest.mark.parametrize("tool", ["pathload", "pathchirp"])
    def test_abw_class_cheaper_than_quantity(self, tool):
        """The Section 3.2 claim: class measures cost less."""
        assert (
            TOOL_COSTS[tool]["class"].bytes
            < TOOL_COSTS[tool]["quantity"].bytes
        )

    def test_ping_class_equals_quantity(self):
        """RTT classes come from thresholding the value: same cost."""
        assert (
            TOOL_COSTS["ping"]["class"].bytes
            == TOOL_COSTS["ping"]["quantity"].bytes
        )

    def test_abw_far_costlier_than_rtt(self):
        """Compared to RTT, measuring ABW is much more costly (3.1.2)."""
        assert (
            TOOL_COSTS["pathload"]["class"].bytes
            > 100 * TOOL_COSTS["ping"]["class"].bytes
        )

    def test_yields_quantity_flags(self):
        assert not TOOL_COSTS["pathload"]["class"].yields_quantity
        assert TOOL_COSTS["pathload"]["quantity"].yields_quantity


class TestAcquisitionCost:
    def test_scales_with_paths(self):
        small = acquisition_cost(100, 10, "pathload", "class")
        large = acquisition_cost(100, 20, "pathload", "class")
        assert large.bytes == 2 * small.bytes

    def test_full_mesh(self):
        mesh = acquisition_cost(50, 10, "ping", "class", full_mesh=True)
        per_path = TOOL_COSTS["ping"]["class"].bytes
        assert mesh.bytes == 50 * 49 * per_path

    def test_rounds_multiply(self):
        one = acquisition_cost(50, 10, "ping", "class")
        five = acquisition_cost(50, 10, "ping", "class", rounds=5)
        assert five.bytes == 5 * one.bytes

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            acquisition_cost(1, 1, "ping", "class")
        with pytest.raises(ValueError):
            acquisition_cost(10, 0, "ping", "class")
        with pytest.raises(ValueError):
            acquisition_cost(10, 5, "ping", "class", rounds=0)
        with pytest.raises(ValueError):
            acquisition_cost(10, 5, "traceroute", "class")
        with pytest.raises(ValueError):
            acquisition_cost(10, 5, "ping", "exact")


class TestCostTable:
    def test_headline_ratios(self):
        table = cost_table(2500, 32)
        # class probing is an order of magnitude cheaper than quantity
        assert table["class_vs_quantity"] == pytest.approx(12.0)
        # DMFSGD probes n*k of n*(n-1) pairs
        assert table["dmfsgd_vs_full_mesh"] == pytest.approx(2499 / 32)

    def test_combined_reduction_is_large(self):
        """The paper's overall pitch: class-based DMFSGD vs full-mesh
        quantity estimation is a two-orders-of-magnitude saving."""
        table = cost_table(2500, 32)
        combined = (
            table["full_mesh_quantity_bytes"] / table["dmfsgd_class_bytes"]
        )
        assert combined > 500

    def test_bytes_consistent(self):
        table = cost_table(100, 10)
        assert (
            table["dmfsgd_quantity_bytes"]
            == table["class_vs_quantity"] * table["dmfsgd_class_bytes"]
        )
