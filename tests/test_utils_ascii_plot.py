"""Tests for the ASCII plot renderer."""

import numpy as np
import pytest

from repro.utils.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_contains_markers(self):
        text = ascii_plot({"a": ([0, 1, 2], [0, 1, 2])})
        assert "*" in text

    def test_legend_lists_series(self):
        text = ascii_plot(
            {"first": ([0, 1], [0, 1]), "second": ([0, 1], [1, 0])}
        )
        assert "first" in text and "second" in text
        assert "* first" in text and "o second" in text

    def test_title_and_labels(self):
        text = ascii_plot(
            {"a": ([0, 1], [0, 1])},
            title="My Plot",
            xlabel="x axis",
            ylabel="y axis",
        )
        assert "My Plot" in text
        assert "x axis" in text
        assert "y: y axis" in text

    def test_y_range_respected(self):
        text = ascii_plot({"a": ([0, 1], [0.2, 0.4])}, y_range=(0.0, 1.0))
        first_axis_value = float(text.splitlines()[0].split("|")[0])
        assert first_axis_value == pytest.approx(1.0)

    def test_rising_series_orientation(self):
        text = ascii_plot({"a": ([0, 1, 2, 3], [0, 1, 2, 3])}, height=8, width=20)
        rows = [line.split("|", 1)[1] for line in text.splitlines() if "|" in line]
        top_marker_col = rows[0].index("*")
        bottom_marker_col = rows[-1].index("*")
        assert top_marker_col > bottom_marker_col  # rises left to right

    def test_nan_points_skipped(self):
        text = ascii_plot({"a": ([0, 1, 2], [0.0, np.nan, 2.0])})
        assert "*" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_rejects_all_nan_series(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": ([0.0], [np.nan])})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": ([0, 1], [0, 1])}, width=5, height=2)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": ([0, 1], [0, 1, 2])})

    def test_constant_series_ok(self):
        text = ascii_plot({"flat": ([0, 1, 2], [1.0, 1.0, 1.0])})
        assert "*" in text
