"""Bench for paper Fig. 6 — robustness against erroneous labels.

Shapes checked, per the paper's discussion:

* near-threshold errors (Type 1 on all datasets, Type 2 on HP-S3) have
  *limited* impact: AUC at 15% corruption stays within 0.08 of clean;
* random errors (Types 3 and 4) hurt more than near-threshold errors
  at the same 15% level;
* AUC decreases (weakly) with the error level for the random types.
"""

from repro.experiments import fig6_robustness
from repro.experiments.fig6_robustness import ERROR_LEVELS, ERROR_TYPES


def test_fig6_robustness(run_once, report):
    result = run_once(fig6_robustness.run)
    report("Fig. 6 — AUC vs erroneous labels", fig6_robustness.format_result(result))

    auc = result["auc"]
    for name in result["datasets"]:
        clean = auc[(name, ERROR_TYPES[name][0], 0.0)]

        # near-tau errors barely move the needle
        assert clean - auc[(name, 1, 0.15)] < 0.10, (
            f"{name}: Type 1 hurt too much"
        )
        if 2 in ERROR_TYPES[name]:
            assert clean - auc[(name, 2, 0.15)] < 0.10, (
                f"{name}: Type 2 hurt too much"
            )

        # random corruption is the damaging kind
        random_types = [t for t in ERROR_TYPES[name] if t in (3, 4)]
        for error_type in random_types:
            assert auc[(name, error_type, 0.15)] < auc[(name, 1, 0.15)] + 0.02, (
                f"{name}: Type {error_type} should hurt more than Type 1"
            )
            # degradation grows with the level (tolerating sim noise)
            assert (
                auc[(name, error_type, 0.15)]
                <= auc[(name, error_type, 0.0)] + 0.01
            )
