"""Fig. 3 — AUC under different learning rates and regularizations.

The paper sweeps ``eta`` in {0.001, 0.01, 0.1, 1.0} (with lambda = 0.1)
and ``lambda`` over the same grid (with eta = 0.1), for the hinge and
logistic losses, on all three datasets (r = 10, k = 10/32/10, tau =
median).

Expected shapes:

* AUC peaks around eta = 0.1 — too small converges too slowly within
  the probe budget, too large oscillates;
* AUC is flat-ish in lambda until 1.0, where over-regularization bites;
* the logistic loss outperforms (or matches) the hinge loss in most
  cells;
* at the default (0.1, 0.1, logistic) every dataset exceeds 0.9 AUC.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import (
    DATASET_NAMES,
    DEFAULT_SEED,
    train_classifier,
)
from repro.utils.tables import format_table

__all__ = ["run", "format_result", "GRID", "LOSSES"]

#: The sweep grid of the paper.
GRID = (0.001, 0.01, 0.1, 1.0)

#: Classification losses compared.
LOSSES = ("logistic", "hinge")


def run(
    seed: int = DEFAULT_SEED,
    *,
    datasets: tuple = DATASET_NAMES,
    grid: tuple = GRID,
) -> Dict[str, object]:
    """Run both sweeps.

    Returns
    -------
    dict
        ``eta_sweep`` and ``lambda_sweep``: mappings
        ``(dataset, loss, value) -> auc``.
    """
    eta_sweep: Dict[tuple, float] = {}
    lambda_sweep: Dict[tuple, float] = {}
    for name in datasets:
        for loss in LOSSES:
            for value in grid:
                run_eta = train_classifier(
                    name,
                    seed=seed,
                    loss=loss,
                    learning_rate=value,
                    regularization=0.1,
                )
                eta_sweep[(name, loss, value)] = run_eta.auc
                run_lambda = train_classifier(
                    name,
                    seed=seed,
                    loss=loss,
                    learning_rate=0.1,
                    regularization=value,
                )
                lambda_sweep[(name, loss, value)] = run_lambda.auc
    return {
        "eta_sweep": eta_sweep,
        "lambda_sweep": lambda_sweep,
        "datasets": tuple(datasets),
        "grid": tuple(grid),
    }


def _sweep_table(
    sweep: Dict[tuple, float], parameter: str, datasets, grid
) -> str:
    headers = [parameter] + [
        f"{name}/{loss}" for name in datasets for loss in LOSSES
    ]
    rows: List[List[object]] = []
    for value in grid:
        row: List[object] = [value]
        for name in datasets:
            for loss in LOSSES:
                row.append(sweep[(name, loss, value)])
        rows.append(row)
    return format_table(rows, headers=headers, float_fmt=".3f")


def format_result(result: Dict[str, object]) -> str:
    """Render both sweeps as AUC tables."""
    datasets = result["datasets"]
    grid = result["grid"]
    eta = _sweep_table(result["eta_sweep"], "eta", datasets, grid)
    lam = _sweep_table(result["lambda_sweep"], "lambda", datasets, grid)
    return (
        "AUC vs eta (lambda=0.1):\n"
        + eta
        + "\n\nAUC vs lambda (eta=0.1):\n"
        + lam
    )
