"""Evaluation criteria (paper Section 6.1) and matrix-rank analysis.

* :mod:`repro.evaluation.roc` — ROC curves and AUC (the paper's primary
  accuracy criterion).
* :mod:`repro.evaluation.precision_recall` — precision-recall curves.
* :mod:`repro.evaluation.confusion` — confusion matrices and accuracy
  rates (Table 2).
* :mod:`repro.evaluation.rank` — singular-value spectra and effective
  rank (Fig. 1).
* :mod:`repro.evaluation.stretch` — peer-selection stretch and
  satisfaction criteria (Section 6.4).
"""

from repro.evaluation.calibration import (
    brier_score,
    expected_calibration_error,
    predicted_probability,
    reliability_curve,
)
from repro.evaluation.confusion import (
    ConfusionMatrix,
    accuracy_score,
    confusion_matrix,
)
from repro.evaluation.precision_recall import (
    average_precision,
    precision_recall_curve,
)
from repro.evaluation.rank import (
    effective_rank,
    low_rank_relative_error,
    normalized_singular_values,
)
from repro.evaluation.roc import auc_score, roc_curve
from repro.evaluation.significance import (
    BootstrapResult,
    auc_confidence_interval,
    bootstrap_metric,
)
from repro.evaluation.stretch import stretch_ratio, unsatisfied

__all__ = [
    "roc_curve",
    "auc_score",
    "precision_recall_curve",
    "average_precision",
    "confusion_matrix",
    "ConfusionMatrix",
    "accuracy_score",
    "normalized_singular_values",
    "effective_rank",
    "low_rank_relative_error",
    "stretch_ratio",
    "unsatisfied",
    "predicted_probability",
    "brier_score",
    "reliability_curve",
    "expected_calibration_error",
    "BootstrapResult",
    "bootstrap_metric",
    "auc_confidence_interval",
]
