#!/usr/bin/env python
"""Live RTT-class monitoring from a passive measurement stream.

Replays the Harvard-like dynamic trace — four hours of timestamped
application-level RTT measurements between Azureus-style clients, with
strongly uneven per-pair probing — through DMFSGD in time order.  The
convergence curve (AUC vs measurements consumed per node) is rendered
in the terminal; this is Fig. 5(c) as a living system rather than a
bench table.

Run:
    python examples/dynamic_monitoring.py
"""

from repro.core import DMFSGDConfig, DMFSGDEngine, matrix_label_fn
from repro.datasets import load_harvard
from repro.evaluation import auc_score
from repro.measurement import ThresholdClassifier
from repro.utils.ascii_plot import ascii_plot

SEED = 3


def main() -> None:
    bundle = load_harvard(n_samples=400_000, rng=SEED)
    dataset, trace = bundle.dataset, bundle.trace
    tau = dataset.median()
    print(f"dataset : {dataset}")
    print(
        f"trace   : {len(trace)} measurements over "
        f"{trace.duration / 3600:.1f} h, tau = {tau:.0f} ms"
    )
    counts = trace.measurement_counts()
    print(
        f"per-node probing skew: min={counts.min()} "
        f"median={int(sorted(counts)[len(counts) // 2])} max={counts.max()}"
    )

    truth = dataset.class_matrix(tau)
    config = DMFSGDConfig.paper_defaults("harvard")
    engine = DMFSGDEngine(
        dataset.n, matrix_label_fn(truth), config, metric="rtt", rng=SEED
    )

    def evaluator(table):
        return {"auc": auc_score(truth, table.estimate_matrix())}

    # classes are decided per measurement, jitter and spikes included —
    # the learner never sees the ground-truth medians
    result = engine.run_trace(
        trace,
        ThresholdClassifier("rtt", tau),
        batch_size=256,
        evaluator=evaluator,
        eval_every_batches=60,
    )

    xs, ys = result.history.per_node_in_k("auc")
    print()
    print(
        ascii_plot(
            {"harvard": (xs, ys)},
            title="AUC vs measurements per node (x k)",
            xlabel="measurements per node, in units of k",
            ylabel="AUC",
            y_range=(0.5, 1.0),
        )
    )
    print(f"\nfinal AUC: {ys[-1]:.3f}")


if __name__ == "__main__":
    main()
