"""Table 2 — accuracy rates and confusion matrices at the defaults.

The paper reports (taking the sign of ``xhat`` as the predicted class):

=========  ========  ==============  =============
dataset    accuracy  good->good      bad->bad
=========  ========  ==============  =============
Harvard    89.4%     93.6%           85.3%
Meridian   85.4%     88.5%           82.2%
HP-S3      87.3%     93.5%           81.1%
=========  ========  ==============  =============

Expected shape: accuracies in the mid-80s to low-90s, with the good
class slightly easier than the bad class (the diagonal dominating both
rows).
"""

from __future__ import annotations

from typing import Dict

from repro.evaluation import confusion_matrix
from repro.experiments.common import (
    DATASET_NAMES,
    DEFAULT_SEED,
    train_classifier,
)

__all__ = ["run", "format_result", "PAPER_ACCURACY"]

#: The paper's reported accuracy rates, for EXPERIMENTS.md comparisons.
PAPER_ACCURACY = {"harvard": 0.894, "meridian": 0.854, "hps3": 0.873}


def run(
    seed: int = DEFAULT_SEED, *, datasets: tuple = DATASET_NAMES
) -> Dict[str, object]:
    """Train at defaults and compute the confusion matrices.

    Returns
    -------
    dict
        per dataset: the :class:`~repro.evaluation.confusion.ConfusionMatrix`.
    """
    out: Dict[str, object] = {"datasets": tuple(datasets)}
    for name in datasets:
        run_info = train_classifier(
            name, seed=seed, use_trace=(name == "harvard")
        )
        predicted = run_info.result.predicted_classes()
        out[name] = confusion_matrix(run_info.truth_labels, predicted)
    return out


def format_result(result: Dict[str, object]) -> str:
    """Render each dataset's confusion matrix in the paper's layout."""
    sections = []
    for name in result["datasets"]:
        matrix = result[name]
        paper = PAPER_ACCURACY.get(name)
        note = f" (paper: {paper * 100:.1f}%)" if paper else ""
        sections.append(f"[{name}]{note}\n{matrix.as_text()}")
    return "\n\n".join(sections)
