"""Assembly of a complete serving stack from a dataset name.

``repro serve`` (and the examples) need the whole chain — dataset,
pre-trained engine, store, service, ingest, gateway — wired
consistently; :func:`build_gateway` is that one-stop constructor.  The
returned gateway is not yet started, so callers choose between
:meth:`~repro.serving.gateway.ServingGateway.start` (background thread,
tests/examples) and
:meth:`~repro.serving.gateway.ServingGateway.serve_forever` (blocking,
CLI).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import DMFSGDConfig
from repro.core.engine import DMFSGDEngine, matrix_label_fn
from repro.measurement.classifier import ThresholdClassifier
from repro.serving.gateway import ServingGateway
from repro.serving.ingest import IngestPipeline
from repro.serving.service import PredictionService
from repro.serving.store import CoordinateStore

__all__ = ["build_gateway"]


def build_gateway(
    dataset: str = "meridian",
    *,
    nodes: Optional[int] = None,
    rounds: Optional[int] = None,
    good_fraction: Optional[float] = None,
    seed: int = 20111206,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_size: int = 4096,
    batch_size: int = 256,
    refresh_interval: int = 1000,
    checkpoint: Optional[str] = None,
    verbose: bool = False,
) -> ServingGateway:
    """Pre-train a model on a synthetic dataset and wrap it for serving.

    Parameters
    ----------
    dataset:
        ``"harvard"``, ``"meridian"`` or ``"hps3"``.
    nodes:
        Node count (the experiments' sweep size when omitted).
    rounds:
        Pre-training rounds (``20 * k``, the paper's convergence
        point, when omitted; 0 skips pre-training and serves the
        random initialization — useful to watch ingest learn live).
    good_fraction:
        Sets ``tau`` so this fraction of paths is good (median when
        omitted).
    checkpoint:
        Optional path to a :meth:`~repro.serving.store.CoordinateStore.save`
        checkpoint; when given, the factors are loaded instead of
        pre-trained (the dataset still provides the classifier's
        ``tau`` and the ingest dimensions).
    """
    from repro.experiments.common import PAPER_NEIGHBORS, get_dataset

    data = get_dataset(dataset, n_hosts=nodes, seed=seed)
    tau = (
        data.tau_for_good_fraction(good_fraction)
        if good_fraction is not None
        else data.median()
    )
    labels = data.class_matrix(tau)
    config = DMFSGDConfig.paper_defaults(dataset)
    engine = DMFSGDEngine(
        data.n,
        matrix_label_fn(labels),
        config,
        metric=data.metric,
        rng=seed,
    )
    if checkpoint is not None:
        store = CoordinateStore.load(checkpoint)
        if store.n != engine.n:
            raise ValueError(
                f"checkpoint has {store.n} nodes, dataset has {engine.n}"
            )
        engine.coordinates = store.snapshot().as_table()
    else:
        if rounds is None:
            rounds = 20 * PAPER_NEIGHBORS.get(dataset, config.neighbors)
        if rounds > 0:
            engine.run(rounds=rounds)
        store = CoordinateStore(engine.coordinates)

    service = PredictionService(store, cache_size=cache_size)
    ingest = IngestPipeline(
        engine,
        store,
        classify=ThresholdClassifier(data.metric, tau),
        batch_size=batch_size,
        refresh_interval=refresh_interval,
    )
    return ServingGateway(
        service, ingest, host=host, port=port, verbose=verbose
    )
