"""Virtual clock and event queue for discrete-event simulation.

A minimal, deterministic priority queue of timestamped callbacks.
Events at equal times fire in scheduling order (a monotonically
increasing sequence number breaks ties), which keeps simulations
reproducible across runs and platforms.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["ScheduledEvent", "EventQueue"]


@dataclass(order=True)
class ScheduledEvent:
    """An event in the queue, ordered by (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic discrete-event queue with a virtual clock."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self.now = 0.0
        self.processed = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        event = ScheduledEvent(
            time=self.now + delay, sequence=next(self._counter), callback=callback
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now={self.now}"
            )
        return self.schedule(time - self.now, callback)

    def step(self) -> bool:
        """Fire the next pending event; returns False when queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self.processed += 1
            return True
        return False

    def run_until(self, time: float, *, max_events: Optional[int] = None) -> int:
        """Fire all events up to virtual ``time``; returns events fired.

        ``max_events`` is a safety valve against runaway protocols.
        """
        fired = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > time:
                break
            self.step()
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        self.now = max(self.now, time)
        return fired

    def run(self, *, max_events: int = 1_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        fired = 0
        while fired < max_events and self.step():
            fired += 1
        return fired
