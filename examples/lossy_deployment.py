#!/usr/bin/env python
"""A DMFSGD deployment on an unreliable network.

Runs the message-level protocol (Algorithm 1) on the discrete-event
simulator with conditions a real overlay faces: one-way message latency
derived from the ground-truth RTTs themselves, 10% message loss, and
malicious label corruption (5% of paths report flipped classes).  The
point: the protocol is asynchronous and stateless per message, so loss
merely slows convergence, and random corruption degrades accuracy
gracefully (paper Section 6.3).

Run:
    python examples/lossy_deployment.py
"""

from repro.core import DMFSGDConfig
from repro.core.dmfsgd import DMFSGDSimulation, oracle_from_matrix
from repro.datasets import load_meridian
from repro.evaluation import auc_score
from repro.measurement.errors import FlipRandom
from repro.simnet.simulator import latency_from_rtt
from repro.utils.tables import format_table

SEED = 5


def run_deployment(labels, dataset, loss_rate: float) -> dict:
    simulation = DMFSGDSimulation(
        dataset.n,
        oracle_from_matrix(labels),
        DMFSGDConfig(neighbors=10),
        metric="rtt",
        probe_interval=1.0,
        latency=latency_from_rtt(dataset.quantities),
        loss_rate=loss_rate,
        rng=SEED,
    )
    simulation.run(duration=400.0)
    truth = dataset.class_matrix()
    return {
        "auc": auc_score(
            truth, simulation.coordinate_table().estimate_matrix()
        ),
        "measurements": simulation.measurements,
        "dropped": sum(simulation.network.messages_dropped.values()),
        "megabytes": simulation.network.bytes_sent / 1e6,
    }


def main() -> None:
    dataset = load_meridian(n_hosts=200, rng=SEED)
    clean = dataset.class_matrix()
    corrupted = FlipRandom(0.05).apply(clean, rng=SEED)

    scenarios = [
        ("ideal network, clean labels", clean, 0.0),
        ("10% message loss", clean, 0.10),
        ("10% loss + 5% flipped labels", corrupted, 0.10),
    ]
    rows = []
    for name, labels, loss_rate in scenarios:
        outcome = run_deployment(labels, dataset, loss_rate)
        rows.append(
            [
                name,
                outcome["auc"],
                outcome["measurements"],
                outcome["dropped"],
                f"{outcome['megabytes']:.1f}",
            ]
        )

    print(f"{dataset.n}-node deployment, 400 s of virtual time\n")
    print(
        format_table(
            rows,
            headers=["scenario", "AUC", "measurements", "drops", "MB sent"],
            float_fmt=".3f",
        )
    )


if __name__ == "__main__":
    main()
