"""Timestamped measurement traces (dynamic datasets).

The Harvard dataset is a 4-hour *stream* of application-level RTT
measurements, consumed in time order by the decentralized algorithms
(paper Section 6.1).  :class:`MeasurementTrace` is the in-memory form of
such a stream: parallel arrays of timestamps, source/target node indices
and measured quantities, sorted by time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

__all__ = ["MeasurementTrace", "trace_from_matrix"]


@dataclass
class MeasurementTrace:
    """A time-ordered stream of pairwise measurements.

    Attributes
    ----------
    timestamps:
        Seconds since trace start, non-decreasing, shape ``(m,)``.
    sources, targets:
        Node indices of each measurement, shape ``(m,)``.
    values:
        Measured quantities (e.g. RTT in ms), shape ``(m,)``.
    n_nodes:
        Number of distinct nodes in the underlying system.
    """

    timestamps: np.ndarray
    sources: np.ndarray
    targets: np.ndarray
    values: np.ndarray
    n_nodes: int

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=float)
        self.sources = np.asarray(self.sources, dtype=int)
        self.targets = np.asarray(self.targets, dtype=int)
        self.values = np.asarray(self.values, dtype=float)
        lengths = {
            self.timestamps.shape,
            self.sources.shape,
            self.targets.shape,
            self.values.shape,
        }
        if len(lengths) != 1 or self.timestamps.ndim != 1:
            raise ValueError("trace arrays must be 1-D and of equal length")
        if len(self) and np.any(np.diff(self.timestamps) < 0):
            raise ValueError("timestamps must be non-decreasing")
        if len(self):
            top = max(self.sources.max(), self.targets.max())
            if top >= self.n_nodes or min(self.sources.min(), self.targets.min()) < 0:
                raise ValueError("node indices out of range")
            if np.any(self.sources == self.targets):
                raise ValueError("trace contains self-measurements")

    def __len__(self) -> int:
        return self.timestamps.shape[0]

    def __iter__(self) -> Iterator[Tuple[float, int, int, float]]:
        for idx in range(len(self)):
            yield (
                float(self.timestamps[idx]),
                int(self.sources[idx]),
                int(self.targets[idx]),
                float(self.values[idx]),
            )

    @property
    def duration(self) -> float:
        """Trace length in seconds (0 for an empty trace)."""
        if not len(self):
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def batches(self, batch_size: int) -> Iterator["MeasurementTrace"]:
        """Yield consecutive sub-traces of at most ``batch_size`` samples.

        The vectorized engine consumes the trace in minibatches; time
        order is preserved across and within batches.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        for start in range(0, len(self), batch_size):
            stop = min(start + batch_size, len(self))
            yield MeasurementTrace(
                timestamps=self.timestamps[start:stop],
                sources=self.sources[start:stop],
                targets=self.targets[start:stop],
                values=self.values[start:stop],
                n_nodes=self.n_nodes,
            )

    def pair_median_matrix(self) -> np.ndarray:
        """Per-pair median of the streams — the paper's ground truth.

        Pairs never measured are NaN, as is the diagonal.
        """
        matrix = np.full((self.n_nodes, self.n_nodes), np.nan)
        order = np.lexsort((self.targets, self.sources))
        src = self.sources[order]
        dst = self.targets[order]
        val = self.values[order]
        pair_ids = src.astype(np.int64) * self.n_nodes + dst
        boundaries = np.nonzero(np.diff(pair_ids))[0] + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [len(pair_ids)]))
        for lo, hi in zip(starts, stops):
            matrix[src[lo], dst[lo]] = np.median(val[lo:hi])
        return matrix

    def measurement_counts(self) -> np.ndarray:
        """Per-node count of measurements the node *initiated*.

        The Harvard trace has strongly uneven per-node activity (the
        paper's footnote 4); this exposes that skew for tests.
        """
        return np.bincount(self.sources, minlength=self.n_nodes)


def trace_from_matrix(
    quantities: np.ndarray,
    *,
    n_samples: int,
    duration_s: float = 60.0,
    rng: RngLike = None,
) -> MeasurementTrace:
    """Replay a static matrix as a time-ordered measurement stream.

    The P2PSim and Meridian datasets are *static* RTT matrices (paper
    Section 6.1); the decentralized algorithms nevertheless consume
    measurements one probe at a time.  This samples ``n_samples``
    measured (finite, off-diagonal) pairs uniformly with replacement,
    stamps them with sorted uniform timestamps over ``duration_s``
    seconds, and returns the stream as a :class:`MeasurementTrace` —
    the matrix-shaped twin of the Harvard stream, suitable for
    :func:`repro.simnet.livefeed.replay_trace` and the ``replay``
    scenario.
    """
    quantities = np.asarray(quantities, dtype=float)
    if quantities.ndim != 2 or quantities.shape[0] != quantities.shape[1]:
        raise ValueError(
            f"quantities must be a square matrix, got {quantities.shape}"
        )
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    n = quantities.shape[0]
    measurable = np.isfinite(quantities)
    np.fill_diagonal(measurable, False)
    rows, cols = np.nonzero(measurable)
    if rows.size == 0:
        raise ValueError("quantities has no finite off-diagonal pair")
    generator: np.random.Generator = ensure_rng(rng)
    picks = generator.integers(0, rows.size, size=int(n_samples))
    timestamps = np.sort(
        generator.uniform(0.0, float(duration_s), size=int(n_samples))
    )
    return MeasurementTrace(
        timestamps=timestamps,
        sources=rows[picks],
        targets=cols[picks],
        values=quantities[rows[picks], cols[picks]],
        n_nodes=n,
    )
