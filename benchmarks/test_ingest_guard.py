"""Ingest-path throughput micro-benchmark: guarded vs raw admission.

The admission guard (within-batch dedup, per-pair step clip, token
buckets, outlier rejection) buys safety on the ingest hot path; this
bench prices it.  A 500-node model ingests the same duplicate-heavy
stream (30% of samples hammer one hot pair — the ROADMAP's divergence
traffic) through four configurations:

* **raw batch** — seed-faithful mode, no guard work at all;
* **guarded batch** — within-batch dedup + step clip;
* **guarded + admission** — dedup/clip plus per-source token buckets
  and the sigma outlier filter;
* **guarded + admission, 4 shards** — the same admission work through
  ``repro.serving.shard.ShardedIngest`` (bounded queues, one guarded
  pipeline per shard on its own worker thread);
* **single-submit** — the scalar fast path of ``submit`` (the
  gateway's per-request shape), guarded.

Emits a machine-readable ``BENCH_ingest.json`` (measurements/second per
mode) next to ``BENCH_serving.json`` so the guard's overhead is tracked
across PRs, and asserts the overhead stays bounded: guarded batch
ingest must sustain at least one fifth of raw throughput.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.config import DMFSGDConfig
from repro.core.engine import DMFSGDEngine
from repro.serving.guard import (
    AdmissionGuard,
    RobustSigmaFilter,
    TokenBucketRateLimiter,
)
from repro.serving.ingest import IngestPipeline
from repro.serving.shard import ShardedCoordinateStore, ShardedIngest
from repro.serving.store import CoordinateStore
from repro.utils.tables import format_table

NODES = 500
SAMPLES = 40_000
SINGLE_SAMPLES = 5_000
BATCH = 1024
HOT_FRACTION = 0.3
SUMMARY_PATH = Path("BENCH_ingest.json")


def make_stream(rng):
    """Duplicate-heavy traffic: background pairs + one hammered pair."""
    sources = rng.integers(0, NODES, size=SAMPLES)
    targets = (sources + 1 + rng.integers(0, NODES - 1, size=SAMPLES)) % NODES
    hot = rng.random(SAMPLES) < HOT_FRACTION
    sources[hot], targets[hot] = 3, 7
    values = rng.choice([-1.0, 1.0], size=SAMPLES)
    return sources, targets, values


def make_pipeline(seed, **kwargs):
    config = DMFSGDConfig(neighbors=8)
    engine = DMFSGDEngine(
        NODES, lambda r, c: np.ones(len(r)), config, rng=seed
    )
    store = CoordinateStore(engine.coordinates)
    kwargs.setdefault("batch_size", BATCH)
    kwargs.setdefault("refresh_interval", 10 * BATCH)
    return IngestPipeline(engine, store, **kwargs)


def _ingest_batched(pipeline, sources, targets, values) -> float:
    start = time.perf_counter()
    for lo in range(0, SAMPLES, BATCH):
        pipeline.submit_many(
            sources[lo : lo + BATCH],
            targets[lo : lo + BATCH],
            values[lo : lo + BATCH],
        )
    pipeline.flush()
    return time.perf_counter() - start


def run():
    rng = np.random.default_rng(20111206)
    sources, targets, values = make_stream(rng)

    raw = make_pipeline(1, mode="raw")
    raw_s = _ingest_batched(raw, sources, targets, values)

    guarded = make_pipeline(1, step_clip=0.1)
    guarded_s = _ingest_batched(guarded, sources, targets, values)

    admission = make_pipeline(
        1,
        step_clip=0.1,
        guard=AdmissionGuard(
            rate_limiter=TokenBucketRateLimiter(1e9, 1e9),
            filters=[RobustSigmaFilter(sigma=6.0)],
        ),
    )
    admission_s = _ingest_batched(admission, sources, targets, values)

    # the same admission work, sharded 4 ways (queues + workers)
    config = DMFSGDConfig(neighbors=8)
    engine = DMFSGDEngine(NODES, lambda r, c: np.ones(len(r)), config, rng=1)
    sharded_store = ShardedCoordinateStore(engine.coordinates, shards=4)
    with ShardedIngest(
        engine,
        sharded_store,
        batch_size=BATCH,
        refresh_interval=10 * BATCH,
        step_clip=0.1,
        guards=[
            AdmissionGuard(
                rate_limiter=TokenBucketRateLimiter(1e9, 1e9),
                filters=[RobustSigmaFilter(sigma=6.0)],
            )
            for _ in range(4)
        ],
        queue_depth=256,
    ) as sharded:
        start = time.perf_counter()
        for lo in range(0, SAMPLES, BATCH):
            sharded.submit_many(
                sources[lo : lo + BATCH],
                targets[lo : lo + BATCH],
                values[lo : lo + BATCH],
            )
        sharded.flush()
        sharded_s = time.perf_counter() - start

    single = make_pipeline(1, step_clip=0.1)
    start = time.perf_counter()
    for k in range(SINGLE_SAMPLES):
        single.submit(int(sources[k]), int(targets[k]), float(values[k]))
    single.flush()
    single_s = time.perf_counter() - start

    # the guard must actually have worked on this stream
    assert guarded.stats().deduped > 0
    assert raw.stats().deduped == 0

    return {
        "nodes": NODES,
        "samples": SAMPLES,
        "hot_fraction": HOT_FRACTION,
        "cpu_count": os.cpu_count() or 1,
        "notices": [],  # all ingest-guard gates hold on any machine
        "raw_batch_mps": SAMPLES / raw_s,
        "guarded_batch_mps": SAMPLES / guarded_s,
        "guarded_admission_mps": SAMPLES / admission_s,
        "guarded_admission_shards4_mps": SAMPLES / sharded_s,
        "single_submit_mps": SINGLE_SAMPLES / single_s,
        "guarded_deduped": guarded.stats().deduped,
    }


def test_ingest_guard_throughput(run_once, report):
    result = run_once(run)

    rows = [
        ["raw batch (seed-faithful)", f"{result['raw_batch_mps']:,.0f}"],
        ["guarded batch (dedup+clip)", f"{result['guarded_batch_mps']:,.0f}"],
        [
            "guarded + rate limit + outlier",
            f"{result['guarded_admission_mps']:,.0f}",
        ],
        [
            "guarded + admission, 4 shards",
            f"{result['guarded_admission_shards4_mps']:,.0f}",
        ],
        ["single submit (fast path)", f"{result['single_submit_mps']:,.0f}"],
    ]
    report(
        f"Ingest throughput — {NODES}-node model, "
        f"{result['hot_fraction']:.0%} hot-pair duplicates",
        format_table(rows, headers=["mode", "measurements/s"]),
    )

    SUMMARY_PATH.write_text(json.dumps(result, indent=2) + "\n")
    report("Summary", f"wrote {SUMMARY_PATH.resolve()}")

    # the guard's price must stay bounded on the batch hot path
    assert result["guarded_batch_mps"] > 0.2 * result["raw_batch_mps"]
    assert result["guarded_admission_mps"] > 0.1 * result["raw_batch_mps"]
    # ... and it must have actually deduped the hot-pair traffic
    assert result["guarded_deduped"] > 0
