"""Smoke tests for the (fast) experiment definitions and formatters.

The slow sweeps are exercised by ``benchmarks/``; here we check that
the cheap experiment definitions produce well-formed structures and
that every formatter renders without blowing up.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1_rank,
    table1_thresholds,
    table3_deltas,
)
from repro.experiments.table1_thresholds import GOOD_FRACTIONS


class TestFig1Definition:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_rank.run()

    def test_four_spectra(self, result):
        assert set(result["spectra"]) == {
            "RTT",
            "RTT class",
            "ABW",
            "ABW class",
        }

    def test_spectra_normalized(self, result):
        for values in result["spectra"].values():
            assert values[0] == 1.0
            assert (values > 0).all()

    def test_effective_ranks_present(self, result):
        assert set(result["effective_rank"]) == set(result["spectra"])

    def test_format(self, result):
        text = fig1_rank.format_result(result)
        assert "RTT class" in text and "effective rank" in text


class TestTable1Definition:
    @pytest.fixture(scope="class")
    def result(self):
        return table1_thresholds.run()

    def test_all_cells_present(self, result):
        for name in ("harvard", "meridian", "hps3"):
            assert set(result["taus"][name]) == set(GOOD_FRACTIONS)

    def test_units(self, result):
        assert result["units"]["harvard"] == "ms"
        assert result["units"]["hps3"] == "Mbps"

    def test_taus_finite_positive(self, result):
        for per_dataset in result["taus"].values():
            for tau in per_dataset.values():
                assert np.isfinite(tau) and tau > 0

    def test_format_layout(self, result):
        text = table1_thresholds.format_result(result)
        assert '"Good"%' in text
        assert "50%" in text


class TestTable3Definition:
    @pytest.fixture(scope="class")
    def result(self):
        return table3_deltas.run()

    def test_type1_for_all_datasets(self, result):
        for name in ("harvard", "meridian", "hps3"):
            assert (name, 1, 0.05) in result["deltas"]

    def test_type2_only_for_abw(self, result):
        assert ("hps3", 2, 0.05) in result["deltas"]
        assert ("harvard", 2, 0.05) not in result["deltas"]

    def test_format(self, result):
        text = table3_deltas.format_result(result)
        assert "T2" in text and "5%" in text
