"""Versioned coordinate storage for the online serving layer.

The trained state of DMFSGD is the factor pair ``(U, V)``.  Serving
reads it on every query while the ingest pipeline keeps mutating the
trainer's copy, so the two must never share arrays.  The
:class:`CoordinateStore` decouples them with copy-on-write snapshots:

* a :class:`CoordinateSnapshot` is an **immutable** ``(U, V, version)``
  triple — its arrays are private read-only copies, so a reader can
  hold one across an arbitrary number of queries and always see a
  consistent model (snapshot isolation);
* :meth:`CoordinateStore.publish` installs a new snapshot atomically
  and bumps the monotonically increasing version; readers holding the
  previous snapshot are unaffected;
* reads are **lock-free** (RCU-style): :meth:`CoordinateStore.snapshot`
  is a plain attribute load — atomic under the GIL — so the estimate
  hot paths never contend with the ingest writer; the store's lock
  only serializes concurrent *publishers*;
* :meth:`CoordinateStore.save` / :meth:`CoordinateStore.load`
  checkpoint the current snapshot (including its version) to an
  ``.npz`` file, so a service can restart without retraining.

The version doubles as the cache key epoch of
:class:`~repro.serving.service.PredictionService` — bumping it is what
invalidates cached predictions.
"""

from __future__ import annotations

import os
import threading
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.coordinates import (
    CoordinateTable,
    matrix_estimate,
    pairs_estimate,
    resolve_npz_path,
    row_estimate,
)
from repro.utils.validation import check_index

__all__ = ["CoordinateSnapshot", "CoordinateStore"]


def _frozen_copy(array: np.ndarray) -> np.ndarray:
    copy = np.array(array, dtype=float, copy=True)
    copy.setflags(write=False)
    return copy


class CoordinateSnapshot:
    """An immutable, versioned view of the factor matrices.

    Attributes
    ----------
    version:
        Monotonically increasing publish counter of the owning store.
    U, V:
        Read-only ``(n, rank)`` arrays; attempts to write raise.
    """

    __slots__ = ("version", "U", "V")

    def __init__(self, version: int, U: np.ndarray, V: np.ndarray) -> None:
        if U.shape != V.shape or U.ndim != 2:
            raise ValueError(
                f"U and V must be matching 2-D arrays, got {U.shape} and {V.shape}"
            )
        object.__setattr__(self, "version", int(version))
        object.__setattr__(self, "U", _frozen_copy(U))
        object.__setattr__(self, "V", _frozen_copy(V))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CoordinateSnapshot is immutable")

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.U.shape[0]

    @property
    def rank(self) -> int:
        """Coordinate dimension ``r``."""
        return self.U.shape[1]

    # ------------------------------------------------------------------
    # prediction primitives (zero-copy; the serving hot paths)
    # ------------------------------------------------------------------

    def estimate(self, i: int, j: int) -> float:
        """Single-pair estimate ``x_hat_ij = u_i . v_j``."""
        i = check_index(i, self.n, "i")
        j = check_index(j, self.n, "j")
        return float(self.U[i] @ self.V[j])

    def estimate_row(
        self, i: int, targets: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """One-to-many estimates from ``i`` as a single matrix product.

        The full one-to-all row (``targets=None``) has NaN at ``i``'s
        own slot (the path to self is undefined).
        """
        return row_estimate(self.U, self.V, i, targets)

    def estimate_pairs(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Vectorized estimates for aligned index arrays (one gather).

        The batch-query hot path: ``k`` arbitrary pairs cost one fancy
        index into each factor and one einsum, never a Python loop.
        """
        return pairs_estimate(self.U, self.V, sources, targets)

    def estimate_matrix(self) -> np.ndarray:
        """Dense ``X_hat = U V^T`` with NaN diagonal (full-batch path)."""
        return matrix_estimate(self.U, self.V)

    def as_table(self) -> CoordinateTable:
        """A mutable :class:`CoordinateTable` copy (for warm-starting)."""
        return CoordinateTable.from_arrays(self.U, self.V)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CoordinateSnapshot(version={self.version}, n={self.n}, "
            f"rank={self.rank})"
        )


class CoordinateStore:
    """Thread-safe holder of the latest published snapshot.

    Parameters
    ----------
    coordinates:
        Initial model state: a :class:`CoordinateTable` or a ``(U, V)``
        pair.  Copied — the store never aliases trainer arrays.
    version:
        Starting version (1 by default; restored on :meth:`load`).
    """

    def __init__(
        self,
        coordinates: Union[CoordinateTable, Tuple[np.ndarray, np.ndarray]],
        *,
        version: int = 1,
    ) -> None:
        U, V = self._unpack(coordinates)
        if version < 1:
            raise ValueError(f"version must be >= 1, got {version}")
        self._lock = threading.Lock()
        self._snapshot = CoordinateSnapshot(version, U, V)

    @staticmethod
    def _unpack(
        coordinates: Union[CoordinateTable, Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        if isinstance(coordinates, CoordinateTable):
            return coordinates.U, coordinates.V
        U, V = coordinates
        return np.asarray(U, dtype=float), np.asarray(V, dtype=float)

    @property
    def version(self) -> int:
        """Version of the currently published snapshot."""
        return self.snapshot().version

    @property
    def n(self) -> int:
        """Number of nodes in the served model."""
        return self.snapshot().n

    def snapshot(self) -> CoordinateSnapshot:
        """The latest published snapshot (lock-free atomic read).

        A single attribute load: the bound snapshot is immutable and
        replaced wholesale by :meth:`publish`, so readers need no lock
        (RCU) — they either see the old complete snapshot or the new
        complete snapshot, never a torn mix.
        """
        return self._snapshot

    def publish(
        self,
        coordinates: Union[CoordinateTable, Tuple[np.ndarray, np.ndarray]],
    ) -> CoordinateSnapshot:
        """Install new factors as the served model (copy-on-write).

        The model's shape is fixed at construction; publishing a
        different ``(n, rank)`` raises.  Returns the new snapshot.
        """
        U, V = self._unpack(coordinates)
        with self._lock:
            if U.shape != self._snapshot.U.shape:
                raise ValueError(
                    f"shape mismatch: store holds {self._snapshot.U.shape}, "
                    f"got {U.shape}"
                )
            self._snapshot = CoordinateSnapshot(
                self._snapshot.version + 1, U, V
            )
            return self._snapshot

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def save(self, path: "str | os.PathLike") -> None:
        """Checkpoint the current snapshot (factors + version) to .npz."""
        snap = self.snapshot()
        np.savez(
            os.fspath(path),
            U=snap.U,
            V=snap.V,
            version=np.asarray(snap.version, dtype=np.int64),
        )

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "CoordinateStore":
        """Restore a store from a :meth:`save` checkpoint.

        The restored store serves predictions identical to the one that
        was saved, at the same version.
        """
        with np.load(resolve_npz_path(path)) as data:
            version = int(data["version"]) if "version" in data else 1
            return cls((data["U"], data["V"]), version=version)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.snapshot()
        return (
            f"CoordinateStore(n={snap.n}, rank={snap.rank}, "
            f"version={snap.version})"
        )
