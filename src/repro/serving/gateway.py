"""Stdlib-only JSON/HTTP gateway in front of the serving components.

A thin transport layer: every endpoint delegates to
:class:`~repro.serving.service.PredictionService` and the ingest
pipeline (single-store :class:`~repro.serving.ingest.IngestPipeline`
or sharded :class:`~repro.serving.shard.ShardedIngest` — the gateway
is agnostic); no model logic lives here.  Routing itself is
transport-agnostic too: :class:`GatewayCore` maps
``(method, path, params, body)`` to ``(status, payload)`` and is
served by either of two backends:

* ``backend="threading"`` — :mod:`http.server`'s
  ``ThreadingHTTPServer``: one thread per connection, the
  battle-tested default;
* ``backend="selectors"`` — a single-threaded non-blocking event loop
  on :mod:`selectors`: accept/parse stop burning a thread per
  connection, which is the scale-out shape for many short-lived
  connections.

Endpoints (all JSON):

========  =======================  =======================================
method    path                     meaning
========  =======================  =======================================
GET       ``/health``              liveness + model vitals
GET       ``/version``             served snapshot version
GET       ``/stats``               service + ingest + guard + shards + ...
GET       ``/metrics``             Prometheus text exposition (the same
                                   registry ``/stats`` summarizes)
GET       ``/shards``              per-shard queue depth / snapshot age
                                   (+ ``cluster`` section on a cluster
                                   gateway: per-group health + mirrors)
GET       ``/membership``          epoch, node count, tombstones, pending ops
GET       ``/predict``             ``?src=i&dst=j`` single-pair prediction
GET       ``/predict_from``        ``?src=i[&targets=j,k,...]`` one-to-many
POST      ``/estimate/batch``      ``{"pairs": [[src, dst], ...]}`` vectorized
POST      ``/ingest``              ``{"measurements": [[src, dst, value], ...]}``
POST      ``/refresh``             force flush + publish (new version)
POST      ``/membership/join``     ``{"node"?, "warm_start"?}`` live node add
POST      ``/membership/leave``    ``{"node", "compact"?}`` live node removal
POST      ``/admin/reconfig``      ``{"shards"?, "action"?, "autopilot"?}``
                                   live topology change / autopilot control
========  =======================  =======================================

The membership endpoints exist only when the gateway was built with a
:class:`~repro.serving.membership.MembershipManager`
(``repro serve --allow-membership``); they answer 400 otherwise.

With a :class:`~repro.serving.shard.RequestCoalescer` attached
(``coalesce_window``), concurrent ``GET /predict`` requests inside the
window are answered by **one** ``predict_pairs`` gather — the
per-request path rides the vectorized batch path; such responses carry
``"coalesced": true``.  ``/stats`` of a sharded gateway carries a
``shards`` section (per-shard queue depth, snapshot age and version)
and, when coalescing, a ``coalescer`` section.

Use :class:`ServingGateway` programmatically (``start()`` /
``stop()``, or as a context manager — port 0 picks a free port, which
is how the end-to-end tests run it in-process) or via the ``repro
serve`` CLI command.
"""

from __future__ import annotations

import json
import selectors
import socket
import sys
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.obs import bridge, tracing
from repro.obs.metrics import MetricsRegistry
from repro.serving import faults
from repro.serving.guard import BackgroundCheckpointer
from repro.serving.service import PredictionService, classify_score

__all__ = ["GatewayCore", "ServingGateway", "BACKENDS"]

#: gateway transport backends selectable via ``ServingGateway(backend=...)``
BACKENDS = ("threading", "selectors")


class _BadRequest(ValueError):
    """Client error: reported as HTTP 400 with a JSON body."""


def _get_int(params: Dict[str, list], name: str) -> int:
    if name not in params:
        raise _BadRequest(f"missing query parameter {name!r}")
    raw = params[name][-1]
    try:
        return int(raw)
    except ValueError:
        raise _BadRequest(f"parameter {name!r} must be an integer, got {raw!r}")


def _request_class(method: str, path: str) -> Optional[str]:
    """Shed class of a request: ``ingest`` | ``batch`` | ``None``.

    ``None`` means never shed — single reads are the availability
    number and cost one gather, so overload protection must not touch
    them (nor health/stats, which operators need *most* while shedding).
    """
    if method != "POST":
        return None
    if path == "/ingest":
        return "ingest"
    if path == "/estimate/batch":
        return "batch"
    return None


#: routes that may appear as a ``route`` metric label — anything else
#: collapses into "other" so scans cannot explode series cardinality
_OBS_ROUTES = frozenset(
    {
        "/health",
        "/version",
        "/stats",
        "/metrics",
        "/membership",
        "/shards",
        "/predict",
        "/predict_from",
        "/estimate/batch",
        "/ingest",
        "/refresh",
        "/membership/join",
        "/membership/leave",
        "/admin/reconfig",
    }
)


class GatewayCore:
    """Transport-independent request routing.

    Both HTTP backends funnel every request through
    :meth:`handle` — one code path to test, two transports to serve
    it.  The core never raises for client errors: it returns the
    ``(status, payload)`` pair the transport should serialize.
    """

    def __init__(
        self,
        service: PredictionService,
        ingest=None,
        *,
        checkpointer: Optional[BackgroundCheckpointer] = None,
        coalescer=None,
        membership=None,
        autopilot=None,
        deadline_s: Optional[float] = None,
        shedder: Optional[faults.LoadShedder] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        self.service = service
        self.ingest = ingest
        self.checkpointer = checkpointer
        self.coalescer = coalescer
        self.membership = membership
        self.autopilot = autopilot
        self.deadline_s = deadline_s
        self.shedder = shedder
        self.obs = registry
        if registry is not None:
            self._m_requests = registry.counter(
                "repro_requests_total",
                "HTTP requests handled, by route and status.",
                labels=("route", "status"),
            )
            self._m_request_seconds = registry.histogram(
                "repro_request_seconds",
                "End-to-end request handling latency.",
                labels=("route",),
            )
        self._overload_lock = threading.Lock()
        self.deadline_exceeded = 0
        self.injected_rejects = 0

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _retry_after_s(self) -> float:
        if self.shedder is not None:
            return self.shedder.retry_after_s
        return 0.5

    def handle(
        self, method: str, path: str, params: Dict[str, list], body: bytes
    ) -> Tuple[int, Dict]:
        """Route one request; returns ``(http_status, json_payload)``.

        With a metrics registry bound, every request lands in the
        ``repro_requests_total`` / ``repro_request_seconds`` families
        on its way out; an unbound gateway pays one attribute check.
        """
        if self.obs is None:
            return self._handle(method, path, params, body)
        started = time.monotonic()
        status, payload = self._handle(method, path, params, body)
        route = path if path in _OBS_ROUTES else "other"
        self._m_requests.inc(route=route, status=status)
        self._m_request_seconds.observe(
            time.monotonic() - started, route=route
        )
        return status, payload

    def _handle(
        self, method: str, path: str, params: Dict[str, list], body: bytes
    ) -> Tuple[int, Dict]:
        """The actual routing behind :meth:`handle`.

        Overload protection runs here, in order: an armed chaos plan
        may reject the request at ``gateway.accept``; the load shedder
        may shed ingest/batch work by queue-fill watermark; and a
        configured per-request deadline converts a too-slow success
        into 503 — all three answer ``503 + Retry-After`` (the payload
        carries ``retry_after`` seconds; both transports emit it as
        the header), so clients back off instead of piling on.
        """
        if faults.injector is not None:
            verdict = faults.injector.fire(
                "gateway.accept", method=method, path=path
            )
            if verdict is faults.DROP:
                with self._overload_lock:
                    self.injected_rejects += 1
                return 503, {
                    "error": "request rejected by the armed chaos plan",
                    "retry_after": self._retry_after_s(),
                }
        started = time.monotonic()
        if self.shedder is not None:
            kind = _request_class(method, path)
            if kind is not None and self.shedder.should_shed(kind):
                return 503, {
                    "error": f"overloaded: {kind} shed at queue fill "
                    f"{self.shedder.queue_fill():.2f}",
                    "shed": kind,
                    "retry_after": self.shedder.retry_after_s,
                }
        try:
            if method == "GET":
                status, payload = self._get(path, params)
            elif method == "POST":
                status, payload = self._post(path, body)
            else:
                return 405, {"error": f"method {method} not allowed"}
        except (_BadRequest, ValueError, TypeError, IndexError) as exc:
            # TypeError covers np.asarray on non-numeric JSON entries; a
            # serving endpoint answers 400, it never drops the connection.
            return 400, {"error": str(exc)}
        if self.deadline_s is not None and status == 200:
            elapsed = time.monotonic() - started
            if elapsed > self.deadline_s:
                # the work happened but missed its budget: answering
                # 503 keeps the latency contract honest — a client
                # would have timed out anyway, and Retry-After beats a
                # zombie response it already gave up on
                with self._overload_lock:
                    self.deadline_exceeded += 1
                return 503, {
                    "error": f"deadline exceeded: {elapsed * 1000.0:.1f}ms "
                    f"> {self.deadline_s * 1000.0:.1f}ms budget",
                    "retry_after": self._retry_after_s(),
                }
        return status, payload

    def overload_info(self) -> Optional[Dict[str, object]]:
        """The ``overload`` section of ``/stats`` (None when unarmed)."""
        if (
            self.deadline_s is None
            and self.shedder is None
            and faults.injector is None
        ):
            return None
        info: Dict[str, object] = {
            "deadline_s": self.deadline_s,
            "deadline_exceeded": self.deadline_exceeded,
            "injected_rejects": self.injected_rejects,
        }
        if self.shedder is not None:
            info["shedder"] = self.shedder.as_dict()
        if faults.injector is not None:
            info["chaos"] = faults.injector.as_dict()
        return info

    def _read_body(self, body: bytes) -> Dict:
        if not body:
            raise _BadRequest("empty request body")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _BadRequest("request body is not valid JSON")
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # GET routes
    # ------------------------------------------------------------------

    def _get(self, path: str, params: Dict[str, list]) -> Tuple[int, Dict]:
        service = self.service
        if path == "/health":
            snapshot = service.store.snapshot()
            return 200, {
                "status": "ok",
                "version": snapshot.version,
                "nodes": snapshot.n,
                "rank": snapshot.rank,
            }
        if path == "/version":
            return 200, {"version": service.store.version}
        if path == "/stats":
            payload = {"service": service.stats().as_dict()}
            if self.ingest is not None:
                # one atomic snapshot: ingest + guard counters agree
                payload.update(self.ingest.stats_payload())
                if self.ingest.evaluator is not None:
                    payload["online_eval"] = self.ingest.evaluator.evaluate()
            if self.checkpointer is not None:
                payload["checkpoint"] = self.checkpointer.as_dict()
            if self.coalescer is not None:
                payload["coalescer"] = self.coalescer.as_dict()
            if self.membership is not None:
                payload["membership"] = self.membership.as_dict()
            if self.autopilot is not None:
                payload["autopilot"] = self.autopilot.as_dict()
            overload = self.overload_info()
            if overload is not None:
                payload["overload"] = overload
            if self.obs is not None:
                payload["obs"] = self.obs.summary()
            tracer = tracing.tracer
            if tracer is not None:
                harvest = getattr(self.ingest, "harvest_traces", None)
                if harvest is not None:
                    # fold worker-side ring entries (shm or per-group)
                    # into the tracer before snapshotting
                    for entry in harvest():
                        tracer.merge(**entry)
                payload["traces"] = tracer.snapshot()
            return 200, payload
        if path == "/metrics":
            if self.obs is None:
                return 404, {
                    "error": "no metrics registry is bound on this gateway"
                }
            return 200, self.obs.render()
        if path == "/membership":
            if self.membership is None:
                return 400, {
                    "error": "membership is not enabled on this gateway "
                    "(serve with --allow-membership)"
                }
            return 200, self.membership.as_dict()
        if path == "/shards":
            shard_info = getattr(self.ingest, "shard_info", None)
            if shard_info is None:
                return 400, {"error": "gateway is not sharded"}
            payload = {"shards": shard_info()}
            cluster_info = getattr(self.ingest, "cluster_info", None)
            if cluster_info is not None:
                payload["cluster"] = cluster_info()
            return 200, payload
        if path == "/predict":
            src = _get_int(params, "src")
            dst = _get_int(params, "dst")
            if self.coalescer is not None:
                return 200, self._predict_coalesced(src, dst)
            return 200, service.predict_pair(src, dst).as_dict()
        if path == "/predict_from":
            src = _get_int(params, "src")
            targets = None
            if "targets" in params:
                raw = params["targets"][-1]
                try:
                    targets = np.array(
                        [int(t) for t in raw.split(",") if t != ""],
                        dtype=int,
                    )
                except ValueError:
                    raise _BadRequest(
                        f"targets must be comma-separated integers, got {raw!r}"
                    )
            return 200, service.predict_from(src, targets).as_dict()
        return 404, {"error": f"unknown path {path!r}"}

    @staticmethod
    def _coalesced_payload(
        src: int, dst: int, estimate: float, version: int
    ) -> Dict:
        finite = np.isfinite(estimate)
        return {
            "source": int(src),
            "target": int(dst),
            "estimate": float(estimate) if finite else None,
            "label": classify_score(estimate),
            "version": version,
            "cached": False,
            "coalesced": True,
        }

    def _predict_coalesced(self, src: int, dst: int) -> Dict:
        """Single-pair prediction through the coalesced batch path.

        Same contract as :meth:`PredictionService.predict_pair` — the
        self-pair is rejected up front (one bad request must not ride a
        shared gather into a batch-wide NaN surprise).  This is the
        *blocking* shape used by the threading backend, where the
        connection's handler thread can afford to wait out the window.
        """
        if int(src) == int(dst):
            raise _BadRequest(
                f"the path from node {int(src)} to itself is undefined"
            )
        estimate, version = self.coalescer.estimate(src, dst)
        return self._coalesced_payload(src, dst, estimate, version)

    def try_submit_coalesced(
        self,
        method: str,
        path: str,
        params: Dict[str, list],
        respond: "callable",
    ) -> bool:
        """Non-blocking coalesced predict for event-loop transports.

        Returns ``True`` when the request was taken over: the query
        joined the open batch and ``respond(status, payload)`` will be
        called — from the coalescer's flush worker — once the shared
        gather lands.  The selectors backend routes ``GET /predict``
        through here so its single event-loop thread never waits out a
        coalescing window inside a handler; everything else returns
        ``False`` and takes the ordinary synchronous path.
        """
        if self.coalescer is None or method != "GET" or path != "/predict":
            return False
        try:
            src = _get_int(params, "src")
            dst = _get_int(params, "dst")
            if src == dst:
                raise _BadRequest(
                    f"the path from node {src} to itself is undefined"
                )
            ticket = self.coalescer.submit(src, dst)
        except (_BadRequest, ValueError, TypeError) as exc:
            respond(400, {"error": str(exc)})
            return True

        def finish() -> None:
            try:
                estimate, version = ticket.result(timeout=0)
                payload = self._coalesced_payload(src, dst, estimate, version)
                respond(200, payload)
            except BaseException as exc:  # pragma: no cover - defensive
                respond(500, {"error": f"coalesced predict failed: {exc!r}"})

        ticket.on_done(finish)
        return True

    # ------------------------------------------------------------------
    # POST routes
    # ------------------------------------------------------------------

    def _post(self, path: str, body: bytes) -> Tuple[int, Dict]:
        ingest = self.ingest
        if path == "/estimate/batch":
            # a read path despite the POST verb (the pair list does
            # not fit a query string); works on read-only gateways
            payload = self._read_body(body)
            pairs = payload.get("pairs")
            if not isinstance(pairs, list):
                raise _BadRequest('body must contain a "pairs" list')
            for entry in pairs:
                if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                    raise _BadRequest("each pair must be [source, target]")
            if pairs:
                array = np.asarray(pairs, dtype=float)
                if not np.all(
                    np.isfinite(array) & (array == np.floor(array))
                ):
                    raise _BadRequest("pair indices must be integers")
                sources = array[:, 0].astype(int)
                targets = array[:, 1].astype(int)
            else:
                sources = np.array([], dtype=int)
                targets = np.array([], dtype=int)
            prediction = self.service.predict_pairs(sources, targets)
            return 200, prediction.as_dict()
        if path == "/ingest":
            if ingest is None:
                return 400, {"error": "gateway is read-only"}
            payload = self._read_body(body)
            measurements = payload.get("measurements")
            if not isinstance(measurements, list):
                raise _BadRequest('body must contain a "measurements" list')
            triples = []
            for entry in measurements:
                if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                    raise _BadRequest(
                        "each measurement must be [source, target, value]"
                    )
                triples.append(entry)
            tracer = tracing.tracer
            if tracer is not None and triples:
                # mint the request's span and park it in thread-local
                # context; the routed plane stamps admit and threads
                # the id through the shard queues from there
                accept_us = tracing.now_us()
                span_id = tracer.begin(
                    route="/ingest",
                    samples=len(triples),
                    accept_us=accept_us,
                )
                tracing.set_context(span_id, accept_us)
            try:
                if len(triples) == 1:
                    # the scalar fast path: single-measurement posts
                    # skip the array round-trip entirely (None -> NaN,
                    # matching np.asarray's coercion on the batch path)
                    src, dst, value = (
                        float("nan") if entry is None else float(entry)
                        for entry in triples[0]
                    )
                    kept = int(ingest.submit(src, dst, value))
                elif triples:
                    array = np.asarray(triples, dtype=float)
                    kept = ingest.submit_many(
                        array[:, 0], array[:, 1], array[:, 2]
                    )
                else:
                    kept = 0
            finally:
                if tracer is not None:
                    tracing.clear_context()
            return 200, {
                "accepted": kept,
                "received": len(triples),
                "buffered": ingest.buffered,
                "version": ingest.store.version,
            }
        if path == "/refresh":
            if ingest is None:
                return 400, {"error": "gateway is read-only"}
            return 200, {"version": ingest.publish()}
        if path in ("/membership/join", "/membership/leave"):
            if self.membership is None:
                return 400, {
                    "error": "membership is not enabled on this gateway "
                    "(serve with --allow-membership)"
                }
            payload = self._read_body(body) if body else {}
            if path == "/membership/join":
                node = payload.get("node")
                if node is not None and (
                    not isinstance(node, int) or isinstance(node, bool)
                ):
                    raise _BadRequest('"node" must be an integer node id')
                warm_start = payload.get("warm_start")
                if warm_start is not None and not isinstance(warm_start, str):
                    raise _BadRequest('"warm_start" must be a string')
                return 200, self.membership.join(node, warm_start=warm_start)
            node = payload.get("node")
            if not isinstance(node, int) or isinstance(node, bool):
                raise _BadRequest('body must carry an integer "node" id')
            compact = payload.get("compact", True)
            if not isinstance(compact, bool):
                raise _BadRequest('"compact" must be a boolean')
            return 200, self.membership.leave(node, compact=compact)
        if path == "/admin/reconfig":
            return self._admin_reconfig(body)
        return 404, {"error": f"unknown path {path!r}"}

    def _admin_reconfig(self, body: bytes) -> Tuple[int, Dict]:
        """Operator topology control: re-stride now, or steer autopilot.

        Body (JSON object), one of:

        * ``{"shards": N}`` — re-stride the plane to ``N`` partitions;
        * ``{"action": "split", "shard": p}`` /
          ``{"action": "merge", "shard": p, "other": q}`` — single-step
          transitions naming the triggering shard(s);
        * ``{"autopilot": "pause" | "resume"}`` — suspend/resume the
          control loop's decisions (sampling continues).

        Replies with the live :meth:`topology` payload (plus the
        autopilot state when one is attached).  Manual actions run
        through :meth:`Autopilot.reconfig` when the loop is attached so
        the operator's change lands on the same action timeline and
        starts a cooldown.
        """
        ingest = self.ingest
        if ingest is None:
            return 400, {"error": "gateway is read-only"}
        if not callable(getattr(ingest, "set_shard_count", None)):
            return 400, {
                "error": "topology is not mutable on this gateway "
                "(cluster planes re-partition via their partition book)"
            }
        payload = self._read_body(body)
        steer = payload.get("autopilot")
        if steer is not None:
            if self.autopilot is None:
                return 400, {
                    "error": "autopilot is not enabled on this gateway "
                    "(serve with --autopilot)"
                }
            if steer not in ("pause", "resume"):
                raise _BadRequest('"autopilot" must be "pause" or "resume"')
            if steer == "pause":
                self.autopilot.pause()
            else:
                self.autopilot.resume()
            return 200, {
                "autopilot": self.autopilot.as_dict(),
                "topology": ingest.topology(),
            }
        shards = payload.get("shards")
        action = payload.get("action")
        if (shards is None) == (action is None):
            raise _BadRequest(
                'body must carry exactly one of "shards" or "action" '
                '(or an "autopilot" steer)'
            )
        if shards is not None:
            if not isinstance(shards, int) or isinstance(shards, bool):
                raise _BadRequest('"shards" must be an integer')
            if self.autopilot is not None:
                topology = self.autopilot.reconfig(shards, reason="admin")
            else:
                topology = ingest.set_shard_count(shards, reason="admin")
        else:
            if action not in ("split", "merge"):
                raise _BadRequest('"action" must be "split" or "merge"')
            shard = payload.get("shard")
            if not isinstance(shard, int) or isinstance(shard, bool):
                raise _BadRequest('body must carry an integer "shard" id')
            if action == "split":
                topology = ingest.split_shard(shard, reason="admin")
            else:
                other = payload.get("other")
                if not isinstance(other, int) or isinstance(other, bool):
                    raise _BadRequest(
                        'merge needs an integer "other" shard id'
                    )
                topology = ingest.merge_shards(shard, other, reason="admin")
        reply: Dict[str, object] = {"topology": topology}
        if self.autopilot is not None:
            reply["autopilot"] = self.autopilot.as_dict()
        return 200, reply


# ----------------------------------------------------------------------
# threading backend (http.server)
# ----------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    server: "_ServingHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(self, payload, status: int = 200) -> None:
        if isinstance(payload, str):
            # a pre-rendered text page (GET /metrics), not JSON
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
            retry_after = None
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
            retry_after = (
                payload.get("retry_after") if status == 503 else None
            )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # RFC 7231 Retry-After in seconds; clients honor it on 503
            self.send_header("Retry-After", f"{float(retry_after):g}")
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        params = parse_qs(url.query)
        length = int(self.headers.get("Content-Length", 0) or 0)
        body = self.rfile.read(length) if length else b""
        status, payload = self.server.core.handle(
            method, url.path, params, body
        )
        self._send_json(payload, status=status)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


class _ServingHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        core: GatewayCore,
        verbose: bool,
    ) -> None:
        super().__init__(address, _Handler)
        self.core = core
        self.verbose = verbose


# ----------------------------------------------------------------------
# selectors backend (single-threaded non-blocking event loop)
# ----------------------------------------------------------------------


class _Connection:
    """Parse state of one non-blocking client connection."""

    __slots__ = ("sock", "inbuf", "outbuf", "content_length", "header_end")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.inbuf = b""
        self.outbuf = b""
        self.content_length: Optional[int] = None
        self.header_end: Optional[int] = None


class _SelectorsServer:
    """Minimal HTTP/1.1 server on a :mod:`selectors` event loop.

    One thread runs accept + read + parse + dispatch + write for every
    connection — no thread-per-connection cost, which is where
    ``ThreadingHTTPServer`` tops out under many short-lived
    connections.  Handlers (NumPy gathers) run inline: they are
    microseconds-scale, far below the socket round-trip they answer.
    Responses close the connection (``Connection: close``) to keep the
    state machine small; clients like :mod:`urllib` handle this
    transparently.

    With a coalescer attached, ``GET /predict`` is *deferred* instead
    of answered inline: the loop submits the query to the coalescer and
    moves on; when the shared batch gather lands, the coalescer's flush
    worker pushes the finished response onto a completion queue and
    pokes the loop through a wake pipe, which then writes the response
    — the event loop never sleeps out a coalescing window inside a
    handler.
    """

    _MAX_HEADER = 64 * 1024
    _MAX_BODY = 32 * 1024 * 1024

    #: selector key marking the wake pipe's read end
    _WAKE = "wake"

    def __init__(
        self, address: Tuple[str, int], core: GatewayCore, verbose: bool
    ) -> None:
        self.core = core
        self.verbose = verbose
        self._listener = socket.create_server(
            address, family=socket.AF_INET, backlog=128, reuse_port=False
        )
        self._listener.setblocking(False)
        self.server_address = self._listener.getsockname()
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        # completion plumbing for deferred (coalesced) responses: any
        # thread may append + poke the wake pipe; only the loop drains
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._selector.register(
            self._wake_recv, selectors.EVENT_READ, self._WAKE
        )
        self._completions: "deque[Tuple[_Connection, int, Dict]]" = deque()
        self._shutdown = threading.Event()
        self._stopped = threading.Event()
        # starts set: shutdown() must not wait on a loop that never ran
        self._stopped.set()

    # -- loop ----------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.1) -> None:
        self._stopped.clear()
        try:
            while not self._shutdown.is_set():
                try:
                    ready = self._selector.select(poll_interval)
                except (OSError, RuntimeError):
                    if self._shutdown.is_set():  # selector torn down
                        return
                    raise
                for key, events in ready:
                    if key.data is None:
                        self._accept()
                    elif key.data is self._WAKE:
                        self._drain_completions()
                    elif events & selectors.EVENT_READ:
                        self._read(key.data)
                    elif events & selectors.EVENT_WRITE:
                        self._write(key.data)
        finally:
            self._stopped.set()

    def shutdown(self) -> None:
        self._shutdown.set()
        self._stopped.wait(timeout=5.0)

    def server_close(self) -> None:
        for key in list(self._selector.get_map().values()):
            if key.data is not None and key.data is not self._WAKE:
                self._close(key.data)
        for sock in (self._listener, self._wake_recv, self._wake_send):
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError):
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._selector.close()

    # -- deferred completions (coalesced predict) ----------------------

    def _complete_later(
        self, conn: "_Connection", status: int, payload: Dict
    ) -> None:
        """Hand a finished response back to the loop (any thread)."""
        self._completions.append((conn, status, payload))
        try:
            self._wake_send.send(b"\x00")
        except (BlockingIOError, OSError):  # pragma: no cover - full pipe
            pass  # a poke is already pending; the loop will drain

    def _drain_completions(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass
        while True:
            try:
                conn, status, payload = self._completions.popleft()
            except IndexError:
                return
            if conn.sock.fileno() < 0:  # client went away meanwhile
                continue
            self._respond(conn, status, payload)

    # -- connection handling -------------------------------------------

    def _accept(self) -> None:
        try:
            sock, _ = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        conn = _Connection(sock)
        self._selector.register(sock, selectors.EVENT_READ, conn)

    def _close(self, conn: _Connection) -> None:
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _read(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self._close(conn)
            return
        if not chunk:
            self._close(conn)
            return
        conn.inbuf += chunk
        if conn.header_end is None:
            end = conn.inbuf.find(b"\r\n\r\n")
            if end < 0:
                if len(conn.inbuf) > self._MAX_HEADER:
                    self._respond(conn, 431, {"error": "headers too large"})
                return
            conn.header_end = end + 4
            conn.content_length = self._parse_content_length(
                conn.inbuf[:end]
            )
            if conn.content_length is None:
                self._respond(conn, 400, {"error": "bad Content-Length"})
                return
            if conn.content_length > self._MAX_BODY:
                self._respond(conn, 413, {"error": "body too large"})
                return
        if conn.header_end is not None:
            have = len(conn.inbuf) - conn.header_end
            if have >= (conn.content_length or 0):
                self._dispatch(conn)

    @staticmethod
    def _parse_content_length(header_block: bytes) -> Optional[int]:
        length = 0
        for line in header_block.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
                if length < 0:
                    return None
        return length

    def _dispatch(self, conn: _Connection) -> None:
        request_line = conn.inbuf.split(b"\r\n", 1)[0]
        parts = request_line.split()
        if len(parts) < 2:
            self._respond(conn, 400, {"error": "malformed request line"})
            return
        method = parts[0].decode("latin-1")
        target = parts[1].decode("latin-1")
        body_start = conn.header_end or 0
        body = conn.inbuf[body_start : body_start + (conn.content_length or 0)]
        url = urlparse(target)
        params = parse_qs(url.query)
        try:
            deferred = self.core.try_submit_coalesced(
                method,
                url.path,
                params,
                lambda status, payload, conn=conn: self._complete_later(
                    conn, status, payload
                ),
            )
        except Exception:  # pragma: no cover - defensive
            deferred = False
        if deferred:
            # quiesce the connection while the coalescer owns it: stop
            # watching for reads (trailing/pipelined bytes must not
            # re-dispatch the same parse state) — _respond re-registers
            # the socket for writing when the completion lands
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):  # pragma: no cover
                pass
            conn.inbuf = b""
            if self.verbose:  # pragma: no cover - debug aid
                print(
                    f"[selectors] {method} {target} -> coalescing",
                    file=sys.stderr,
                )
            return
        try:
            status, payload = self.core.handle(method, url.path, params, body)
        except Exception as exc:  # pragma: no cover - defensive
            status, payload = 500, {"error": f"internal error: {exc!r}"}
        if self.verbose:  # pragma: no cover - debug aid
            print(
                f"[selectors] {method} {target} -> {status}", file=sys.stderr
            )
        self._respond(conn, status, payload)

    _REASONS = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        413: "Payload Too Large",
        431: "Request Header Fields Too Large",
        500: "Internal Server Error",
        503: "Service Unavailable",
    }

    def _respond(self, conn: _Connection, status: int, payload) -> None:
        if isinstance(payload, str):
            # a pre-rendered text page (GET /metrics), not JSON
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
            retry_after = None
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
            retry_after = (
                payload.get("retry_after") if status == 503 else None
            )
        reason = self._REASONS.get(status, "OK")
        retry_line = (
            f"Retry-After: {float(retry_after):g}\r\n"
            if retry_after is not None
            else ""
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{retry_line}"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        conn.outbuf = head + body
        try:
            self._selector.modify(conn.sock, selectors.EVENT_WRITE, conn)
        except KeyError:
            # the connection was quiesced while its response was
            # deferred through the coalescer; watch it again for writes
            self._selector.register(conn.sock, selectors.EVENT_WRITE, conn)
        self._write(conn)

    def _write(self, conn: _Connection) -> None:
        try:
            sent = conn.sock.send(conn.outbuf)
        except BlockingIOError:
            return
        except OSError:
            self._close(conn)
            return
        conn.outbuf = conn.outbuf[sent:]
        if not conn.outbuf:
            self._close(conn)


# ----------------------------------------------------------------------
# the public gateway
# ----------------------------------------------------------------------


class ServingGateway:
    """Owns the HTTP server wrapping a service (+ optional ingest).

    Parameters
    ----------
    service:
        Query frontend.
    ingest:
        Write path — an :class:`~repro.serving.ingest.IngestPipeline`
        or a :class:`~repro.serving.shard.ShardedIngest`; omit for a
        read-only gateway (the ingest/refresh POST endpoints then
        return 400; ``/estimate/batch`` still works).
    checkpointer:
        Optional :class:`~repro.serving.guard.BackgroundCheckpointer`;
        its thread lives exactly as long as the gateway serves.
    host, port:
        Bind address; ``port=0`` lets the OS pick a free port (read it
        back from :attr:`port` / :attr:`url`).
    backend:
        ``"threading"`` (thread per connection) or ``"selectors"``
        (single-threaded non-blocking event loop).
    coalesce_window:
        Seconds concurrent single ``GET /predict`` requests wait to
        share one batch gather; ``None`` disables coalescing.  On the
        threading backend the handler thread blocks for the window; on
        the selectors backend the request is *deferred* — the loop
        enqueues it into the coalescer and writes the response when
        the batch completes, so the event loop never blocks.
    membership:
        Optional :class:`~repro.serving.membership.MembershipManager`;
        enables the ``/membership`` endpoints (live node join/leave).
        When coalescing is also on, the manager's coalescer reference
        is wired here so epoch transitions refresh its cached model
        size.
    autopilot:
        Optional :class:`~repro.serving.autopilot.Autopilot`; its
        sampling thread lives exactly as long as the gateway serves,
        and ``/stats`` gains the ``autopilot`` section.
    deadline_s:
        Optional per-request budget in seconds; a handled request that
        exceeds it answers ``503 + Retry-After`` instead of a zombie
        success the client already timed out on.
    shed_watermark:
        Optional queue-fill fraction in ``(0, 1]`` arming a
        :class:`~repro.serving.faults.LoadShedder` over the ingest
        plane: ingest sheds at the watermark, batch estimates at
        ``min(watermark + 0.1, 1.0)``, single reads never.
    trace:
        Arm the module-global request tracer (off by default: the
        untraced hot path pays one branch).  Spans are minted per
        ``POST /ingest`` and stamped through admit → queue → apply →
        publish; read them back in the ``traces`` section of
        ``/stats``.  The tracer is process-global, like the fault
        injector; a gateway that armed it disarms it on :meth:`stop`.
    verbose:
        Log requests to stderr (quiet by default: tests and benches).

    Every gateway owns a :class:`~repro.obs.metrics.MetricsRegistry`
    (:attr:`registry`) serving ``GET /metrics``: request counters and
    latency histograms are first-class instruments; ingest/shard/
    fault/cluster/autopilot vitals ride scrape-time collectors over
    the same snapshot surfaces ``/stats`` reads.
    """

    def __init__(
        self,
        service: PredictionService,
        ingest=None,
        *,
        checkpointer: Optional[BackgroundCheckpointer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "threading",
        coalesce_window: Optional[float] = None,
        coalesce_max_batch: int = 4096,
        membership=None,
        autopilot=None,
        deadline_s: Optional[float] = None,
        shed_watermark: Optional[float] = None,
        trace: bool = False,
        verbose: bool = False,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.service = service
        self.ingest = ingest
        self.checkpointer = checkpointer
        self.backend = backend
        self.coalescer = None
        if coalesce_window is not None:
            from repro.serving.shard import RequestCoalescer

            self.coalescer = RequestCoalescer(
                service,
                window=coalesce_window,
                max_batch=coalesce_max_batch,
            )
        self.membership = membership
        if membership is not None and self.coalescer is not None:
            # epoch transitions must refresh the coalescer's cached n
            membership.coalescer = self.coalescer
        self.autopilot = autopilot
        shedder = None
        if shed_watermark is not None:
            if ingest is None:
                raise ValueError(
                    "shed_watermark needs an ingest plane (the shedder "
                    "reads its queue-fill signal)"
                )
            shedder = faults.LoadShedder(
                ingest,
                ingest_watermark=shed_watermark,
                batch_watermark=min(shed_watermark + 0.1, 1.0),
            )
        self._owns_tracer = False
        if trace and tracing.tracer is None:
            tracing.install()
            self._owns_tracer = True
        self.registry = MetricsRegistry()
        self.core = GatewayCore(
            service,
            ingest,
            checkpointer=checkpointer,
            coalescer=self.coalescer,
            membership=membership,
            autopilot=autopilot,
            deadline_s=deadline_s,
            shedder=shedder,
            registry=self.registry,
        )
        bridge.bind_gateway(self.registry, self.core)
        bind_obs = getattr(ingest, "bind_obs", None)
        if bind_obs is not None:
            # the routed planes arm chunk metadata + latency histograms
            bind_obs(self.registry)
        if backend == "selectors":
            self._server = _SelectorsServer((host, port), self.core, verbose)
        else:
            self._server = _ServingHTTPServer((host, port), self.core, verbose)
        self._thread: Optional[threading.Thread] = None
        self._activated = False

    @property
    def host(self) -> str:
        """Bound interface address."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """Bound TCP port (the OS pick when constructed with 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        return f"http://{self.host}:{self.port}"

    def _activate(self) -> None:
        self._activated = True
        if self.checkpointer is not None:
            self.checkpointer.start()
        if self.coalescer is not None:
            self.coalescer.start()
        if self.autopilot is not None:
            self.autopilot.start()

    def start(self) -> "ServingGateway":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        self._activate()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serving-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's blocking mode)."""
        self._activate()
        self._server.serve_forever()

    def stop(self) -> None:
        """Shut down the server and release the port."""
        if self._activated:
            # shutdown() blocks forever unless serve_forever has run.
            self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.autopilot is not None and self._activated:
            self.autopilot.stop()
        if self.coalescer is not None and self._activated:
            self.coalescer.stop()
        if self.checkpointer is not None and self._activated:
            self.checkpointer.stop()
        close_ingest = getattr(self.ingest, "close", None)
        if close_ingest is not None:
            close_ingest()
        self._server.server_close()
        if self._owns_tracer:
            self._owns_tracer = False
            tracing.uninstall()

    def __enter__(self) -> "ServingGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServingGateway(url={self.url!r}, backend={self.backend!r})"
        )
