"""Tests for metric semantics."""

import numpy as np
import pytest

from repro.measurement.metrics import Metric


class TestSemantics:
    def test_rtt_symmetric(self):
        assert Metric.RTT.symmetric
        assert not Metric.ABW.symmetric

    def test_direction_of_good(self):
        assert not Metric.RTT.higher_is_better
        assert Metric.ABW.higher_is_better

    def test_inference_side(self):
        assert not Metric.RTT.inferred_at_target
        assert Metric.ABW.inferred_at_target

    def test_units(self):
        assert Metric.RTT.unit == "ms"
        assert Metric.ABW.unit == "Mbps"


class TestIsGood:
    def test_rtt_good_below(self):
        assert Metric.RTT.is_good(10.0, 50.0)
        assert not Metric.RTT.is_good(100.0, 50.0)

    def test_abw_good_above(self):
        assert Metric.ABW.is_good(100.0, 50.0)
        assert not Metric.ABW.is_good(10.0, 50.0)

    def test_boundary_is_bad(self):
        assert not Metric.RTT.is_good(50.0, 50.0)
        assert not Metric.ABW.is_good(50.0, 50.0)

    def test_vectorized(self):
        out = Metric.RTT.is_good(np.array([1.0, 100.0]), 50.0)
        np.testing.assert_array_equal(out, [True, False])


class TestBest:
    def test_rtt_picks_min(self):
        assert Metric.RTT.best(np.array([5.0, 1.0, 3.0])) == 1

    def test_abw_picks_max(self):
        assert Metric.ABW.best(np.array([5.0, 1.0, 3.0])) == 0

    def test_ignores_nan(self):
        assert Metric.RTT.best(np.array([np.nan, 2.0, 3.0])) == 1

    def test_all_nan_raises(self):
        with pytest.raises(ValueError):
            Metric.RTT.best(np.array([np.nan, np.nan]))


class TestStretch:
    def test_ratio(self):
        assert Metric.RTT.stretch(20.0, 10.0) == 2.0

    def test_zero_best_raises(self):
        with pytest.raises(ValueError):
            Metric.RTT.stretch(1.0, 0.0)


class TestParse:
    @pytest.mark.parametrize("text", ["rtt", "RTT", " rtt "])
    def test_parse_rtt(self, text):
        assert Metric.parse(text) is Metric.RTT

    def test_parse_abw(self):
        assert Metric.parse("abw") is Metric.ABW

    def test_parse_metric_passthrough(self):
        assert Metric.parse(Metric.ABW) is Metric.ABW

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            Metric.parse("plr")

    def test_parse_non_string(self):
        with pytest.raises(ValueError):
            Metric.parse(42)
