"""Vivaldi network coordinates [Dabek et al., SIGCOMM'04].

Vivaldi embeds nodes in a low-dimensional Euclidean space augmented with
a *height* (modeling access-link delay); the predicted RTT between two
nodes is the distance between their coordinates plus both heights.  Each
measurement moves the probing node's coordinate as if connected to its
neighbor by a spring of rest length equal to the measured RTT, with an
adaptive timestep weighted by the relative confidence of the two nodes.

This is the classic decentralized *quantity* predictor for RTT; the
paper cites it as the architectural template of DMFSGD (Section 5.3).
Class predictions are obtained by thresholding predicted RTTs with
``tau``, giving the "NCS + thresholding" baseline for ablation benches.

Limitations faithfully inherited from the model: symmetric predictions
only (RTT), and triangle-inequality violations in the data produce
irreducible embedding error — the very weakness matrix factorization
avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive

__all__ = ["Vivaldi", "VivaldiConfig"]


@dataclass(frozen=True)
class VivaldiConfig:
    """Vivaldi hyper-parameters (defaults from the original paper).

    Attributes
    ----------
    dimensions:
        Euclidean embedding dimension (heights are extra).
    ce:
        Confidence EWMA gain (``c_e``).
    cc:
        Timestep gain (``c_c``).
    use_height:
        Whether to use the height-vector model (recommended for RTT).
    """

    dimensions: int = 2
    ce: float = 0.25
    cc: float = 0.25
    use_height: bool = True

    def __post_init__(self) -> None:
        if self.dimensions <= 0:
            raise ValueError(f"dimensions must be positive, got {self.dimensions}")
        check_positive(self.ce, "ce")
        check_positive(self.cc, "cc")


class Vivaldi:
    """A Vivaldi system over ``n`` nodes.

    Coordinates start at the origin with unit error, as in the original
    system; symmetry breaking on coincident coordinates uses random unit
    vectors.
    """

    def __init__(
        self,
        n: int,
        config: Optional[VivaldiConfig] = None,
        *,
        rng: RngLike = None,
    ) -> None:
        if n < 2:
            raise ValueError(f"need at least 2 nodes, got {n}")
        self.n = int(n)
        self.config = config or VivaldiConfig()
        self._rng = ensure_rng(rng)
        self.positions = np.zeros((self.n, self.config.dimensions))
        self.heights = np.zeros(self.n)
        self.errors = np.ones(self.n)
        self.updates = 0

    # ------------------------------------------------------------------
    # model
    # ------------------------------------------------------------------

    def predict(self, i: int, j: int) -> float:
        """Predicted RTT between ``i`` and ``j`` (ms)."""
        distance = float(np.linalg.norm(self.positions[i] - self.positions[j]))
        if self.config.use_height:
            distance += self.heights[i] + self.heights[j]
        return distance

    def predict_matrix(self) -> np.ndarray:
        """Dense predicted RTT matrix (NaN diagonal)."""
        diff = self.positions[:, None, :] - self.positions[None, :, :]
        matrix = np.linalg.norm(diff, axis=2)
        if self.config.use_height:
            matrix = matrix + self.heights[:, None] + self.heights[None, :]
        np.fill_diagonal(matrix, np.nan)
        return matrix

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------

    def observe(self, i: int, j: int, rtt: float) -> None:
        """Process one RTT measurement from ``i`` to ``j``.

        Moves node ``i`` (the prober) along the spring force; node ``j``
        is untouched, exactly as in the decentralized deployment where
        only the prober learns.
        """
        if not np.isfinite(rtt) or rtt <= 0:
            return
        i, j = int(i), int(j)
        if i == j:
            raise ValueError("self-measurements are undefined")

        predicted = self.predict(i, j)
        # sample weight: how much we trust our estimate vs the neighbor's
        w = self.errors[i] / (self.errors[i] + self.errors[j] + 1e-12)
        relative_error = abs(predicted - rtt) / rtt

        ce, cc = self.config.ce, self.config.cc
        self.errors[i] = relative_error * ce * w + self.errors[i] * (1.0 - ce * w)

        direction = self.positions[i] - self.positions[j]
        norm = float(np.linalg.norm(direction))
        if norm < 1e-12:
            direction = self._rng.normal(size=self.config.dimensions)
            norm = float(np.linalg.norm(direction))
        unit = direction / norm

        delta = cc * w
        force = rtt - predicted
        self.positions[i] = self.positions[i] + delta * force * unit
        if self.config.use_height:
            # heights absorb the non-Euclidean access-delay component
            self.heights[i] = max(0.0, self.heights[i] + delta * force * 0.5)
        self.updates += 1

    def train(
        self,
        rtt_matrix: np.ndarray,
        neighbor_sets: np.ndarray,
        rounds: int,
        *,
        rng: RngLike = None,
    ) -> None:
        """Round-based training mirroring the DMFSGD engine's schedule.

        Each round every node probes one random neighbor from its set;
        NaN ground-truth pairs are skipped.
        """
        if rounds <= 0:
            raise ValueError(f"rounds must be positive, got {rounds}")
        matrix = np.asarray(rtt_matrix, dtype=float)
        neighbor_sets = np.asarray(neighbor_sets, dtype=int)
        generator = ensure_rng(rng)
        k = neighbor_sets.shape[1]
        for _ in range(rounds):
            picks = generator.integers(0, k, size=self.n)
            for i in range(self.n):
                j = int(neighbor_sets[i, picks[i]])
                self.observe(i, j, float(matrix[i, j]))
