"""Tests for the peer-selection application."""

import numpy as np
import pytest

from repro.apps.peer_selection import (
    PeerSelectionExperiment,
    build_peer_sets,
    select_peers,
)


class TestBuildPeerSets:
    def test_shape(self):
        peers = build_peer_sets(20, 5, rng=0)
        assert peers.shape == (20, 5)

    def test_no_self(self):
        peers = build_peer_sets(20, 5, rng=0)
        own = np.arange(20)[:, None]
        assert not (peers == own).any()

    def test_distinct(self):
        peers = build_peer_sets(20, 10, rng=0)
        for row in peers:
            assert len(set(row.tolist())) == 10

    def test_exclusion_disjoint(self):
        exclude = np.tile(np.array([[1, 2, 3]]), (10, 1))
        peers = build_peer_sets(10, 4, exclude=exclude, rng=0)
        # nodes 1..3 are excluded from every peer set
        assert not np.isin(peers, [1, 2, 3]).any()

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            build_peer_sets(5, 5, rng=0)


class TestSelectPeers:
    @pytest.fixture
    def setup(self, rng):
        n, m = 12, 4
        peers = build_peer_sets(n, m, rng=0)
        decision = rng.normal(size=(n, n))
        np.fill_diagonal(decision, np.nan)
        return n, peers, decision

    def test_classification_picks_argmax(self, setup):
        n, peers, decision = setup
        chosen = select_peers(
            "classification", peers, metric="rtt", decision_matrix=decision
        )
        for i in range(n):
            values = decision[i, peers[i]]
            assert decision[i, chosen[i]] == np.nanmax(values)

    def test_regression_rtt_picks_min(self, setup):
        n, peers, decision = setup
        quantities = np.abs(decision) + 1.0
        chosen = select_peers(
            "regression", peers, metric="rtt", decision_matrix=quantities
        )
        for i in range(n):
            assert quantities[i, chosen[i]] == np.nanmin(quantities[i, peers[i]])

    def test_regression_abw_picks_max(self, setup):
        n, peers, decision = setup
        quantities = np.abs(decision) + 1.0
        chosen = select_peers(
            "regression", peers, metric="abw", decision_matrix=quantities
        )
        for i in range(n):
            assert quantities[i, chosen[i]] == np.nanmax(quantities[i, peers[i]])

    def test_random_stays_in_peer_set(self, setup):
        n, peers, _ = setup
        chosen = select_peers("random", peers, metric="rtt", rng=0)
        for i in range(n):
            assert chosen[i] in peers[i]

    def test_nan_predictions_ranked_last(self):
        peers = np.array([[1, 2]])
        decision = np.array(
            [[np.nan, np.nan, 0.1], [0, 0, 0], [0, 0, 0]], dtype=float
        )
        chosen = select_peers(
            "classification", peers, metric="rtt", decision_matrix=decision
        )
        assert chosen[0] == 2

    def test_requires_decision_matrix(self, setup):
        _, peers, _ = setup
        with pytest.raises(ValueError):
            select_peers("classification", peers, metric="rtt")

    def test_unknown_strategy(self, setup):
        _, peers, decision = setup
        with pytest.raises(ValueError):
            select_peers("oracle", peers, metric="rtt", decision_matrix=decision)


class TestExperiment:
    @pytest.fixture
    def experiment(self, rtt_dataset):
        peers = build_peer_sets(rtt_dataset.n, 8, rng=1)
        return PeerSelectionExperiment(rtt_dataset, peers)

    def test_oracle_selection_perfect(self, experiment, rtt_dataset):
        """Selecting with the true quantities yields stretch 1, unsat 0."""
        truth = rtt_dataset.quantities
        result = experiment.run("regression", decision_matrix=truth)
        assert result.mean_stretch == pytest.approx(1.0)
        assert result.unsatisfied_fraction == 0.0

    def test_random_worse_than_oracle(self, experiment, rtt_dataset):
        random_result = experiment.run("random", rng=3)
        assert random_result.mean_stretch > 1.0
        assert random_result.unsatisfied_fraction > 0.0

    def test_rtt_stretch_at_least_one(self, experiment):
        result = experiment.run("random", rng=3)
        assert result.mean_stretch >= 1.0

    def test_abw_stretch_at_most_one(self, abw_dataset):
        peers = build_peer_sets(abw_dataset.n, 8, rng=1)
        experiment = PeerSelectionExperiment(abw_dataset, peers)
        result = experiment.run(
            "regression", decision_matrix=abw_dataset.quantities
        )
        assert result.mean_stretch <= 1.0 + 1e-9

    def test_result_fields(self, experiment):
        result = experiment.run("random", rng=3)
        assert result.strategy == "random"
        assert result.peer_count == 8
        assert result.evaluated_nodes > 0

    def test_shape_validation(self, rtt_dataset):
        with pytest.raises(ValueError):
            PeerSelectionExperiment(rtt_dataset, np.zeros((3, 2), dtype=int))

    def test_selected_shape_validation(self, experiment, rtt_dataset):
        with pytest.raises(ValueError):
            experiment.evaluate("random", np.zeros(3, dtype=int))
