"""Query-side API of the serving layer: cached, vectorized prediction.

:class:`PredictionService` turns a :class:`~repro.serving.store.CoordinateStore`
into the paper's *prediction module* as an online facility: any node
pair's performance class (and the underlying real-valued estimate) is
available on demand, without any further measurement.

Three query granularities, matching how applications consume network
performance predictions:

* :meth:`PredictionService.predict_pair` — one ``(source, target)``
  lookup, served from a bounded LRU cache keyed by the snapshot
  version, so repeated queries against an unchanged model cost a dict
  hit instead of a dot product;
* :meth:`PredictionService.predict_from` — one-to-many (peer
  selection's shape: rank all candidate targets of one source) as a
  single ``V @ u_i`` matrix product;
* :meth:`PredictionService.predict_matrix` — the full ``U V^T`` batch,
  for offline-style consumers.

Consistency model: every query is answered from one immutable snapshot,
so a one-to-many or full-batch answer is internally consistent.  When
the ingest pipeline publishes a new snapshot the service notices the
version bump on the next query and drops the entire cache — cached
entries can therefore never outlive the model they were computed from
(staleness is bounded by the ingest refresh policy, not by the cache).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.serving.store import CoordinateSnapshot, CoordinateStore

__all__ = [
    "PairPrediction",
    "RowPrediction",
    "BatchPrediction",
    "ServiceStats",
    "PredictionService",
]


def classify_score(estimate: float) -> Optional[int]:
    """Map a real-valued estimate to the {+1, -1} class.

    Exact-zero ties break toward good, matching
    :meth:`repro.core.engine.TrainResult.predicted_classes`; a
    non-finite estimate (untrained/diverged model) has no class and
    maps to ``None``, matching the NaN propagation of
    :meth:`RowPrediction.labels`.
    """
    if not np.isfinite(estimate):
        return None
    return -1 if estimate < 0 else 1


def _classify_scores(estimates: np.ndarray) -> np.ndarray:
    """Vectorized :func:`classify_score` (NaN slots stay NaN)."""
    labels = np.where(estimates < 0, -1.0, 1.0)
    return np.where(np.isfinite(estimates), labels, np.nan)


def _json_floats(values: np.ndarray) -> list:
    """Finite floats, NaN -> None (bare NaN is not valid JSON)."""
    return [float(v) if np.isfinite(v) else None for v in values]


def _json_labels(labels: np.ndarray) -> list:
    """Finite labels as ints, NaN -> None."""
    return [int(l) if np.isfinite(l) else None for l in labels]


@dataclass(frozen=True)
class PairPrediction:
    """Answer to a single-pair query."""

    source: int
    target: int
    estimate: float
    label: Optional[int]
    version: int
    cached: bool

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by the gateway).

        A non-finite estimate (diverged/untrained model) becomes
        ``null`` — bare NaN is not valid JSON.
        """
        finite = np.isfinite(self.estimate)
        return {
            "source": self.source,
            "target": self.target,
            "estimate": float(self.estimate) if finite else None,
            "label": self.label,
            "version": self.version,
            "cached": self.cached,
        }


@dataclass(frozen=True)
class RowPrediction:
    """Answer to a one-to-many query (targets aligned with estimates)."""

    source: int
    targets: np.ndarray
    estimates: np.ndarray
    version: int

    def labels(self) -> np.ndarray:
        """{+1, -1} classes of the estimates (NaN slots stay NaN)."""
        return _classify_scores(self.estimates)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (NaN estimates become None)."""
        return {
            "source": self.source,
            "targets": [int(t) for t in self.targets],
            "estimates": _json_floats(self.estimates),
            "labels": _json_labels(self.labels()),
            "version": self.version,
        }


@dataclass(frozen=True)
class BatchPrediction:
    """Answer to a many-pair query (pairs aligned with estimates)."""

    sources: np.ndarray
    targets: np.ndarray
    estimates: np.ndarray
    version: int

    def labels(self) -> np.ndarray:
        """{+1, -1} classes of the estimates (NaN slots stay NaN)."""
        return _classify_scores(self.estimates)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (NaN estimates become None)."""
        return {
            "sources": [int(s) for s in self.sources],
            "targets": [int(t) for t in self.targets],
            "estimates": _json_floats(self.estimates),
            "labels": _json_labels(self.labels()),
            "version": self.version,
        }


@dataclass
class ServiceStats:
    """Cumulative query counters (all monotone except ``cache_entries``)."""

    pair_queries: int = 0
    row_queries: int = 0
    batch_queries: int = 0
    batch_pairs: int = 0
    matrix_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    invalidations: int = 0
    cache_entries: int = 0
    version: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready counters (the ``service`` section of ``/stats``)."""
        return dict(self.__dict__)


class PredictionService:
    """Cached prediction frontend over a :class:`CoordinateStore`.

    Thread-safety: fully concurrent.  Snapshot reads and the NumPy
    estimate kernels run lock-free; the internal mutex guards only
    counter bumps and cache insert/evict, so concurrent readers never
    serialize on each other's gathers.

    Parameters
    ----------
    store:
        Source of model snapshots.
    cache_size:
        Maximum number of cached pair predictions (LRU eviction);
        0 disables caching entirely.
    """

    def __init__(self, store: CoordinateStore, *, cache_size: int = 4096) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self.store = store
        self.cache_size = int(cache_size)
        self._cache: "OrderedDict[tuple, float]" = OrderedDict()
        self._cache_version = store.version
        self._lock = threading.Lock()
        self._stats = ServiceStats()

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------

    def _roll_version(self, snapshot: CoordinateSnapshot) -> None:
        """Advance the cache epoch when a newer model was published.

        Forward-only: a straggler request still holding a pre-publish
        snapshot must not wipe the freshly rebuilt cache of the newer
        version — it bypasses the cache instead (see :meth:`_cache_get`).
        """
        if snapshot.version > self._cache_version:
            if self._cache:
                self._stats.invalidations += 1
            self._cache.clear()
            self._cache_version = snapshot.version

    def _cache_get(self, snapshot: CoordinateSnapshot, key: tuple):
        self._roll_version(snapshot)
        if snapshot.version != self._cache_version:
            # stale snapshot: its model is not the cached one
            self._stats.cache_misses += 1
            return None
        if key in self._cache:
            self._cache.move_to_end(key)
            self._stats.cache_hits += 1
            return self._cache[key]
        self._stats.cache_misses += 1
        return None

    def _cache_put(self, key: tuple, value: float) -> None:
        self._cache[key] = value
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self._stats.cache_evictions += 1

    def clear_cache(self) -> None:
        """Explicitly drop every cached prediction."""
        with self._lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def predict_pair(self, source: int, target: int) -> PairPrediction:
        """Predict the performance class of one directed pair.

        The path to self is undefined (as everywhere in the repo), so
        ``source == target`` is rejected rather than answered with a
        meaningless product.
        """
        if int(source) == int(target):
            raise ValueError(
                f"the path from node {int(source)} to itself is undefined"
            )
        snapshot = self.store.snapshot()
        if self.cache_size == 0:
            with self._lock:
                self._stats.pair_queries += 1
            estimate = snapshot.estimate(source, target)
            return PairPrediction(
                source=int(source),
                target=int(target),
                estimate=estimate,
                label=classify_score(estimate),
                version=snapshot.version,
                cached=False,
            )
        key = (int(source), int(target))
        with self._lock:
            self._stats.pair_queries += 1
            hit = self._cache_get(snapshot, key)
        if hit is not None:
            return PairPrediction(
                source=key[0],
                target=key[1],
                estimate=hit,
                label=classify_score(hit),
                version=snapshot.version,
                cached=True,
            )
        # Locking discipline: the NumPy work (the dot product, and the
        # lock-free store.snapshot() re-read below) happens strictly
        # outside the mutex; the lock guards only counter bumps and
        # cache insert/evict, so concurrent readers never serialize on
        # each other's gathers.
        estimate = snapshot.estimate(source, target)
        latest = self.store.snapshot()
        with self._lock:
            # Re-check the epoch: a publish may have raced the compute.
            self._roll_version(latest)
            if self._cache_version == snapshot.version:
                self._cache_put(key, estimate)
        return PairPrediction(
            source=key[0],
            target=key[1],
            estimate=estimate,
            label=classify_score(estimate),
            version=snapshot.version,
            cached=False,
        )

    def predict_from(
        self, source: int, targets: Optional[np.ndarray] = None
    ) -> RowPrediction:
        """One-to-many prediction via a single ``V @ u_i`` product."""
        snapshot = self.store.snapshot()
        with self._lock:
            self._stats.row_queries += 1
        estimates = snapshot.estimate_row(source, targets)
        if targets is None:
            targets = np.arange(snapshot.n)
        else:
            targets = np.asarray(targets, dtype=int)
            # mask the undefined self-path in explicit target lists too
            estimates = np.where(targets == int(source), np.nan, estimates)
        return RowPrediction(
            source=int(source),
            targets=targets,
            estimates=estimates,
            version=snapshot.version,
        )

    def predict_pairs(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> BatchPrediction:
        """Many-pair prediction answered with one vectorized gather.

        The ``POST /estimate/batch`` shape: ``k`` arbitrary pairs in,
        ``k`` estimates out of a single snapshot (internally
        consistent), one einsum instead of ``k`` dot products.
        Self-pairs answer NaN (the path to self is undefined) rather
        than failing the whole batch; out-of-range indices raise.
        """
        sources = np.asarray(sources, dtype=int)
        targets = np.asarray(targets, dtype=int)
        snapshot = self.store.snapshot()
        with self._lock:
            self._stats.batch_queries += 1
            self._stats.batch_pairs += int(sources.size)
        estimates = snapshot.estimate_pairs(sources, targets)
        estimates = np.where(sources == targets, np.nan, estimates)
        return BatchPrediction(
            sources=sources,
            targets=targets,
            estimates=estimates,
            version=snapshot.version,
        )

    def predict_matrix(self) -> np.ndarray:
        """Full-batch ``X_hat = U V^T`` (NaN diagonal)."""
        snapshot = self.store.snapshot()
        with self._lock:
            self._stats.matrix_queries += 1
        return snapshot.estimate_matrix()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A point-in-time copy of the counters."""
        with self._lock:
            stats = ServiceStats(**self._stats.as_dict())
            stats.cache_entries = len(self._cache)
            stats.version = self.store.version
            return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PredictionService(n={self.store.n}, "
            f"cache_size={self.cache_size})"
        )
