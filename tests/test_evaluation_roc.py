"""Tests for ROC curves and AUC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.roc import auc_score, roc_curve


def brute_force_auc(y_true, scores):
    """P(score_pos > score_neg) + 0.5 P(tie), by enumeration."""
    positives = scores[y_true == 1.0]
    negatives = scores[y_true == -1.0]
    wins = ties = 0
    for p in positives:
        for n in negatives:
            if p > n:
                wins += 1
            elif p == n:
                ties += 1
    return (wins + 0.5 * ties) / (len(positives) * len(negatives))


class TestAucScore:
    def test_perfect_classifier(self):
        y = np.array([1.0, 1.0, -1.0, -1.0])
        scores = np.array([2.0, 1.0, -1.0, -2.0])
        assert auc_score(y, scores) == 1.0

    def test_inverted_classifier(self):
        y = np.array([1.0, -1.0])
        scores = np.array([-5.0, 5.0])
        assert auc_score(y, scores) == 0.0

    def test_random_scores_near_half(self, rng):
        y = rng.choice([1.0, -1.0], size=3000)
        scores = rng.normal(size=3000)
        assert auc_score(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_matches_brute_force(self, rng):
        y = rng.choice([1.0, -1.0], size=60)
        scores = rng.normal(size=60).round(1)  # rounding creates ties
        assert auc_score(y, scores) == pytest.approx(brute_force_auc(y, scores))

    def test_ties_give_half_credit(self):
        y = np.array([1.0, -1.0])
        scores = np.array([3.0, 3.0])
        assert auc_score(y, scores) == 0.5

    def test_nan_pairs_dropped(self):
        y = np.array([1.0, -1.0, np.nan, 1.0])
        scores = np.array([2.0, 1.0, 0.0, np.nan])
        assert auc_score(y, scores) == 1.0

    def test_matrix_input(self, rng):
        y = rng.choice([1.0, -1.0], size=(10, 10))
        np.fill_diagonal(y, np.nan)
        scores = rng.normal(size=(10, 10))
        value = auc_score(y, scores)
        assert 0.0 <= value <= 1.0

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            auc_score(np.array([1.0, 1.0]), np.array([0.1, 0.2]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            auc_score(np.array([np.nan]), np.array([np.nan]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            auc_score(np.array([1.0]), np.array([1.0, 2.0]))

    @given(
        data=st.lists(
            st.tuples(
                st.sampled_from([1.0, -1.0]),
                # round to a 1e-3 grid so the affine transform below
                # cannot collapse distinct scores into float ties
                st.floats(-5, 5, allow_nan=False).map(lambda v: round(v, 3)),
            ),
            min_size=4,
            max_size=60,
        )
    )
    @settings(max_examples=40)
    def test_invariant_under_monotone_transform(self, data):
        y = np.array([d[0] for d in data])
        scores = np.array([d[1] for d in data])
        if (y == 1.0).sum() == 0 or (y == -1.0).sum() == 0:
            return
        base = auc_score(y, scores)
        # strictly increasing affine map preserves the ranking exactly
        transformed = auc_score(y, 2.0 * scores + 1.0)
        assert base == pytest.approx(transformed)


class TestRocCurve:
    def test_endpoints(self, rng):
        y = rng.choice([1.0, -1.0], size=100)
        scores = rng.normal(size=100)
        fpr, tpr, thresholds = roc_curve(y, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_monotone(self, rng):
        y = rng.choice([1.0, -1.0], size=200)
        scores = rng.normal(size=200)
        fpr, tpr, _ = roc_curve(y, scores)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()

    def test_trapezoid_area_matches_auc(self, rng):
        y = rng.choice([1.0, -1.0], size=300)
        scores = rng.normal(size=300) + (y == 1.0) * 0.8
        fpr, tpr, _ = roc_curve(y, scores)
        area = float(np.trapezoid(tpr, fpr))
        assert area == pytest.approx(auc_score(y, scores), abs=1e-9)

    def test_perfect_curve(self):
        y = np.array([1.0, 1.0, -1.0, -1.0])
        scores = np.array([2.0, 1.5, 0.5, 0.2])
        fpr, tpr, _ = roc_curve(y, scores)
        # reaches (0, 1) before any false positive
        assert tpr[np.searchsorted(fpr, 0.0, side="right") - 1] <= 1.0
        assert auc_score(y, scores) == 1.0

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([1.0, 1.0]), np.array([0.1, 0.2]))
