"""Tests for the live traffic drivers (repro.simnet.livefeed)."""

import numpy as np
import pytest

from repro.core.config import DMFSGDConfig
from repro.core.engine import DMFSGDEngine, matrix_label_fn
from repro.evaluation import auc_score
from repro.measurement.classifier import ThresholdClassifier
from repro.serving.ingest import IngestPipeline
from repro.serving.store import CoordinateStore
from repro.simnet.livefeed import HotPairDriver, LiveFeedDriver, replay_trace


class _RecordingSink:
    """Collects everything submitted, for traffic-shape assertions."""

    def __init__(self):
        self.sources = []
        self.targets = []
        self.values = []

    def submit_many(self, sources, targets, values):
        self.sources.extend(np.asarray(sources, dtype=int).tolist())
        self.targets.extend(np.asarray(targets, dtype=int).tolist())
        self.values.extend(np.asarray(values, dtype=float).tolist())
        return len(self.values)


class TestLiveFeedDriver:
    def test_round_feeds_one_probe_per_node(self, rtt_dataset):
        sink = _RecordingSink()
        driver = LiveFeedDriver(
            rtt_dataset.quantities, sink, neighbors=5, rng=3
        )
        fed = driver.step_round()
        assert fed == len(sink.values)
        assert fed <= rtt_dataset.n
        # every sample is a (node -> one of its neighbors) probe
        neighbor_sets = driver.neighbor_sets
        for src, dst in zip(sink.sources, sink.targets):
            assert dst in neighbor_sets[src]

    def test_values_come_from_ground_truth(self, rtt_dataset):
        sink = _RecordingSink()
        driver = LiveFeedDriver(
            rtt_dataset.quantities, sink, neighbors=5, jitter=0.0, rng=3
        )
        driver.run(3)
        for src, dst, value in zip(sink.sources, sink.targets, sink.values):
            assert value == pytest.approx(rtt_dataset.quantities[src, dst])

    def test_jitter_perturbs_values(self, rtt_dataset):
        sink = _RecordingSink()
        driver = LiveFeedDriver(
            rtt_dataset.quantities, sink, neighbors=5, jitter=0.3, rng=3
        )
        driver.run(2)
        exact = [
            value == rtt_dataset.quantities[src, dst]
            for src, dst, value in zip(sink.sources, sink.targets, sink.values)
        ]
        assert not all(exact)

    def test_loss_rate_drops_probes(self, rtt_dataset):
        sink = _RecordingSink()
        driver = LiveFeedDriver(
            rtt_dataset.quantities, sink, neighbors=5, loss_rate=0.5, rng=3
        )
        fed = driver.run(10)
        assert fed == driver.samples_fed == len(sink.values)
        assert fed < 10 * rtt_dataset.n * 0.8  # far fewer than lossless

    def test_rejects_bad_args(self, rtt_dataset):
        sink = _RecordingSink()
        with pytest.raises(ValueError):
            LiveFeedDriver(rtt_dataset.quantities, sink, jitter=-1.0)
        driver = LiveFeedDriver(rtt_dataset.quantities, sink, rng=0)
        with pytest.raises(ValueError):
            driver.run(0)
        with pytest.raises(ValueError):
            LiveFeedDriver(
                rtt_dataset.quantities,
                sink,
                neighbor_sets=np.zeros((3, 2), dtype=int),
            )

    def test_outlier_rate_injects_spikes(self, rtt_dataset):
        sink = _RecordingSink()
        driver = LiveFeedDriver(
            rtt_dataset.quantities,
            sink,
            neighbors=5,
            outlier_rate=0.2,
            outlier_scale=100.0,
            rng=3,
        )
        driver.run(5)
        assert driver.outliers_fed > 0
        truth_max = np.nanmax(rtt_dataset.quantities)
        assert max(sink.values) > truth_max  # spikes exceed any true value

    def test_outlier_validation(self, rtt_dataset):
        with pytest.raises(ValueError):
            LiveFeedDriver(
                rtt_dataset.quantities, _RecordingSink(), outlier_scale=0.0
            )

    def test_drives_serving_model_to_accuracy(self, rtt_dataset, rtt_labels):
        """The closed loop: simulated traffic -> ingest -> good AUC."""
        n = rtt_dataset.n
        tau = rtt_dataset.median()
        config = DMFSGDConfig(neighbors=8)
        engine = DMFSGDEngine(
            n, matrix_label_fn(rtt_labels), config, rng=21
        )
        store = CoordinateStore(engine.coordinates)
        pipeline = IngestPipeline(
            engine,
            store,
            classify=ThresholdClassifier("rtt", tau),
            batch_size=n,
            refresh_interval=5 * n,
        )
        auc_untrained = auc_score(
            rtt_labels, store.snapshot().estimate_matrix()
        )
        driver = LiveFeedDriver(
            rtt_dataset.quantities,
            pipeline,
            neighbor_sets=engine.neighbor_sets,
            jitter=0.1,
            rng=22,
        )
        driver.run(rounds=240)
        pipeline.publish()
        auc_trained = auc_score(
            rtt_labels, store.snapshot().estimate_matrix()
        )
        assert store.version > 2  # refresh policy fired during the run
        assert auc_trained > auc_untrained
        assert auc_trained > 0.85


class TestHotPairDriver:
    def test_pure_hammering_duplicates_one_pair(self, rtt_dataset):
        sink = _RecordingSink()
        driver = HotPairDriver(
            rtt_dataset.quantities, sink, (3, 7), value=120.0, rng=5
        )
        fed = driver.run(300, burst=64)
        assert fed == 300 == driver.hot_fed
        assert set(zip(sink.sources, sink.targets)) == {(3, 7)}
        assert set(sink.values) == {120.0}
        # run() returns the per-call count; cumulative lives on the driver
        assert driver.run(200) == 200
        assert driver.samples_fed == 500

    def test_background_mixes_other_pairs(self, rtt_dataset):
        sink = _RecordingSink()
        driver = HotPairDriver(
            rtt_dataset.quantities, sink, (3, 7), value=120.0,
            background=0.5, rng=5,
        )
        driver.run(400)
        pairs = set(zip(sink.sources, sink.targets))
        assert (3, 7) in pairs
        assert len(pairs) > 1
        assert 0 < driver.hot_fed < driver.samples_fed
        assert all(src != dst for src, dst in pairs)

    def test_nan_background_probes_do_not_undercount(self, rtt_dataset):
        """run(count) delivers exactly count samples even when some
        background probes land on unmeasured (NaN) pairs."""
        holey = rtt_dataset.quantities.copy()
        rng = np.random.default_rng(0)
        holey[rng.random(holey.shape) < 0.5] = np.nan
        holey[3, 7] = 120.0  # the hot pair must stay measurable
        sink = _RecordingSink()
        driver = HotPairDriver(holey, sink, (3, 7), background=0.5, rng=5)
        assert driver.run(400) == 400
        assert len(sink.values) == 400

    def test_value_defaults_to_ground_truth(self, rtt_dataset):
        sink = _RecordingSink()
        driver = HotPairDriver(rtt_dataset.quantities, sink, (3, 7), rng=5)
        assert driver.value == pytest.approx(rtt_dataset.quantities[3, 7])

    def test_exercises_the_ingest_guard(self, rtt_dataset, rtt_labels):
        """The adversarial loop: hammering through a guarded pipeline
        produces dedup activity and a bounded estimate."""
        n = rtt_dataset.n
        config = DMFSGDConfig(neighbors=8)
        engine = DMFSGDEngine(n, matrix_label_fn(rtt_labels), config, rng=2)
        engine.run(rounds=80)
        store = CoordinateStore(engine.coordinates)
        tau = rtt_dataset.median()
        pipeline = IngestPipeline(
            engine,
            store,
            classify=ThresholdClassifier("rtt", tau),
            batch_size=128,
            refresh_interval=500,
        )
        before = store.snapshot().estimate(3, 7)
        driver = HotPairDriver(
            rtt_dataset.quantities, pipeline, (3, 7), value=tau * 3, rng=5
        )
        driver.run(1200)
        pipeline.publish()
        after = store.snapshot().estimate(3, 7)
        assert np.isfinite(after)
        assert abs(after) <= 10 * max(abs(before), 1.0)
        assert pipeline.stats().deduped > 0

    def test_validation(self, rtt_dataset):
        sink = _RecordingSink()
        with pytest.raises(ValueError):
            HotPairDriver(rtt_dataset.quantities, sink, (3, 3))
        with pytest.raises(ValueError):
            HotPairDriver(rtt_dataset.quantities, sink, (0, 10_000))
        driver = HotPairDriver(rtt_dataset.quantities, sink, (3, 7), rng=0)
        with pytest.raises(ValueError):
            driver.run(0)


class TestReplayTrace:
    def test_feeds_whole_trace_in_order(self, harvard_bundle):
        sink = _RecordingSink()
        fed = replay_trace(harvard_bundle.trace, sink, batch_size=512)
        assert fed == len(harvard_bundle.trace)
        np.testing.assert_array_equal(
            sink.sources, harvard_bundle.trace.sources
        )
        np.testing.assert_array_equal(
            sink.values, harvard_bundle.trace.values
        )

    def test_max_samples_cap(self, harvard_bundle):
        sink = _RecordingSink()
        fed = replay_trace(
            harvard_bundle.trace, sink, batch_size=300, max_samples=1000
        )
        assert fed == 1000
        assert len(sink.values) == 1000
