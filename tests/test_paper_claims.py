"""The abstract's claims, each as an executable assertion.

The paper's abstract makes five testable claims; this module is the
executive summary of the reproduction, checking each on small inputs
(the full-scale versions live in ``benchmarks/``):

1. performance matrices (and their class matrices) have low rank;
2. the resolution is *fully decentralized* — no matrices built, no
   landmarks, no central server;
3. the approach is accurate on both RTT and ABW class data;
4. it is robust against large amounts of erroneous measurements;
5. it is usable for peer selection.
"""

import numpy as np
import pytest

from repro.apps.peer_selection import PeerSelectionExperiment, build_peer_sets
from repro.core.config import DMFSGDConfig
from repro.core.dmfsgd import DMFSGDSimulation, oracle_from_matrix
from repro.core.engine import DMFSGDEngine, matrix_label_fn
from repro.evaluation import auc_score
from repro.evaluation.rank import effective_rank
from repro.measurement.errors import GoodToBad


class TestClaim1LowRank:
    def test_quantity_matrices_low_rank(self, rtt_dataset, abw_dataset):
        for dataset in (rtt_dataset, abw_dataset):
            rank = effective_rank(dataset.quantities, energy=0.95)
            assert rank <= dataset.n // 4, (
                f"{dataset.name}: effective rank {rank} not low"
            )

    def test_class_matrices_low_rank_enough_to_complete(self, rtt_dataset):
        """The operational meaning of 'low rank': rank-10 completion
        of the class matrix is accurate."""
        labels = rtt_dataset.class_matrix()
        filled = labels.copy()
        filled[~np.isfinite(filled)] = 0.0
        left, singular, right_t = np.linalg.svd(filled)
        approx = (left[:, :10] * singular[:10]) @ right_t[:10]
        assert auc_score(labels, approx) > 0.95


class TestClaim2Decentralized:
    def test_no_global_state_during_training(self, rtt_labels):
        """Every update reads only the two endpoints' vectors; the
        protocol simulation holds per-node state exclusively."""
        sim = DMFSGDSimulation(
            rtt_labels.shape[0],
            oracle_from_matrix(rtt_labels),
            DMFSGDConfig(neighbors=8),
            metric="rtt",
            rng=0,
        )
        # nodes own NodeCoordinates; the simulation owns no U/V arrays
        assert not hasattr(sim, "U") and not hasattr(sim, "V")
        per_node = [sim.nodes[i].coords for i in range(sim.n)]
        assert len({id(c) for c in per_node}) == sim.n

    def test_per_message_state_is_constant_size(self, rtt_labels):
        """Messages carry O(r) floats — no row/column of any matrix."""
        from repro.simnet.messages import Message

        sim = DMFSGDSimulation(
            rtt_labels.shape[0],
            oracle_from_matrix(rtt_labels),
            DMFSGDConfig(neighbors=8, rank=10),
            metric="rtt",
            rng=0,
        )
        sizes = []
        original = sim.network.send

        def spy(message: Message) -> None:
            sizes.append(message.size_bytes())
            original(message)

        sim.network.send = spy
        sim.run(duration=5.0)
        assert max(sizes) < 1000  # two rank-10 vectors + headers


class TestClaim3Accuracy:
    def test_rtt_classes(self, rtt_dataset, rtt_labels):
        engine = DMFSGDEngine(
            rtt_dataset.n,
            matrix_label_fn(rtt_labels),
            DMFSGDConfig(neighbors=8),
            metric="rtt",
            rng=1,
        )
        assert auc_score(rtt_labels, engine.run(250).estimate_matrix()) > 0.85

    def test_abw_classes(self, abw_dataset, abw_labels):
        engine = DMFSGDEngine(
            abw_dataset.n,
            matrix_label_fn(abw_labels),
            DMFSGDConfig(neighbors=8),
            metric="abw",
            rng=1,
        )
        assert auc_score(abw_labels, engine.run(250).estimate_matrix()) > 0.85


class TestClaim4Robustness:
    @pytest.mark.parametrize("error_level", [0.05, 0.10, 0.15])
    def test_degrades_gracefully(self, rtt_dataset, rtt_labels, error_level):
        corrupted = GoodToBad(error_level).apply(rtt_labels, rng=0)
        engine = DMFSGDEngine(
            rtt_dataset.n,
            matrix_label_fn(corrupted),
            DMFSGDConfig(neighbors=8),
            metric="rtt",
            rng=1,
        )
        auc = auc_score(rtt_labels, engine.run(250).estimate_matrix())
        # "as large as 15% erroneous labels" leaves a usable predictor
        assert auc > 0.75


class TestClaim5PeerSelection:
    def test_class_predictions_select_satisfactory_peers(
        self, rtt_dataset, rtt_labels
    ):
        engine = DMFSGDEngine(
            rtt_dataset.n,
            matrix_label_fn(rtt_labels),
            DMFSGDConfig(neighbors=8),
            metric="rtt",
            rng=1,
        )
        decision = engine.run(250).estimate_matrix()
        peers = build_peer_sets(
            rtt_dataset.n, 8, exclude=engine.neighbor_sets, rng=2
        )
        experiment = PeerSelectionExperiment(rtt_dataset, peers)
        predicted = experiment.run("classification", decision_matrix=decision)
        random = experiment.run("random", rng=3)
        assert predicted.unsatisfied_fraction < 0.5 * random.unsatisfied_fraction
        assert predicted.mean_stretch < random.mean_stretch