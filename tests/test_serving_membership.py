"""Tests for elastic membership (repro.serving.membership).

Covers the tentpole guarantees:

* **live epoch transitions** — joins grow and leaves shrink the model
  while ingest and queries keep running; the global version stays
  strictly monotone across every transition (cache invalidation);
* **warm starts** — a joined node serves finite estimates immediately
  (neighbor-mean and random);
* **tombstone-then-compact** — departed interior nodes keep their slot
  (ids stable), trailing tombstones are trimmed, and the tombstone set
  round-trips through a checkpoint;
* **churn under load** — a stress test drives join/leave transitions
  while gateway clients hammer queries: no request ever fails and no
  reader ever observes a torn (mixed-epoch) snapshot;
* the shard-count-mismatch reload carries the global version forward
  (the re-partition regression fix).
"""

import threading

import numpy as np
import pytest

from repro.core.config import DMFSGDConfig
from repro.core.engine import DMFSGDEngine
from repro.serving import build_gateway
from repro.serving.client import GatewayError, ServingClient
from repro.serving.membership import MembershipManager
from repro.serving.service import PredictionService
from repro.serving.shard import ShardedCoordinateStore, ShardedIngest
from repro.simnet.livefeed import ChurnDriver


def make_stack(n=24, shards=3, seed=7, workers=True, **ingest_kwargs):
    config = DMFSGDConfig(neighbors=min(8, n - 1))
    engine = DMFSGDEngine(n, lambda r, c: np.ones(len(r)), config, rng=seed)
    store = ShardedCoordinateStore(engine.coordinates, shards=shards)
    ingest_kwargs.setdefault("batch_size", 16)
    ingest_kwargs.setdefault("refresh_interval", 64)
    ingest = ShardedIngest(engine, store, workers=workers, **ingest_kwargs)
    manager = MembershipManager(engine, store, ingest, rng=seed)
    return engine, store, ingest, manager


class TestJoin:
    def test_join_appends_and_serves_finite_estimates(self):
        engine, store, ingest, manager = make_stack(workers=False)
        n = store.n
        service = PredictionService(store, cache_size=16)
        out = manager.join()
        assert out["node"] == n
        assert out["nodes"] == store.n == engine.n == n + 1
        assert manager.epoch == 2
        # finite immediately, both directions (warm start worked)
        assert np.isfinite(service.predict_pair(n, 0).estimate)
        assert np.isfinite(service.predict_pair(0, n).estimate)
        row = service.predict_from(n)
        assert np.isfinite(np.delete(row.estimates, n)).all()

    def test_neighbor_mean_matches_active_mean_bounds(self):
        engine, store, ingest, manager = make_stack(workers=False)
        U_before = engine.coordinates.U.copy()
        out = manager.join(warm_start="neighbor_mean")
        node = out["node"]
        u_new = engine.coordinates.U[node]
        # a mean of sampled active rows lies inside their coordinate hull
        assert np.all(u_new >= U_before.min(axis=0) - 1e-12)
        assert np.all(u_new <= U_before.max(axis=0) + 1e-12)

    def test_random_warm_start_respects_init_range(self):
        engine, store, ingest, manager = make_stack(workers=False)
        out = manager.join(warm_start="random")
        node = out["node"]
        config = engine.config
        for row in (engine.coordinates.U[node], engine.coordinates.V[node]):
            assert np.all(row >= config.init_low)
            assert np.all(row <= config.init_high)

    def test_join_bumps_every_shard_version(self):
        engine, store, ingest, manager = make_stack(workers=False)
        before = store.versions
        v_before = store.version
        manager.join()
        assert all(a > b for a, b in zip(store.versions, before))
        assert store.version > v_before

    def test_join_rejects_active_node_and_gaps(self):
        engine, store, ingest, manager = make_stack(workers=False)
        with pytest.raises(ValueError, match="active member"):
            manager.join(3)
        with pytest.raises(ValueError, match="fresh id"):
            manager.join(store.n + 5)
        with pytest.raises(ValueError, match="warm_start"):
            manager.join(warm_start="teleport")

    def test_ingest_reaches_joined_node(self):
        engine, store, ingest, manager = make_stack()
        try:
            out = manager.join()
            node = out["node"]
            before = engine.coordinates.U[node].copy()
            assert ingest.submit(node, 0, 1.0)
            ingest.flush()
            assert not np.array_equal(engine.coordinates.U[node], before)
        finally:
            ingest.close()


class TestLeaveAndCompact:
    def test_trailing_leave_compacts(self):
        engine, store, ingest, manager = make_stack(workers=False)
        n = store.n
        out = manager.leave(n - 1)
        assert out["compacted"] == 1
        assert store.n == engine.n == n - 1
        assert store.tombstones == ()

    def test_interior_leave_keeps_slot_and_ids_stable(self):
        engine, store, ingest, manager = make_stack(workers=False)
        n = store.n
        service = PredictionService(store, cache_size=0)
        reference = service.predict_pair(n - 1, 0).estimate
        out = manager.leave(4)
        assert out["compacted"] == 0
        assert store.n == n and store.tombstones == (4,)
        # live nodes answer the same estimates: nobody was renumbered
        assert service.predict_pair(n - 1, 0).estimate == reference

    def test_tombstoned_traffic_is_shed_and_counted(self):
        engine, store, ingest, manager = make_stack(workers=False)
        manager.leave(4)
        assert not ingest.submit(4, 1, 1.0)
        assert not ingest.submit(1, 4, 1.0)
        kept = ingest.submit_many(
            np.array([4.0, 1.0, 2.0]),
            np.array([2.0, 4.0, 1.0]),
            np.ones(3),
        )
        assert kept == 1
        assert ingest.stats_payload()["ingest"]["dropped_membership"] == 4

    def test_enqueue_refilters_under_the_gate(self):
        """A chunk that routed before a leave/shrink is re-validated at
        the gate (regression: only the model size was re-checked, so a
        racing interior leave could feed SGD a departed node's rows)."""
        engine, store, ingest, manager = make_stack()
        try:
            n = store.n
            src = np.array([1, 4, n - 1])
            dst = np.array([2, 2, 2])
            vals = np.ones(3)
            # the epoch changes *after* routing-time validation...
            manager.leave(4, compact=False)
            accepted = ingest._enqueue(1, (src, dst, vals))
            ingest.drain()
            assert accepted == 2  # the tombstoned sample was shed
            stats = ingest.stats_payload()["ingest"]
            assert stats["dropped_membership"] >= 1
            # ...and a stale out-of-range id after a shrink is shed too
            manager.leave(n - 1)  # trailing: compacts, n shrinks
            accepted = ingest._enqueue(1, (src, dst, vals))
            ingest.drain()
            assert accepted == 1  # only (1 -> 2) survives both checks
            assert ingest.worker_errors == []
        finally:
            ingest.close()

    def test_deferred_compaction_trims_trailing_run(self):
        engine, store, ingest, manager = make_stack(workers=False)
        n = store.n
        manager.leave(n - 1, compact=False)
        manager.leave(n - 2, compact=False)
        assert store.n == n
        out = manager.compact()
        assert out["compacted"] == 2
        assert store.n == n - 2 and store.tombstones == ()
        # a no-op compaction does not burn an epoch
        epoch = manager.epoch
        assert manager.compact()["compacted"] == 0
        assert manager.epoch == epoch

    def test_rejoin_warm_start_ignores_own_stale_row(self):
        """A rejoining node's pre-departure coordinates must not leak
        into its neighbor-mean warm start (regression: the slot was
        un-tombstoned before the warm rows were drawn)."""
        engine, store, ingest, manager = make_stack(workers=False)
        manager.leave(5, compact=False)
        # simulate the departed row having diverged while tombstoned
        engine.coordinates.U[5] = 1e6
        engine.coordinates.V[5] = 1e6
        manager.join(5, warm_start="neighbor_mean")
        # active rows live in [0, 1); a mean contaminated by the stale
        # row would be ~1e5
        assert np.all(np.abs(engine.coordinates.U[5]) < 10.0)
        assert np.all(np.abs(engine.coordinates.V[5]) < 10.0)

    def test_join_reuses_lowest_tombstoned_slot(self):
        engine, store, ingest, manager = make_stack(workers=False)
        manager.leave(9, compact=False)
        manager.leave(2, compact=False)
        assert manager.join()["node"] == 2
        assert manager.join()["node"] == 9
        assert store.tombstones == ()

    def test_leave_guards_minimum_population(self):
        engine, store, ingest, manager = make_stack(n=4, shards=2, workers=False)
        manager.leave(3)
        manager.leave(2)
        assert manager.active_nodes == 2
        with pytest.raises(ValueError, match="at least 2"):
            manager.leave(1)

    def test_double_leave_rejected(self):
        engine, store, ingest, manager = make_stack(workers=False)
        manager.leave(5, compact=False)
        with pytest.raises(ValueError, match="already departed"):
            manager.leave(5)

    def test_leave_and_compact_round_trips_through_checkpoint(self, tmp_path):
        engine, store, ingest, manager = make_stack(workers=False)
        n = store.n
        manager.leave(n - 1)  # compacts: n shrinks
        manager.leave(6, compact=False)  # interior tombstone survives
        path = tmp_path / "membership.npz"
        store.save(path)

        restored = ShardedCoordinateStore.load(path)
        assert restored.n == n - 1
        assert restored.tombstones == (6,)
        assert np.array_equal(
            restored.snapshot().estimate_matrix(),
            store.snapshot().estimate_matrix(),
            equal_nan=True,
        )
        # a manager over the restored store adopts the tombstones:
        # the next join reuses the departed slot
        config = DMFSGDConfig(neighbors=8)
        engine2 = DMFSGDEngine(
            restored.n, lambda r, c: np.ones(len(r)), config, rng=1
        )
        table = restored.snapshot().as_table()
        engine2.resize_model(table.U, table.V)
        ingest2 = ShardedIngest(engine2, restored, workers=False)
        manager2 = MembershipManager(engine2, restored, ingest2, rng=1)
        assert manager2.active_nodes == n - 2
        assert manager2.join()["node"] == 6


class TestVersionMonotonicity:
    def test_repartition_reload_carries_global_version_forward(
        self, rng, tmp_path
    ):
        U = rng.normal(size=(20, 4))
        V = rng.normal(size=(20, 4))
        store = ShardedCoordinateStore((U, V), shards=4)
        # advance some shards so the summed version is non-trivial
        snap = store.snapshot()
        for _ in range(3):
            store.publish_shard(1, snap.parts[1].U, snap.parts[1].V)
        store.publish_shard(3, snap.parts[3].U, snap.parts[3].V)
        total_before = store.version
        path = tmp_path / "four.npz"
        store.save(path)
        with pytest.warns(RuntimeWarning, match="carrying the global version"):
            restored = ShardedCoordinateStore.load(path, shards=2)
        assert restored.shards == 2
        # the regression this fixes: versions used to reset to 1 each,
        # so the global version went backwards and stale cache entries
        # could be served as fresh after a topology change
        assert restored.version >= total_before

    def test_every_transition_is_strictly_monotone(self):
        engine, store, ingest, manager = make_stack(workers=False)
        seen = [store.version]
        manager.join()
        seen.append(store.version)
        manager.leave(store.n - 1)
        seen.append(store.version)
        manager.leave(5, compact=False)
        seen.append(store.version)
        manager.join()
        seen.append(store.version)
        assert all(b > a for a, b in zip(seen, seen[1:]))


class TestChurnDriver:
    def test_flap_schedule_round_trips(self):
        engine, store, ingest, manager = make_stack(workers=False)
        flapped = [3, 7, 11]
        driver = ChurnDriver(
            manager, schedule=ChurnDriver.flap_schedule(flapped), rng=0
        )
        applied = driver.run(len(flapped) * 2)
        assert applied == 6
        assert driver.failures == 0
        assert store.tombstones == ()
        assert store.n == engine.n
        assert driver.step() is None  # schedule exhausted: no-op

    def test_stochastic_churn_respects_protection(self):
        engine, store, ingest, manager = make_stack(workers=False)
        protect = set(range(10))
        driver = ChurnDriver(
            manager,
            join_rate=0.5,
            leave_rate=0.9,
            protect=protect,
            rng=5,
        )
        driver.run(30)
        assert driver.leaves_done > 0
        for op, node, _ in driver.events:
            if op == "leave":
                assert node not in protect

    def test_rejected_ops_counted_not_raised(self):
        engine, store, ingest, manager = make_stack(workers=False)
        driver = ChurnDriver(manager, schedule=[("leave", 3), ("leave", 3)])
        first = driver.step()
        assert "error" not in first
        # a rejected op reports an error dict — NOT the end-of-schedule
        # None, so `while step() is not None` replays past failures
        second = driver.step()
        assert second is not None and "error" in second
        assert driver.step() is None  # only exhaustion returns None
        assert driver.leaves_done == 1
        assert driver.failures == 1


class TestChurnUnderLoad:
    """The acceptance stress: live churn with the gateway under load."""

    def test_queries_never_fail_and_never_tear_during_transitions(self):
        """Concurrent joins/leaves vs readers on the raw store: every
        snapshot is one complete epoch (consistent n across shards,
        finite estimates for stable nodes, monotone versions)."""
        engine, store, ingest, manager = make_stack(n=30, shards=3)
        service = PredictionService(store, cache_size=64)
        stable = np.arange(10)  # nodes the churn never touches
        qs = np.repeat(stable, 3)
        qt = (qs + 1 + np.tile(np.arange(3), 10)) % 10
        failures: list = []
        done = threading.Event()

        def reader() -> None:
            last_version = 0
            try:
                while not done.is_set():
                    snap = store.snapshot()
                    if snap.version < last_version:
                        failures.append("version regressed")
                    last_version = snap.version
                    if any(p.n != snap.n for p in snap.parts):
                        failures.append("mixed-epoch snapshot (torn)")
                    estimates = snap.estimate_pairs(qs, qt)
                    if not np.all(np.isfinite(estimates)):
                        failures.append("non-finite stable-pair estimate")
                    batch = service.predict_pairs(qs, qt)
                    if not np.all(np.isfinite(batch.estimates)):
                        failures.append("non-finite service estimate")
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(repr(exc))

        def feeder() -> None:
            feed_rng = np.random.default_rng(11)
            try:
                while not done.is_set():
                    src = feed_rng.integers(0, 10, size=32)
                    dst = (src + 1 + feed_rng.integers(0, 9, size=32)) % 10
                    vals = feed_rng.choice([-1.0, 1.0], size=32)
                    ingest.submit_many(src, dst, vals)
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(repr(exc))

        readers = [threading.Thread(target=reader) for _ in range(3)]
        feeders = [threading.Thread(target=feeder) for _ in range(2)]
        for t in readers + feeders:
            t.start()
        try:
            driver = ChurnDriver(
                manager,
                join_rate=0.7,
                leave_rate=0.7,
                protect=set(range(10)),
                rng=3,
            )
            driver.run(40)
            assert manager.epoch > 1
        finally:
            done.set()
            for t in readers + feeders:
                t.join()
            ingest.close()
        assert failures == []
        assert ingest.worker_errors == []

    def test_gateway_churn_end_to_end(self):
        """The acceptance path over HTTP: join then leave while clients
        stream queries — no request drops, /membership reports the new
        epoch and node count."""
        with build_gateway(
            "meridian",
            nodes=40,
            rounds=5,
            port=0,
            shards=2,
            allow_membership=True,
        ) as gateway:
            client = ServingClient(gateway.url)
            failures: list = []
            done = threading.Event()

            def querier(seed: int) -> None:
                q_rng = np.random.default_rng(seed)
                try:
                    while not done.is_set():
                        s = int(q_rng.integers(0, 10))
                        t = int((s + 1 + q_rng.integers(0, 9)) % 10)
                        answer = client.predict(s, t)
                        if answer["estimate"] is None:
                            failures.append("stable pair answered null")
                        client.ingest([(s, t, 100.0)])
                except GatewayError as exc:  # any non-2xx is a failure
                    failures.append(repr(exc))
                except Exception as exc:  # pragma: no cover
                    failures.append(repr(exc))

            threads = [
                threading.Thread(target=querier, args=(w,)) for w in range(3)
            ]
            for t in threads:
                t.start()
            try:
                joined = client.join()["node"]
                assert client.membership()["epoch"] == 2
                left = client.leave(joined)
                assert left["epoch"] == 3
                state = client.membership()
                assert state["nodes"] == 40
                assert state["joins"] == 1 and state["leaves"] == 1
            finally:
                done.set()
                for t in threads:
                    t.join()
            assert failures == []

    def test_membership_disabled_answers_400(self):
        with build_gateway(
            "meridian", nodes=40, rounds=0, port=0
        ) as gateway:
            client = ServingClient(gateway.url)
            with pytest.raises(GatewayError, match="membership"):
                client.membership()
            with pytest.raises(GatewayError, match="membership"):
                client.join()
            with pytest.raises(GatewayError, match="membership"):
                client.leave(0)
