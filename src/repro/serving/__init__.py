"""Online serving subsystem: a queryable, incrementally-updated service.

The offline pipeline ends with a trained factor pair ``(U, V)``; this
package turns that into the long-lived system the paper envisions —
every node's performance class towards every other node, predictable on
demand while fresh measurements keep improving the model:

* :mod:`repro.serving.store` — :class:`CoordinateStore`, versioned
  copy-on-write snapshots of the factors with save/load checkpointing;
* :mod:`repro.serving.service` — :class:`PredictionService`,
  single-pair / one-to-many / many-pair / full-batch prediction with a
  bounded, version-keyed LRU cache;
* :mod:`repro.serving.ingest` — :class:`IngestPipeline`, streaming
  measurements applied as incremental mini-batch SGD with a
  staleness-bounded refresh policy and a guarded (dedup + step-clip)
  default mode that keeps hot pairs from diverging the model;
* :mod:`repro.serving.guard` — the admission-control layer:
  :class:`AdmissionGuard` (per-source rate limiting + outlier
  rejection), :class:`OnlineEvaluator` (sliding-window drift metrics
  in ``/stats``) and :class:`BackgroundCheckpointer`;
* :mod:`repro.serving.shard` — the scale-out layer:
  :class:`ShardedCoordinateStore` (per-node-id partitions with
  lock-free RCU snapshot reads), :class:`ShardedIngest` (one guarded
  admission pipeline per shard behind a bounded queue on a dedicated
  worker thread) and :class:`RequestCoalescer` (concurrent single
  queries answered by one vectorized batch gather);
* :mod:`repro.serving.procs` — the process-per-shard layer:
  :class:`ProcessShardedStore` (per-shard factor slices in
  ``multiprocessing.shared_memory`` segments read through seqlocks),
  :class:`WorkerSupervisor` (spawn / health-check / restart-with-
  reattach / clean unlink) and :class:`ProcessShardedIngest` (the
  ``ShardedIngest`` surface over worker *processes* — true CPU
  parallelism for the SGD apply, selected by
  ``repro serve --workers processes``);
* :mod:`repro.serving.cluster` — the cluster plane:
  :class:`PartitionBook` (versioned ``src % P`` → named worker-group
  routing), :class:`MirrorStore` (each gateway's bounded-staleness
  read replica, pulled per group as plain :class:`ShardSnapshot`
  parts), :class:`RoutingGateway` (any gateway takes any traffic;
  ingest forwards to the owning group, reads never leave the mirror)
  and :class:`ClusterSupervisor` (heartbeat death detection,
  re-route-around with a distinct ``rejected_group_down`` reason, and
  restart-with-reattach), selected by ``repro serve --cluster G``;
* :mod:`repro.serving.membership` — :class:`MembershipManager`, the
  elastic-membership layer: live node join/leave applied as
  copy-on-write epoch transitions over the sharded store (warm-started
  joins, tombstone-then-compact leaves) without stopping ingest or
  queries;
* :mod:`repro.serving.plane` — :class:`ShardPlane`, the one protocol
  every sharding stack satisfies (snapshot reads, routed ingest,
  barrier, topology, health), :class:`RoutedIngestBase` (the shared
  routing/validation/**live-topology** half of both ingest stacks:
  ``set_shard_count`` / ``split_shard`` / ``merge_shards`` as atomic
  copy-on-write epoch transitions) and :func:`carried_versions`;
* :mod:`repro.serving.autopilot` — :class:`Autopilot`, the reconfig
  control loop (queue/throughput/heartbeat signals through an
  :class:`AutopilotPolicy` hysteresis, selected by ``repro serve
  --autopilot``) and :class:`PeriodicController`, the controller base
  it shares with :class:`AdaptiveGuardTuner`;
* :mod:`repro.serving.faults` — the fault plane:
  :class:`FaultInjector` / :class:`FaultPlan` (seeded, deterministic
  chaos injection at named fault points threaded through the stack —
  armed only by an explicit ``repro serve --chaos-plan`` or a direct
  ``faults.install``), :class:`CircuitBreaker` (closed/open/half-open
  isolation of flapping group transports) and :class:`LoadShedder`
  (watermark-driven overload shedding on the queue-fill signal);
* :mod:`repro.serving.gateway` — :class:`ServingGateway`, a
  stdlib-only JSON/HTTP frontend (``repro serve``) with two
  transports: thread-per-connection ``threading`` and a
  single-threaded non-blocking ``selectors`` event loop, plus
  per-request deadlines and 503 + Retry-After overload answers;
* :mod:`repro.serving.client` — :class:`ServingClient`, the matching
  :mod:`urllib` client;
* :mod:`repro.serving.app` — :func:`build_gateway`, the one-stop
  dataset-to-gateway assembler.

Quick start::

    from repro.serving import build_gateway, ServingClient

    with build_gateway("meridian", nodes=120, port=0) as gateway:
        client = ServingClient(gateway.url)
        print(client.predict(3, 17))         # {'estimate': ..., 'label': 1, ...}
        print(client.estimate_batch([(3, 17), (4, 9)]))  # one gather
        client.ingest([(3, 17, 250.0)] * 64) # stream new measurements
        client.refresh()                     # publish -> new version
        print(client.stats()["guard"])       # admission-control activity
"""

from repro.serving.app import build_gateway
from repro.serving.autopilot import Autopilot, AutopilotPolicy, PeriodicController
from repro.serving.client import GatewayError, ServingClient
from repro.serving.cluster import (
    BreakerTransport,
    ClusterSupervisor,
    GroupTransport,
    LocalGroupTransport,
    MirrorStore,
    PartitionBook,
    RoutingGateway,
    WorkerGroup,
    build_cluster,
)
from repro.serving.faults import (
    BreakerOpenError,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultRule,
    LoadShedder,
)
from repro.serving.gateway import ServingGateway
from repro.serving.guard import (
    AdaptiveGuardTuner,
    AdmissionGuard,
    BackgroundCheckpointer,
    NoiseBandFilter,
    OnlineEvaluator,
    PairTokenBucketRateLimiter,
    RobustSigmaFilter,
    TokenBucketRateLimiter,
)
from repro.serving.ingest import IngestPipeline, IngestStats
from repro.serving.membership import MembershipManager
from repro.serving.procs import (
    FactorSegment,
    ProcessShardedIngest,
    ProcessShardedStore,
    WorkerSpec,
    WorkerSupervisor,
)
from repro.serving.plane import RoutedIngestBase, ShardPlane, carried_versions
from repro.serving.shard import (
    RequestCoalescer,
    ShardedCoordinateStore,
    ShardedIngest,
    ShardedSnapshot,
    ShardSnapshot,
    shard_of,
)
from repro.serving.service import (
    BatchPrediction,
    PairPrediction,
    PredictionService,
    RowPrediction,
    ServiceStats,
)
from repro.serving.store import (
    CheckpointError,
    CoordinateSnapshot,
    CoordinateStore,
    atomic_savez,
    open_checkpoint,
)

__all__ = [
    "build_gateway",
    "GatewayError",
    "ServingClient",
    "ServingGateway",
    "Autopilot",
    "AutopilotPolicy",
    "PeriodicController",
    "ShardPlane",
    "RoutedIngestBase",
    "carried_versions",
    "build_cluster",
    "BreakerOpenError",
    "BreakerTransport",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "LoadShedder",
    "ClusterSupervisor",
    "GroupTransport",
    "LocalGroupTransport",
    "MirrorStore",
    "PartitionBook",
    "RoutingGateway",
    "WorkerGroup",
    "AdaptiveGuardTuner",
    "AdmissionGuard",
    "BackgroundCheckpointer",
    "NoiseBandFilter",
    "OnlineEvaluator",
    "PairTokenBucketRateLimiter",
    "RobustSigmaFilter",
    "TokenBucketRateLimiter",
    "IngestPipeline",
    "IngestStats",
    "MembershipManager",
    "FactorSegment",
    "ProcessShardedIngest",
    "ProcessShardedStore",
    "WorkerSpec",
    "WorkerSupervisor",
    "RequestCoalescer",
    "ShardedCoordinateStore",
    "ShardedIngest",
    "ShardedSnapshot",
    "ShardSnapshot",
    "shard_of",
    "BatchPrediction",
    "PairPrediction",
    "PredictionService",
    "RowPrediction",
    "ServiceStats",
    "CheckpointError",
    "CoordinateSnapshot",
    "CoordinateStore",
    "atomic_savez",
    "open_checkpoint",
]
