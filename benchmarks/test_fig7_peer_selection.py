"""Bench for paper Fig. 7 — peer selection: optimality vs satisfaction.

Shapes checked, mirroring Section 6.4:

* stretch (optimality): both predictors beat random selection on every
  dataset; regression is the most optimal (within noise);
* satisfaction: classification keeps unsatisfied nodes far below
  random and in the same regime as regression;
* 15% label noise costs classification less than ~7 points of
  unsatisfied-node percentage (the paper reports < 5% on average).
"""

import numpy as np

from repro.experiments import fig7_peer_selection
from repro.experiments.fig7_peer_selection import PEER_COUNTS


def mean_over_m(table, name, strategy):
    return float(np.mean([table[(name, strategy, m)] for m in PEER_COUNTS]))


def test_fig7_peer_selection(run_once, report):
    result = run_once(fig7_peer_selection.run)
    report("Fig. 7 — peer selection", fig7_peer_selection.format_result(result))

    stretch = result["stretch"]
    unsat = result["unsatisfied"]

    for name in result["datasets"]:
        higher_better = name == "hps3"  # ABW stretch: bigger (closer to 1) wins

        random_stretch = mean_over_m(stretch, name, "random")
        class_stretch = mean_over_m(stretch, name, "classification")
        regr_stretch = mean_over_m(stretch, name, "regression")

        if higher_better:
            assert class_stretch > random_stretch, f"{name}: class vs random"
            assert regr_stretch > random_stretch, f"{name}: regr vs random"
            assert regr_stretch >= class_stretch - 0.05, name
        else:
            assert class_stretch < random_stretch, f"{name}: class vs random"
            assert regr_stretch < random_stretch, f"{name}: regr vs random"
            assert regr_stretch <= class_stretch + 0.05, name

        random_unsat = mean_over_m(unsat, name, "random")
        class_unsat = mean_over_m(unsat, name, "classification")
        noisy_unsat = mean_over_m(unsat, name, "classification+noise")
        regr_unsat = mean_over_m(unsat, name, "regression")

        assert class_unsat < 0.5 * random_unsat, (
            f"{name}: classification should slash unsatisfied nodes"
        )
        assert class_unsat < 0.2, f"{name}: ~10% regime expected"
        assert abs(class_unsat - regr_unsat) < 0.1, (
            f"{name}: class and regression satisfaction should be comparable"
        )
        assert noisy_unsat - class_unsat < 0.07, (
            f"{name}: 15% label noise cost too much satisfaction"
        )
