"""Drivers that replay simulator traffic into the serving ingest path.

The serving layer (:mod:`repro.serving`) accepts measurements through a
*sink protocol* — anything with
``submit_many(sources, targets, values)`` — implemented both by
:class:`~repro.serving.ingest.IngestPipeline` (in-process) and
:class:`~repro.serving.client.ServingClient` (over HTTP).  This module
produces the traffic:

* :class:`LiveFeedDriver` generates round-based probe traffic the way
  the vectorized engine's simulation does — each round every node
  measures one random neighbor against a ground-truth quantity matrix,
  with per-probe lognormal jitter, probe loss and (optionally) gross
  outlier spikes — and forwards each round's samples to the sink;
* :class:`HotPairDriver` is the adversarial twin: it hammers a single
  pair with duplicate measurements (optionally mixed with background
  probes), the traffic pattern that diverges an unguarded ingest path
  and that the admission guard
  (:mod:`repro.serving.guard`) exists to absorb;
* :class:`ByzantineDriver` models *lying nodes* rather than broken
  probes: a fixed set of sources reports systematically corrupted
  values (scaled, or outright garbage) mixed into honest traffic —
  the ``poison`` scenario's feeder, and the traffic the
  :class:`~repro.serving.guard.AdmissionGuard` sigma filter must shed;
* :class:`ChurnDriver` replays paper-style join/leave schedules
  against a *membership controller* — the in-process
  :class:`~repro.serving.membership.MembershipManager` or a
  :class:`~repro.serving.client.ServingClient` against a live gateway
  — turning the offline churn experiment
  (:func:`repro.experiments.ext_robustness.run_churn`) into live
  traffic on the serving stack;
* :class:`ClusterOutageDriver` replays worker-group kill/restart
  schedules against a cluster plane
  (:class:`~repro.serving.cluster.ClusterSupervisor`) while other
  drivers keep the traffic flowing — the failure half of the cluster
  availability story as scripted simulator input;
* :class:`ChaosDriver` composes both failure axes: it arms a seeded
  :class:`~repro.serving.faults.FaultPlan` (delayed pulls, stalled
  heartbeats, corrupted checkpoint writes, ...) process-wide for its
  lifetime and optionally steps a :class:`ClusterOutageDriver`
  schedule alongside, so one driver reproduces a whole fault soup
  under live load — the ``BENCH_chaos`` scenario as scripted input;
* :func:`replay_trace` streams an existing
  :class:`~repro.datasets.trace.MeasurementTrace` (e.g. the Harvard
  stream) into a sink in time order.

Together they close the loop of Fig. 2 as a running system: simulated
network -> measurement -> ingest -> updated coordinates -> predictions.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol

import numpy as np

from repro.datasets.trace import MeasurementTrace
from repro.serving import faults
from repro.simnet.neighbors import sample_neighbor_sets
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability, check_square_matrix

__all__ = [
    "MeasurementSink",
    "MembershipController",
    "LiveFeedDriver",
    "HotPairDriver",
    "ByzantineDriver",
    "ChurnDriver",
    "ClusterOutageDriver",
    "ChaosDriver",
    "replay_trace",
]


class MeasurementSink(Protocol):
    """The ingest-side contract the drivers feed."""

    def submit_many(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        values: np.ndarray,
    ) -> int:  # pragma: no cover - protocol
        ...


class LiveFeedDriver:
    """Round-based probe traffic generator feeding an ingest sink.

    Parameters
    ----------
    quantities:
        Ground-truth ``(n, n)`` quantity matrix (NaN = unmeasurable
        pair; probes of such pairs produce nothing, like a failed
        probe).
    sink:
        Destination implementing :class:`MeasurementSink`.
    neighbor_sets:
        Optional ``(n, k)`` neighbor table; sampled with ``neighbors``
        per node when omitted.
    neighbors:
        Reference-set size ``k`` when sampling.
    jitter:
        Sigma of multiplicative lognormal measurement noise
        (0 disables; the Harvard twin uses ~0.1-0.3).
    loss_rate:
        Probability a probe fails outright and yields no sample.
    outlier_rate:
        Probability a probe reports a gross outlier — the measured
        value multiplied by ``outlier_scale`` — modelling a broken
        tool or a lying target; exercises the serving guard's outlier
        rejection.
    outlier_scale:
        Multiplier applied to outlier probes.
    rng:
        Seed/generator for neighbor sampling, probe choice and noise.
    """

    def __init__(
        self,
        quantities: np.ndarray,
        sink: MeasurementSink,
        *,
        neighbor_sets: Optional[np.ndarray] = None,
        neighbors: int = 10,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        outlier_rate: float = 0.0,
        outlier_scale: float = 50.0,
        rng: RngLike = None,
    ) -> None:
        self.quantities = check_square_matrix(
            np.asarray(quantities, dtype=float), "quantities"
        )
        self.n = self.quantities.shape[0]
        self.sink = sink
        self._rng = ensure_rng(rng)
        if neighbor_sets is None:
            neighbor_sets = sample_neighbor_sets(self.n, neighbors, self._rng)
        else:
            neighbor_sets = np.asarray(neighbor_sets, dtype=int)
            if neighbor_sets.ndim != 2 or neighbor_sets.shape[0] != self.n:
                raise ValueError(
                    f"neighbor_sets must be (n, k), got {neighbor_sets.shape}"
                )
        self.neighbor_sets = neighbor_sets
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.jitter = float(jitter)
        self.loss_rate = check_probability(loss_rate, "loss_rate")
        self.outlier_rate = check_probability(outlier_rate, "outlier_rate")
        if outlier_scale <= 0:
            raise ValueError(f"outlier_scale must be positive, got {outlier_scale}")
        self.outlier_scale = float(outlier_scale)
        self.rounds_done = 0
        self.samples_fed = 0
        self.outliers_fed = 0

    def step_round(self) -> int:
        """One round of probe traffic; returns samples handed to the sink."""
        rows = np.arange(self.n)
        picks = self._rng.integers(0, self.neighbor_sets.shape[1], size=self.n)
        cols = self.neighbor_sets[rows, picks]
        values = self.quantities[rows, cols]
        if self.jitter > 0.0:
            values = values * self._rng.lognormal(
                mean=0.0, sigma=self.jitter, size=self.n
            )
        spikes = np.zeros(self.n, dtype=bool)
        if self.outlier_rate > 0.0:
            spikes = self._rng.random(self.n) < self.outlier_rate
            values = np.where(spikes, values * self.outlier_scale, values)
        keep = np.isfinite(values)
        if self.loss_rate > 0.0:
            keep &= self._rng.random(self.n) >= self.loss_rate
        self.outliers_fed += int((spikes & keep).sum())
        fed = int(keep.sum())
        if fed:
            self.sink.submit_many(rows[keep], cols[keep], values[keep])
        self.rounds_done += 1
        self.samples_fed += fed
        return fed

    def step_samples(self, count: int) -> int:
        """Probe ``count`` random (source, neighbor) pairs in one burst.

        The sample-granular sibling of :meth:`step_round` for load
        curves that do not come in multiples of ``n``: sources are
        drawn uniformly, each probes one of its reference-set
        neighbors, and the same jitter / loss / outlier machinery
        applies.  Returns the samples handed to the sink (losses and
        NaN pairs feed nothing, like a failed probe).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        rows = self._rng.integers(0, self.n, size=count)
        picks = self._rng.integers(0, self.neighbor_sets.shape[1], size=count)
        cols = self.neighbor_sets[rows, picks]
        values = self.quantities[rows, cols]
        if self.jitter > 0.0:
            values = values * self._rng.lognormal(
                mean=0.0, sigma=self.jitter, size=count
            )
        spikes = np.zeros(count, dtype=bool)
        if self.outlier_rate > 0.0:
            spikes = self._rng.random(count) < self.outlier_rate
            values = np.where(spikes, values * self.outlier_scale, values)
        keep = np.isfinite(values)
        if self.loss_rate > 0.0:
            keep &= self._rng.random(count) >= self.loss_rate
        self.outliers_fed += int((spikes & keep).sum())
        fed = int(keep.sum())
        if fed:
            self.sink.submit_many(rows[keep], cols[keep], values[keep])
        self.samples_fed += fed
        return fed

    def set_quantities(self, quantities: np.ndarray) -> None:
        """Swap the ground-truth matrix live (same shape required).

        The ``drift`` scenario's hook: geo-correlated latency drift is
        modelled by re-deriving the quantity matrix between probe
        bursts, so subsequent probes measure the shifted network while
        the driver's rng stream (and hence the probe schedule) is
        untouched.
        """
        quantities = check_square_matrix(
            np.asarray(quantities, dtype=float), "quantities"
        )
        if quantities.shape[0] != self.n:
            raise ValueError(
                f"quantities must stay ({self.n}, {self.n}), "
                f"got {quantities.shape}"
            )
        self.quantities = quantities

    def run(self, rounds: int) -> int:
        """Drive ``rounds`` rounds of traffic; returns total samples fed."""
        if rounds <= 0:
            raise ValueError(f"rounds must be positive, got {rounds}")
        return sum(self.step_round() for _ in range(rounds))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LiveFeedDriver(n={self.n}, k={self.neighbor_sets.shape[1]}, "
            f"rounds_done={self.rounds_done})"
        )


class HotPairDriver:
    """Adversarial driver hammering one pair with duplicate measurements.

    This is the traffic pattern that diverges an unguarded ingest path:
    within a mini-batch every duplicate of a pair reads batch-start
    coordinates, so ``m`` copies multiply the pair's SGD step by ``m``
    (observed live: 1200 copies -> |estimate| ~ 1e10).  The driver
    reproduces it on demand — pure hammering, or mixed with background
    probes drawn from a ground-truth quantity matrix — to exercise the
    serving guard's dedup / step-clip / rate-limit defenses.

    Parameters
    ----------
    quantities:
        Ground-truth ``(n, n)`` quantity matrix; supplies the hammered
        value when ``value`` is omitted, and the background probes.
    sink:
        Destination implementing :class:`MeasurementSink`.
    pair:
        The ``(source, target)`` pair to hammer.
    value:
        Measured value reported for the hot pair (the ground-truth
        quantity when omitted).
    background:
        Fraction of samples that are random off-diagonal probes instead
        of the hot pair (0 = pure hammering).
    rng:
        Seed/generator for background probe choice.
    """

    def __init__(
        self,
        quantities: np.ndarray,
        sink: MeasurementSink,
        pair: "tuple[int, int]",
        *,
        value: Optional[float] = None,
        background: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        self.quantities = check_square_matrix(
            np.asarray(quantities, dtype=float), "quantities"
        )
        self.n = self.quantities.shape[0]
        source, target = int(pair[0]), int(pair[1])
        if not (0 <= source < self.n and 0 <= target < self.n):
            raise ValueError(f"pair {pair} out of range for n={self.n}")
        if source == target:
            raise ValueError("the hot pair cannot be a self-pair")
        self.pair = (source, target)
        if value is None:
            value = float(self.quantities[source, target])
            if not np.isfinite(value):
                raise ValueError(
                    f"pair {pair} has no ground-truth quantity; pass value="
                )
        self.value = float(value)
        self.sink = sink
        self.background = check_probability(background, "background")
        self._rng = ensure_rng(rng)
        self.samples_fed = 0
        self.hot_fed = 0

    def run(self, count: int, *, burst: int = 128) -> int:
        """Feed ``count`` samples in ``burst``-sized submissions.

        Returns the samples fed by *this* call (cumulative totals live
        in :attr:`samples_fed` / :attr:`hot_fed`).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        fed_this_call = 0
        remaining = count
        while remaining > 0:
            size = min(burst, remaining)
            sources = np.full(size, self.pair[0], dtype=int)
            targets = np.full(size, self.pair[1], dtype=int)
            values = np.full(size, self.value)
            if self.background > 0.0:
                noise = self._rng.random(size) < self.background
                k = int(noise.sum())
                if k:
                    src = self._rng.integers(0, self.n, size=k)
                    dst = (
                        src + 1 + self._rng.integers(0, self.n - 1, size=k)
                    ) % self.n
                    sources[noise] = src
                    targets[noise] = dst
                    values[noise] = self.quantities[src, dst]
            finite = np.isfinite(values)
            self.sink.submit_many(
                sources[finite], targets[finite], values[finite]
            )
            fed = int(finite.sum())
            fed_this_call += fed
            self.samples_fed += fed
            self.hot_fed += int(
                (
                    (sources == self.pair[0])
                    & (targets == self.pair[1])
                    & finite
                ).sum()
            )
            # background probes of NaN (unmeasured) pairs feed nothing;
            # keep going until `count` samples actually reached the sink
            # (the hot pair is always finite, so bursts make progress —
            # except in the degenerate all-NaN background=1.0 case,
            # where the empty burst is charged to avoid a livelock).
            remaining -= fed if fed else size
        return fed_this_call

    def retarget(
        self, pair: "tuple[int, int]", *, value: Optional[float] = None
    ) -> None:
        """Rotate the hammered pair (the diurnal hot-spot moving on).

        Same validation as construction: the pair must be in range,
        not a self-pair, and must have a finite ground-truth quantity
        unless an explicit ``value`` is given.  Cumulative counters
        keep counting across rotations.
        """
        source, target = int(pair[0]), int(pair[1])
        if not (0 <= source < self.n and 0 <= target < self.n):
            raise ValueError(f"pair {pair} out of range for n={self.n}")
        if source == target:
            raise ValueError("the hot pair cannot be a self-pair")
        if value is None:
            value = float(self.quantities[source, target])
            if not np.isfinite(value):
                raise ValueError(
                    f"pair {pair} has no ground-truth quantity; pass value="
                )
        self.pair = (source, target)
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HotPairDriver(pair={self.pair}, value={self.value}, "
            f"samples_fed={self.samples_fed})"
        )


class ByzantineDriver:
    """Probe traffic with a fixed set of *lying* source nodes.

    :class:`LiveFeedDriver`'s ``outlier_rate`` models a broken tool —
    any probe may spike.  This driver models a Byzantine node: probes
    *from* a ``liars`` set are systematically corrupted (the measured
    value multiplied by ``scale``), and a ``garbage_rate`` fraction of
    the lies is submitted as non-finite garbage instead — the raw
    feed a gateway must drop at validation (``dropped_invalid``) while
    the scaled lies fall to the admission guard's sigma filter
    (``rejected_guard``).  Honest sources report ground truth.

    Parameters
    ----------
    quantities:
        Ground-truth ``(n, n)`` quantity matrix (NaN = unmeasurable).
    sink:
        Destination implementing :class:`MeasurementSink`.
    liars:
        Node ids whose probes lie.
    scale:
        Multiplier a lying probe applies to the true value.
    garbage_rate:
        Fraction of lying probes reporting NaN instead of a scaled
        value (submitted to the sink unfiltered, on purpose).
    rng:
        Seed/generator for probe choice and lie selection.
    """

    def __init__(
        self,
        quantities: np.ndarray,
        sink: MeasurementSink,
        liars: Iterable[int],
        *,
        scale: float = 50.0,
        garbage_rate: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        self.quantities = check_square_matrix(
            np.asarray(quantities, dtype=float), "quantities"
        )
        self.n = self.quantities.shape[0]
        liar_ids = sorted(int(i) for i in liars)
        if any(i < 0 or i >= self.n for i in liar_ids):
            raise ValueError(f"liars must be in [0, {self.n})")
        self.liars = frozenset(liar_ids)
        self._liar_mask = np.zeros(self.n, dtype=bool)
        self._liar_mask[liar_ids] = True
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = float(scale)
        self.garbage_rate = check_probability(garbage_rate, "garbage_rate")
        self.sink = sink
        self._rng = ensure_rng(rng)
        self.samples_fed = 0
        self.honest_fed = 0
        self.poisoned_fed = 0
        self.garbage_fed = 0

    def feed(self, count: int) -> int:
        """Feed ``count`` probes (honest + lies) in one submission.

        Returns the samples handed to the sink.  Unmeasurable (NaN)
        *honest* pairs feed nothing; a lying probe always feeds — a
        Byzantine node fabricates readings it never took.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        sources = self._rng.integers(0, self.n, size=count)
        targets = (
            sources + 1 + self._rng.integers(0, self.n - 1, size=count)
        ) % self.n
        values = self.quantities[sources, targets]
        lying = self._liar_mask[sources]
        honest_keep = np.isfinite(values) & ~lying
        # lies: scale the true value (fabricate one where truth is NaN)
        fabricated = np.where(np.isfinite(values), values, 1.0)
        values = np.where(lying, fabricated * self.scale, values)
        garbage = np.zeros(count, dtype=bool)
        if self.garbage_rate > 0.0:
            garbage = lying & (self._rng.random(count) < self.garbage_rate)
            values = np.where(garbage, np.nan, values)
        keep = honest_keep | lying
        fed = int(keep.sum())
        if fed:
            self.sink.submit_many(sources[keep], targets[keep], values[keep])
        self.samples_fed += fed
        self.honest_fed += int(honest_keep.sum())
        self.poisoned_fed += int((lying & ~garbage).sum())
        self.garbage_fed += int(garbage.sum())
        return fed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ByzantineDriver(liars={len(self.liars)}, scale={self.scale}, "
            f"poisoned_fed={self.poisoned_fed})"
        )


class MembershipController(Protocol):
    """The membership contract :class:`ChurnDriver` drives.

    Satisfied both by the in-process
    :class:`~repro.serving.membership.MembershipManager` and by
    :class:`~repro.serving.client.ServingClient` (over HTTP), so churn
    schedules replay identically against either.
    """

    def join(
        self, node: Optional[int] = None, *, warm_start: Optional[str] = None
    ) -> dict:  # pragma: no cover - protocol
        ...

    def leave(
        self, node: int, *, compact: bool = True
    ) -> dict:  # pragma: no cover - protocol
        ...


class ChurnDriver:
    """Replays join/leave schedules against a live membership layer.

    Two modes, mirroring how the paper's evaluation exercises churn:

    * **explicit schedule** — a sequence of ``("join", node_or_None)``
      / ``("leave", node)`` ops applied one per :meth:`step` (e.g. the
      flap-25%-of-nodes schedule of the offline churn experiment,
      built by :meth:`flap_schedule`);
    * **stochastic churn** — with ``join_rate`` / ``leave_rate``, each
      :meth:`step` rolls for one join and one leave of a random active
      node (session-style continuous churn).

    The driver never renumbers anyone: joins reuse tombstoned slots or
    append fresh ids (the controller's policy), leaves pick only
    currently-active nodes outside ``protect``.

    Parameters
    ----------
    membership:
        The controller (in-process manager or HTTP client).
    schedule:
        Optional explicit op list; when exhausted, :meth:`step` is a
        no-op (returns ``None``).
    join_rate, leave_rate:
        Per-step probabilities for stochastic mode (ignored when a
        schedule is given).
    protect:
        Node ids never chosen for a stochastic leave (keep the pairs a
        load generator is querying alive).
    warm_start:
        Optional warm-start override forwarded to every join.
    rng:
        Seed/generator for stochastic choices.
    """

    def __init__(
        self,
        membership: MembershipController,
        *,
        schedule: Optional[list] = None,
        join_rate: float = 0.0,
        leave_rate: float = 0.0,
        protect: Optional[Iterable[int]] = None,
        warm_start: Optional[str] = None,
        rng: RngLike = None,
    ) -> None:
        self.membership = membership
        self.schedule = list(schedule) if schedule is not None else None
        self.join_rate = check_probability(join_rate, "join_rate")
        self.leave_rate = check_probability(leave_rate, "leave_rate")
        self.protect = frozenset(int(p) for p in (protect or ()))
        self.warm_start = warm_start
        self._rng = ensure_rng(rng)
        self._cursor = 0
        self.joins_done = 0
        self.leaves_done = 0
        self.failures = 0
        self.events: list = []  # (op, node, epoch) per applied change

    @staticmethod
    def flap_schedule(node_ids: Iterable[int]) -> list:
        """The offline churn experiment's flap as an online schedule.

        Every listed node leaves, then rejoins its own slot — the
        ``run_churn`` take-down / cold-rejoin cycle expressed as
        membership ops.
        """
        nodes = [int(i) for i in node_ids]
        return [("leave", i) for i in nodes] + [("join", i) for i in nodes]

    def _state(self) -> dict:
        """Normalized membership state from either controller kind."""
        as_dict = getattr(self.membership, "as_dict", None)
        if as_dict is not None:
            return as_dict()
        return self.membership.membership()

    def _apply(self, op: str, node: Optional[int]):
        try:
            if op == "join":
                result = self.membership.join(node, warm_start=self.warm_start)
                self.joins_done += 1
                self.events.append(
                    ("join", result.get("node", node), result.get("epoch"))
                )
            else:
                result = self.membership.leave(int(node))
                self.leaves_done += 1
                self.events.append(("leave", node, result.get("epoch")))
            return result
        except Exception as exc:
            # a rejected op (already departed, floor reached) must not
            # kill a long churn replay; it is counted and surfaced —
            # and reported as a dict, so a rejected op is never
            # mistaken for the end-of-schedule ``None``
            self.failures += 1
            self.events.append((f"{op}-failed", node, repr(exc)))
            return {"op": op, "node": node, "error": repr(exc)}

    def step(self):
        """Apply the next scheduled op, or roll the stochastic churn.

        Returns the controller's response dict for the applied op — a
        rejected op returns ``{"op", "node", "error"}`` instead of the
        controller's payload — or ``None`` when nothing happened this
        step (schedule exhausted, or no stochastic roll fired), so
        ``while driver.step() is not None`` walks a schedule to its
        end without a failure truncating the replay.
        """
        if self.schedule is not None:
            if self._cursor >= len(self.schedule):
                return None
            op, node = self.schedule[self._cursor]
            self._cursor += 1
            if op not in ("join", "leave"):
                raise ValueError(f"schedule ops must be join/leave, got {op!r}")
            return self._apply(op, node)
        result = None
        if self.join_rate and self._rng.random() < self.join_rate:
            result = self._apply("join", None)
        if self.leave_rate and self._rng.random() < self.leave_rate:
            state = self._state()
            active = sorted(
                set(range(int(state["nodes"])))
                - set(int(t) for t in state["tombstones"])
                - self.protect
            )
            if len(active) > 2:
                pick = int(self._rng.choice(np.asarray(active)))
                result = self._apply("leave", pick) or result
        return result

    def run(self, steps: int) -> int:
        """Drive ``steps`` churn steps; returns ops applied."""
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        before = self.joins_done + self.leaves_done
        for _ in range(steps):
            self.step()
        return self.joins_done + self.leaves_done - before

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChurnDriver(joins={self.joins_done}, leaves={self.leaves_done}, "
            f"failures={self.failures})"
        )


class ClusterOutageDriver:
    """Replays worker-group outage schedules against a cluster plane.

    The cluster's availability claim is about *failures*: a SIGKILLed
    worker group must not take queries down with it.  This driver is
    the scripted failure injector — the churn driver's sibling one
    level up, flapping whole worker groups instead of single nodes —
    so a simulator run can interleave probe traffic
    (:class:`LiveFeedDriver` aimed at the cluster's routing gateway,
    which satisfies :class:`MeasurementSink`) with kills and restarts
    and then assert on the supervisor's detection counters.

    Two modes, like :class:`ChurnDriver`:

    * **explicit schedule** — a sequence of ``("kill", g)`` /
      ``("crash", g)`` / ``("restart", g)`` / ``("idle", None)`` ops
      applied one per :meth:`step` (:meth:`flap_schedule` builds the
      kill-idle-restart cycle for a set of groups; ``kill`` fences the
      group first, ``crash`` dies silently so the detect pass must
      notice);
    * **stochastic outages** — with ``kill_rate``, each :meth:`step`
      rolls to kill one random live group, never the last one (total
      blackout makes availability trivially zero and tests nothing).

    With ``detect=True`` (default) every step also runs one supervisor
    heartbeat pass (:meth:`~repro.serving.cluster.ClusterSupervisor.check_groups`),
    so detection/restart happen deterministically in-step instead of
    racing a monitor thread — simulator runs stay reproducible.

    Parameters
    ----------
    supervisor:
        The :class:`~repro.serving.cluster.ClusterSupervisor` under
        test (works with its monitor thread off).
    schedule:
        Optional explicit op list; when exhausted :meth:`step` returns
        ``None``.
    kill_rate:
        Per-step kill probability for stochastic mode (ignored when a
        schedule is given).
    detect:
        Run one supervisor heartbeat pass per step.
    rng:
        Seed/generator for stochastic choices.
    """

    def __init__(
        self,
        supervisor,
        *,
        schedule: Optional[list] = None,
        kill_rate: float = 0.0,
        detect: bool = True,
        rng: RngLike = None,
    ) -> None:
        self.supervisor = supervisor
        self.schedule = list(schedule) if schedule is not None else None
        self.kill_rate = check_probability(kill_rate, "kill_rate")
        self.detect = bool(detect)
        self._rng = ensure_rng(rng)
        self._cursor = 0
        self.kills_done = 0
        self.restarts_done = 0
        self.detections = 0
        self.failures = 0
        self.events: list = []  # (op, group, detail) per applied change

    @staticmethod
    def flap_schedule(
        group_indices: Iterable[int], *, idle: int = 2, op: str = "kill"
    ) -> list:
        """Kill each listed group, hold it down ``idle`` steps, restart.

        The sequential single-failure pattern the acceptance bench
        measures availability under — at most one group is ever down.
        With ``op="crash"`` the group dies *silently* (no fence), so
        the in-step detection pass must notice before routing fences
        it — the shape that prices death detection.
        """
        if op not in ("kill", "crash"):
            raise ValueError(f"flap op must be kill or crash, got {op!r}")
        ops: list = []
        for g in group_indices:
            ops.append((op, int(g)))
            ops.extend(("idle", None) for _ in range(idle))
            ops.append(("restart", int(g)))
        return ops

    def _apply(self, op: str, group: Optional[int]):
        try:
            if op == "kill":
                self.supervisor.groups[int(group)].kill()
                self.kills_done += 1
            elif op == "crash":
                # silent death: workers stop, no fence — the detect
                # pass below must catch it via the heartbeat surface
                self.supervisor.groups[int(group)].crash()
                self.kills_done += 1
            elif op == "restart":
                self.supervisor.groups[int(group)].restart()
                self.restarts_done += 1
            self.events.append((op, group, None))
            return {"op": op, "group": group}
        except Exception as exc:
            # one failed injection must not kill a long replay; counted
            # and surfaced, like the churn driver's rejected ops
            self.failures += 1
            self.events.append((f"{op}-failed", group, repr(exc)))
            return {"op": op, "group": group, "error": repr(exc)}

    def step(self):
        """Apply the next op (or roll a stochastic kill), then detect.

        Returns the applied op's dict, or ``None`` when nothing
        happened this step (schedule exhausted / no roll fired).
        """
        result = None
        if self.schedule is not None:
            if self._cursor < len(self.schedule):
                op, group = self.schedule[self._cursor]
                self._cursor += 1
                if op not in ("kill", "crash", "restart", "idle"):
                    raise ValueError(
                        "schedule ops must be kill/crash/restart/idle, "
                        f"got {op!r}"
                    )
                if op != "idle":
                    result = self._apply(op, group)
        elif self.kill_rate and self._rng.random() < self.kill_rate:
            live = [
                g
                for g, group in enumerate(self.supervisor.groups)
                if group.alive
            ]
            if len(live) > 1:
                pick = int(self._rng.choice(np.asarray(live)))
                result = self._apply("kill", pick)
        if self.detect:
            died = self.supervisor.check_groups()
            self.detections += len(died)
            # a supervisor restart (auto_restart) is a restart this
            # driver caused indirectly; count it so totals balance
            for g in died:
                self.events.append(("detected", g, None))
        return result

    def run(self, steps: int) -> int:
        """Drive ``steps`` outage steps; returns ops applied."""
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        before = self.kills_done + self.restarts_done
        for _ in range(steps):
            self.step()
        return self.kills_done + self.restarts_done - before

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterOutageDriver(kills={self.kills_done}, "
            f"restarts={self.restarts_done}, detections={self.detections})"
        )


class ChaosDriver:
    """Arms a fault plan for its lifetime and replays outages alongside.

    The chaos scenario the acceptance bench measures is not one failure
    but a *soup*: delayed transport pulls, a worker group flapping, a
    stalled heartbeat, a corrupted checkpoint write — all while probe
    traffic keeps flowing.  Each axis already has an injector
    (:class:`~repro.serving.faults.FaultInjector` for in-stack faults,
    :class:`ClusterOutageDriver` for whole-group outages); this driver
    composes them behind one step/run/report surface so a simulator run
    or bench script owns exactly one knob.

    Arming is scoped: :meth:`__enter__` (or construction with
    ``arm=True``, the default) installs the plan's injector
    process-wide via :func:`repro.serving.faults.install`, and
    :meth:`close` / :meth:`__exit__` uninstalls it — a crashed bench
    cannot leave a live process haunted.  The driver refuses to arm
    over a foreign injector for the same reason.

    Parameters
    ----------
    plan:
        The seeded :class:`~repro.serving.faults.FaultPlan` (or its
        dict / file-path form) to arm.
    outages:
        Optional :class:`ClusterOutageDriver` stepped once per
        :meth:`step` — the group-flap half of the soup.
    arm:
        Install the injector immediately (default).  Pass ``False`` to
        defer to ``with driver: ...``.
    """

    def __init__(
        self,
        plan,
        *,
        outages: Optional[ClusterOutageDriver] = None,
        arm: bool = True,
    ) -> None:
        if not isinstance(plan, faults.FaultPlan):
            plan = (
                faults.FaultPlan.from_file(plan)
                if isinstance(plan, str)
                else faults.FaultPlan.from_dict(plan)
            )
        self.plan = plan
        self.outages = outages
        self.injector: Optional[faults.FaultInjector] = None
        self.steps_done = 0
        if arm:
            self.arm()

    def arm(self) -> faults.FaultInjector:
        """Install this driver's injector process-wide (idempotent)."""
        if self.injector is not None:
            return self.injector
        if faults.injector is not None:
            raise RuntimeError(
                "another fault injector is already installed; "
                "uninstall it before arming a ChaosDriver"
            )
        self.injector = faults.install(self.plan)
        return self.injector

    @property
    def armed(self) -> bool:
        """Whether this driver's injector is the installed one."""
        return self.injector is not None and faults.injector is self.injector

    def step(self):
        """Advance one chaos step: the outage schedule, if any.

        The injector needs no stepping — it fires inline at the fault
        points as traffic exercises them — so a step is the outage
        driver's step (or a no-op recorded for pacing symmetry with
        the other drivers).
        """
        self.steps_done += 1
        if self.outages is not None:
            return self.outages.step()
        return None

    def run(self, steps: int) -> int:
        """Drive ``steps`` chaos steps; returns outage ops applied."""
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        if self.outages is not None:
            return self.outages.run(steps)
        self.steps_done += steps
        return 0

    def report(self) -> dict:
        """One dict combining injector firings and outage counters."""
        out: dict = {
            "armed": self.armed,
            "steps": self.steps_done,
            "plan": self.plan.as_dict(),
        }
        if self.injector is not None:
            out["injected"] = dict(self.injector.injected)
        if self.outages is not None:
            out["outages"] = {
                "kills": self.outages.kills_done,
                "restarts": self.outages.restarts_done,
                "detections": self.outages.detections,
                "failures": self.outages.failures,
            }
        return out

    def close(self) -> None:
        """Disarm: uninstall our injector if it is still the live one."""
        if self.injector is not None and faults.injector is self.injector:
            faults.uninstall()
        self.injector = None

    def __enter__(self) -> "ChaosDriver":
        self.arm()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fired = (
            sum(self.injector.injected.values()) if self.injector else 0
        )
        return f"ChaosDriver(armed={self.armed}, fired={fired})"


def replay_trace(
    trace: MeasurementTrace,
    sink: MeasurementSink,
    *,
    batch_size: int = 256,
    max_samples: Optional[int] = None,
) -> int:
    """Stream a timestamped trace into a sink in time order.

    Parameters
    ----------
    trace:
        The measurement stream (pairs, order and values all come from
        the trace, as in the paper's Harvard experiments).
    batch_size:
        Samples per ``submit_many`` call.
    max_samples:
        Optional cap on how much of the trace to feed.

    Returns the number of samples handed to the sink.
    """
    fed = 0
    for batch in trace.batches(batch_size):
        if max_samples is not None and fed >= max_samples:
            break
        take = len(batch)
        if max_samples is not None:
            take = min(take, max_samples - fed)
        sink.submit_many(
            batch.sources[:take], batch.targets[:take], batch.values[:take]
        )
        fed += take
    return fed
