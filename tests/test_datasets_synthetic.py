"""Tests for the controlled synthetic matrix generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    exact_low_rank_classes,
    noisy_low_rank_quantities,
    planted_blocks,
)
from repro.evaluation.rank import normalized_singular_values


class TestExactLowRankClasses:
    def test_binary_with_nan_diagonal(self):
        labels = exact_low_rank_classes(20, 3, rng=0)
        assert np.isnan(np.diag(labels)).all()
        observed = labels[np.isfinite(labels)]
        assert set(np.unique(observed)) <= {1.0, -1.0}

    def test_deterministic(self):
        a = exact_low_rank_classes(15, 2, rng=5)
        b = exact_low_rank_classes(15, 2, rng=5)
        np.testing.assert_array_equal(a, b)

    def test_flip_probability(self):
        clean = exact_low_rank_classes(40, 3, rng=1)
        noisy = exact_low_rank_classes(40, 3, rng=1, flip_probability=0.2)
        mask = np.isfinite(clean)
        flip_rate = np.mean(clean[mask] != noisy[mask])
        assert flip_rate == pytest.approx(0.2, abs=0.05)

    def test_default_is_asymmetric(self):
        labels = exact_low_rank_classes(40, 3, rng=2)
        mask = np.isfinite(labels) & np.isfinite(labels.T)
        assert np.mean(labels[mask] == labels.T[mask]) < 0.7

    def test_symmetric_option(self):
        labels = exact_low_rank_classes(40, 3, rng=2, symmetric=True)
        mask = np.isfinite(labels) & np.isfinite(labels.T)
        np.testing.assert_array_equal(labels[mask], labels.T[mask])

    def test_asymmetric_recoverable_with_abw_updates(self):
        """The idealized input under the matching (asymmetric) update."""
        from repro.core import DMFSGDConfig, DMFSGDEngine, matrix_label_fn
        from repro.evaluation import auc_score

        labels = exact_low_rank_classes(60, 3, rng=2)
        engine = DMFSGDEngine(
            60,
            matrix_label_fn(labels),
            DMFSGDConfig(neighbors=10),
            metric="abw",
            rng=2,
        )
        result = engine.run(rounds=400)
        assert auc_score(labels, result.estimate_matrix()) > 0.85

    def test_symmetric_recoverable_with_rtt_updates(self):
        from repro.core import DMFSGDConfig, DMFSGDEngine, matrix_label_fn
        from repro.evaluation import auc_score

        labels = exact_low_rank_classes(60, 3, rng=2, symmetric=True)
        engine = DMFSGDEngine(
            60,
            matrix_label_fn(labels),
            DMFSGDConfig(neighbors=10),
            metric="rtt",
            rng=2,
        )
        result = engine.run(rounds=400)
        assert auc_score(labels, result.estimate_matrix()) > 0.85

    def test_update_metric_mismatch_fails_to_learn(self):
        """Cross-check of the paper's Algorithm 1 vs 2 distinction:
        feeding an asymmetric matrix to the symmetric update rules
        trains on wrong transpose labels and stalls near chance."""
        from repro.core import DMFSGDConfig, DMFSGDEngine, matrix_label_fn
        from repro.evaluation import auc_score

        labels = exact_low_rank_classes(60, 3, rng=2)  # asymmetric
        engine = DMFSGDEngine(
            60,
            matrix_label_fn(labels),
            DMFSGDConfig(neighbors=10),
            metric="rtt",  # wrong semantics on purpose
            rng=2,
        )
        result = engine.run(rounds=400)
        assert auc_score(labels, result.estimate_matrix()) < 0.7

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            exact_low_rank_classes(1, 1)
        with pytest.raises(ValueError):
            exact_low_rank_classes(10, 0)
        with pytest.raises(ValueError):
            exact_low_rank_classes(10, 2, flip_probability=1.5)


class TestPlantedBlocks:
    def test_same_group_good(self):
        labels, assignment = planted_blocks(
            30, 3, rng=0, return_assignment=True
        )
        for i in range(30):
            for j in range(30):
                if i == j:
                    continue
                expected = 1.0 if assignment[i] == assignment[j] else -1.0
                assert labels[i, j] == expected

    def test_low_rank(self):
        labels = planted_blocks(60, 4, rng=1)
        # fill the diagonal consistently (self = same group = +1) so the
        # spectrum reflects the planted structure, not the imputation
        filled = labels.copy()
        np.fill_diagonal(filled, 1.0)
        spectrum = normalized_singular_values(filled, 10)
        # rank <= groups + 1 in the real-valued sense
        assert spectrum[5] < 1e-8

    def test_blur_probability(self):
        labels, assignment = planted_blocks(
            200, 4, rng=2, inter_good_probability=0.3, return_assignment=True
        )
        cross = assignment[:, None] != assignment[None, :]
        cross &= np.isfinite(labels)
        good_rate = np.mean(labels[cross] == 1.0)
        assert good_rate == pytest.approx(0.3, abs=0.05)

    def test_single_group_all_good(self):
        labels = planted_blocks(10, 1, rng=0)
        observed = labels[np.isfinite(labels)]
        assert (observed == 1.0).all()

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            planted_blocks(1, 2)
        with pytest.raises(ValueError):
            planted_blocks(10, 0)


class TestNoisyLowRankQuantities:
    def test_positive_with_nan_diagonal(self):
        quantities = noisy_low_rank_quantities(20, 3, rng=0)
        assert np.isnan(np.diag(quantities)).all()
        assert (quantities[np.isfinite(quantities)] > 0).all()

    def test_median_scale(self):
        quantities = noisy_low_rank_quantities(40, 3, rng=0, scale=55.0)
        # scaling happens before the diagonal is blanked, so allow slack
        assert np.nanmedian(quantities) == pytest.approx(55.0, rel=0.1)

    def test_noise_increases_spread(self):
        clean = noisy_low_rank_quantities(40, 3, rng=3, noise_sigma=0.0)
        noisy = noisy_low_rank_quantities(40, 3, rng=3, noise_sigma=0.5)
        assert np.nanstd(np.log(noisy)) > np.nanstd(np.log(clean))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            noisy_low_rank_quantities(10, 2, noise_sigma=-1.0)
