"""Tests for confusion matrices and accuracy."""

import numpy as np
import pytest

from repro.evaluation.confusion import (
    ConfusionMatrix,
    accuracy_score,
    confusion_matrix,
)


@pytest.fixture
def example():
    y_true = np.array([1.0, 1.0, 1.0, -1.0, -1.0, np.nan])
    y_pred = np.array([1.0, 1.0, -1.0, -1.0, 1.0, 1.0])
    return y_true, y_pred


class TestCounts:
    def test_cells(self, example):
        matrix = confusion_matrix(*example)
        assert (matrix.tp, matrix.fn, matrix.fp, matrix.tn) == (2, 1, 1, 1)

    def test_total_skips_nan(self, example):
        assert confusion_matrix(*example).total == 5

    def test_accuracy(self, example):
        assert confusion_matrix(*example).accuracy == pytest.approx(3 / 5)

    def test_accuracy_score_helper(self, example):
        assert accuracy_score(*example) == pytest.approx(3 / 5)

    def test_matrix_inputs(self, rng):
        y = rng.choice([1.0, -1.0], size=(8, 8))
        np.fill_diagonal(y, np.nan)
        matrix = confusion_matrix(y, y)
        assert matrix.accuracy == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([1.0]), np.array([1.0, -1.0]))

    def test_all_nan_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([np.nan]), np.array([np.nan]))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0.5]), np.array([1.0]))


class TestRates:
    def test_tpr_fpr(self, example):
        matrix = confusion_matrix(*example)
        assert matrix.true_positive_rate == pytest.approx(2 / 3)
        assert matrix.false_positive_rate == pytest.approx(1 / 2)
        assert matrix.true_negative_rate == pytest.approx(1 / 2)

    def test_precision(self, example):
        assert confusion_matrix(*example).precision == pytest.approx(2 / 3)

    def test_degenerate_rates_raise(self):
        matrix = ConfusionMatrix(tp=0, fn=0, fp=1, tn=1)
        with pytest.raises(ValueError):
            matrix.true_positive_rate

    def test_empty_accuracy_raises(self):
        with pytest.raises(ValueError):
            ConfusionMatrix(0, 0, 0, 0).accuracy


class TestRowNormalized:
    def test_rows_sum_to_one(self, example):
        norm = confusion_matrix(*example).row_normalized()
        np.testing.assert_allclose(norm.sum(axis=1), [1.0, 1.0])

    def test_layout(self, example):
        norm = confusion_matrix(*example).row_normalized()
        assert norm[0, 0] == pytest.approx(2 / 3)  # good -> good
        assert norm[1, 1] == pytest.approx(1 / 2)  # bad -> bad

    def test_missing_class_raises(self):
        matrix = ConfusionMatrix(tp=1, fn=0, fp=0, tn=0)
        with pytest.raises(ValueError):
            matrix.row_normalized()

    def test_as_text_contains_accuracy(self, example):
        text = confusion_matrix(*example).as_text()
        assert "Accuracy=60.0%" in text
        assert '"Good"' in text
