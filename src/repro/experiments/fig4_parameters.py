"""Fig. 4 — AUC under different ranks r, neighbor counts k and taus.

Three sweeps with the paper's grids:

* **r** in {3, 10, 20, 100} with k at the per-dataset default;
* **k** in {5, 10, 30, 50} for Harvard/HP-S3 and {16, 32, 64, 128} for
  Meridian, with r = 10;
* **tau** at the percentiles that make 10/25/50/75/90 % of paths good
  (Table 1's rows), with r = 10 and default k.

Expected shapes: AUC saturates by r ~ 10 (more variables just consume
data); AUC increases with k with diminishing returns; AUC stays usable
across the tau range with mild degradation at extreme class imbalance.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import (
    DATASET_NAMES,
    DEFAULT_SEED,
    get_dataset,
    train_classifier,
)
from repro.utils.tables import format_table

__all__ = ["run", "format_result", "RANK_GRID", "NEIGHBOR_GRIDS", "TAU_FRACTIONS"]

#: The r values of Fig. 4(a).
RANK_GRID = (3, 10, 20, 100)

#: The k values of Fig. 4(b), per dataset.
NEIGHBOR_GRIDS: Dict[str, tuple] = {
    "harvard": (5, 10, 30, 50),
    "meridian": (16, 32, 64, 128),
    "hps3": (5, 10, 30, 50),
}

#: Good-path fractions of Fig. 4(c) / Table 1.
TAU_FRACTIONS = (0.10, 0.25, 0.50, 0.75, 0.90)


def run(
    seed: int = DEFAULT_SEED, *, datasets: tuple = DATASET_NAMES
) -> Dict[str, object]:
    """Run the three parameter sweeps.

    Returns
    -------
    dict
        ``rank_sweep``: ``(dataset, r) -> auc``;
        ``neighbor_sweep``: ``(dataset, k) -> auc``;
        ``tau_sweep``: ``(dataset, fraction) -> auc``.
    """
    rank_sweep: Dict[tuple, float] = {}
    neighbor_sweep: Dict[tuple, float] = {}
    tau_sweep: Dict[tuple, float] = {}

    for name in datasets:
        for rank in RANK_GRID:
            rank_sweep[(name, rank)] = train_classifier(
                name, seed=seed, rank=rank
            ).auc
        for k in NEIGHBOR_GRIDS[name]:
            neighbor_sweep[(name, k)] = train_classifier(
                name, seed=seed, neighbors=k
            ).auc
        dataset = get_dataset(name, seed=seed)
        for fraction in TAU_FRACTIONS:
            tau = dataset.tau_for_good_fraction(fraction)
            tau_sweep[(name, fraction)] = train_classifier(
                name, seed=seed, tau=tau
            ).auc

    return {
        "rank_sweep": rank_sweep,
        "neighbor_sweep": neighbor_sweep,
        "tau_sweep": tau_sweep,
        "datasets": tuple(datasets),
    }


def format_result(result: Dict[str, object]) -> str:
    """Render the three panels as AUC tables."""
    datasets = result["datasets"]
    sections: List[str] = []

    rows = [
        [rank] + [result["rank_sweep"][(name, rank)] for name in datasets]
        for rank in RANK_GRID
    ]
    sections.append(
        "AUC vs rank r:\n"
        + format_table(rows, headers=["r"] + list(datasets), float_fmt=".3f")
    )

    rows = []
    for idx in range(4):
        row: List[object] = [f"k{idx + 1}"]
        for name in datasets:
            k = NEIGHBOR_GRIDS[name][idx]
            row.append(f"{k}:{result['neighbor_sweep'][(name, k)]:.3f}")
        rows.append(row)
    sections.append(
        "AUC vs neighbors k (k:auc):\n"
        + format_table(rows, headers=["k"] + list(datasets))
    )

    rows = [
        [f"{fraction:.0%}"]
        + [result["tau_sweep"][(name, fraction)] for name in datasets]
        for fraction in TAU_FRACTIONS
    ]
    sections.append(
        "AUC vs tau (good-path fraction):\n"
        + format_table(rows, headers=["good%"] + list(datasets), float_fmt=".3f")
    )
    return "\n\n".join(sections)
