"""Telemetry-overhead benchmark -> ``BENCH_obs.json``.

Prices the observability plane's acceptance claims: binding a metrics
registry onto the sharded ingest hot path (queue-wait + apply latency
histograms recorded per chunk, tracing off) must stay within 5% of
the uninstrumented path — measured batch-interleaved and paired, so
the ratio is machine-independent — the latency families must surface
p99 quantiles in the ``/stats`` summary, and arming the tracer must
complete every minted span through all five stage stamps.

Runs in tier-1 (``obs_smoke``): a few interleaved passes of the
standard admission stream, well under a minute.
"""

import json

import pytest

import obs_bench

pytestmark = pytest.mark.obs_smoke


def test_obs_benchmark(report, run_once):
    result = run_once(obs_bench.run)

    from repro.utils.tables import format_table

    report(
        "telemetry plane: instrumentation overhead",
        format_table(
            obs_bench.format_rows(result), headers=["obs", "value"]
        ),
    )

    obs_bench.SUMMARY_PATH.write_text(json.dumps(result, indent=2) + "\n")

    # the acceptance ceiling: instrumented ingest within 5% of plain
    assert result["overhead_ratio"] <= obs_bench.OBS_OVERHEAD_CEILING, (
        f"instrumented ingest is {result['overhead_ratio']:.3f}x the "
        f"uninstrumented hot path (ceiling "
        f"{obs_bench.OBS_OVERHEAD_CEILING}x)"
    )
    # both latency families surfaced quantiles with observations
    for family in obs_bench.QUANTILE_FAMILIES:
        entry = result["quantiles"][family]
        assert entry["count"] > 0, f"{family} recorded nothing"
        assert "p99" in entry and "p999" in entry
        assert entry["p50"] <= entry["p95"] <= entry["p99"] <= entry["p999"]
    # tracing completed every span end to end
    assert result["trace_spans_started"] > 0
    assert (
        result["trace_spans_completed"] == result["trace_spans_started"]
    ), "a stage stamp went missing on the ingest pipeline"
